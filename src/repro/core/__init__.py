"""The Perm provenance rewriter -- the paper's core contribution.

``traverse_query_tree`` / ``rewrite_query_node`` implement the algorithm
of paper Fig. 7 over the query-tree representation of section IV-B:

* SPJ nodes: rewrite every range table entry and append the provenance
  attributes to the target list (Fig. 6.1),
* ASPJ nodes: join the original aggregation with a rewritten,
  aggregation-stripped duplicate on the grouping attributes (Fig. 6.2),
* set-operation nodes: split into binary nodes and join the original set
  operation with the rewritten duplicates of its inputs (Fig. 6.3b),
* uncorrelated sublinks: join the rewritten sublink query into the range
  table (section IV-E); correlated sublinks raise ``RewriteError``.
"""

from repro.core.naming import ProvenanceAttribute, ProvenanceNamer
from repro.core.pstack import PStack
from repro.core.registry import (
    DEFAULT_STRATEGY,
    RewriteStrategy,
    get_rewrite_strategy,
    register_rewrite_strategy,
    rewrite_strategy_names,
)
from repro.core.rewriter import rewrite_query_node, traverse_query_tree

__all__ = [
    "ProvenanceAttribute",
    "ProvenanceNamer",
    "PStack",
    "rewrite_query_node",
    "traverse_query_tree",
    "RewriteStrategy",
    "DEFAULT_STRATEGY",
    "get_rewrite_strategy",
    "register_rewrite_strategy",
    "rewrite_strategy_names",
]
