"""A blocking client for the wire protocol.

One :class:`PermClient` wraps one TCP connection.  Requests are
strictly request/response on a connection, so a client instance is for
one thread; concurrent load uses one client per thread (each sharing a
session id if they want a shared prepared-statement cache).

>>> with PermClient(host, port) as client:          # doctest: +SKIP
...     result = client.query("SELECT PROVENANCE a FROM t")
...     result.columns, result.rows
"""

from __future__ import annotations

import itertools
import socket
import uuid
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import PermError
from repro.server.protocol import decode_row, recv_frame, send_frame


class ServerError(PermError):
    """A typed error response from the server."""

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(message)
        self.kind = kind


@dataclass
class ClientResult:
    """A decoded query response."""

    columns: list[str]
    rows: list[tuple]
    command: str = "SELECT"
    annotation_column: Optional[str] = None
    cached: bool = False
    elapsed_ms: float = 0.0

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def scalar(self) -> Any:
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise PermError(
                f"scalar() requires a 1x1 result, got "
                f"{len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][0]


class PermClient:
    """Blocking socket client; usable as a context manager."""

    def __init__(
        self,
        host: str,
        port: int,
        session: Optional[str] = None,
        connect_timeout: float = 10.0,
    ) -> None:
        self.session = session or f"client-{uuid.uuid4().hex[:12]}"
        self._ids = itertools.count(1)
        self._sock = socket.create_connection((host, port), timeout=connect_timeout)
        # Individual requests may run long (the server enforces its own
        # deadline); don't let the connect timeout cut responses short.
        self._sock.settimeout(None)

    # -- context management --------------------------------------------------

    def __enter__(self) -> "PermClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    # -- request/response ----------------------------------------------------

    def _roundtrip(self, request: dict) -> dict:
        request["id"] = next(self._ids)
        send_frame(self._sock, request)
        response = recv_frame(self._sock)
        if response is None:
            raise PermError("server closed the connection")
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServerError(
                error.get("type", "unknown"), error.get("message", "unknown error")
            )
        return response

    def query(
        self,
        sql: str,
        provenance: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> ClientResult:
        """Execute one statement; ``provenance`` marks the SELECT like
        ``SELECT PROVENANCE [(semantics)]`` would."""
        response = self._roundtrip(
            {
                "op": "query",
                "sql": sql,
                "provenance": provenance,
                "session": self.session,
                "timeout": timeout,
            }
        )
        return ClientResult(
            columns=response.get("columns", []),
            rows=[decode_row(row) for row in response.get("rows", [])],
            command=response.get("command", "SELECT"),
            annotation_column=response.get("annotation_column"),
            cached=bool(response.get("cached")),
            elapsed_ms=float(response.get("elapsed_ms", 0.0)),
        )

    def provenance(self, sql: str, semantics: Optional[str] = None) -> ClientResult:
        """Mirror of :meth:`PermDatabase.provenance` over the wire."""
        return self.query(sql, provenance=semantics or "witness")

    def stats(self) -> dict:
        """Global + per-session server observability counters."""
        response = self._roundtrip({"op": "stats"})
        return {
            "stats": response.get("stats", {}),
            "sessions": response.get("sessions", []),
            "statement_cache": response.get("statement_cache", {}),
        }

    def close_session(self) -> bool:
        """Drop this session's server-side prepared-statement cache."""
        response = self._roundtrip({"op": "close", "session": self.session})
        return bool(response.get("closed"))
