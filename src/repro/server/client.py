"""A blocking client for the wire protocol.

One :class:`PermClient` wraps one TCP connection.  Requests are
strictly request/response on a connection, so a client instance is for
one thread; concurrent load uses one client per thread (each sharing a
session id if they want a shared prepared-statement cache).

Transient-error retry: ``max_retries > 0`` re-issues **read-only**
statements that fail with a retryable typed error (``overloaded``,
``snapshot_invalid``) after exponential backoff with full jitter.
Writes are never retried — a DML request whose response was lost may
have committed, and replaying it is not idempotent; read-only-ness is
decided by parsing the statement client-side (every statement must be
a SELECT without ``INTO``).  ``shutting_down`` is deliberately not
retryable on the same connection: the server is going away.  The
attempt count is surfaced on both the result
(:attr:`ClientResult.attempts`) and the raised
:class:`ServerError` (``.attempts``).

>>> with PermClient(host, port) as client:          # doctest: +SKIP
...     result = client.query("SELECT PROVENANCE a FROM t")
...     result.columns, result.rows
"""

from __future__ import annotations

import itertools
import random
import socket
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import PermError
from repro.server.protocol import decode_row, recv_frame, send_frame

#: Typed errors that are transient for reads: the server refused or
#: invalidated the request without executing it to completion, and a
#: later attempt can succeed.
RETRYABLE_ERRORS = frozenset({"overloaded", "snapshot_invalid"})


class ServerError(PermError):
    """A typed error response from the server.

    ``attempts`` counts request attempts made before giving up (1 when
    retry was off or the error was not retryable)."""

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(message)
        self.kind = kind
        self.attempts = 1


@dataclass
class ClientResult:
    """A decoded query response."""

    columns: list[str]
    rows: list[tuple]
    command: str = "SELECT"
    annotation_column: Optional[str] = None
    cached: bool = False
    elapsed_ms: float = 0.0
    #: Request attempts this result took (1 = first try succeeded).
    attempts: int = 1

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def scalar(self) -> Any:
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise PermError(
                f"scalar() requires a 1x1 result, got "
                f"{len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][0]


class PermClient:
    """Blocking socket client; usable as a context manager."""

    def __init__(
        self,
        host: str,
        port: int,
        session: Optional[str] = None,
        connect_timeout: float = 10.0,
        max_retries: int = 0,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        retry_seed: Optional[int] = None,
    ) -> None:
        self.session = session or f"client-{uuid.uuid4().hex[:12]}"
        self.max_retries = max(int(max_retries), 0)
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        # Seedable for deterministic tests; defaults to fresh entropy so
        # a fleet of clients retrying the same overload decorrelates.
        self._rng = random.Random(retry_seed)
        self._ids = itertools.count(1)
        self._sock = socket.create_connection((host, port), timeout=connect_timeout)
        # Individual requests may run long (the server enforces its own
        # deadline); don't let the connect timeout cut responses short.
        self._sock.settimeout(None)

    # -- context management --------------------------------------------------

    def __enter__(self) -> "PermClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    # -- request/response ----------------------------------------------------

    def _roundtrip(self, request: dict) -> dict:
        request["id"] = next(self._ids)
        send_frame(self._sock, request)
        response = recv_frame(self._sock)
        if response is None:
            raise PermError("server closed the connection")
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServerError(
                error.get("type", "unknown"), error.get("message", "unknown error")
            )
        return response

    def query(
        self,
        sql: str,
        provenance: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> ClientResult:
        """Execute one statement; ``provenance`` marks the SELECT like
        ``SELECT PROVENANCE [(semantics)]`` would.  Retryable failures
        of read-only statements are re-issued per the client's backoff
        configuration (see the module docstring)."""
        request = {
            "op": "query",
            "sql": sql,
            "provenance": provenance,
            "session": self.session,
            "timeout": timeout,
        }
        attempts = 0
        retryable_stmt: Optional[bool] = None  # parsed lazily, once
        while True:
            attempts += 1
            try:
                response = self._roundtrip(dict(request))
                break
            except ServerError as exc:
                exc.attempts = attempts
                if attempts > self.max_retries or exc.kind not in RETRYABLE_ERRORS:
                    raise
                if retryable_stmt is None:
                    retryable_stmt = self._is_read_only(sql)
                if not retryable_stmt:
                    # Never replay a write: a lost response may mean a
                    # committed statement, and INSERT twice is not once.
                    raise
                time.sleep(self._backoff_delay(attempts))
        result = ClientResult(
            columns=response.get("columns", []),
            rows=[decode_row(row) for row in response.get("rows", [])],
            command=response.get("command", "SELECT"),
            annotation_column=response.get("annotation_column"),
            cached=bool(response.get("cached")),
            elapsed_ms=float(response.get("elapsed_ms", 0.0)),
        )
        result.attempts = attempts
        return result

    def _backoff_delay(self, attempt: int) -> float:
        """Exponential backoff with full jitter: uniform over
        ``[0, min(cap, base * 2^(attempt-1))]`` — retries from a fleet
        of clients spread out instead of re-stampeding in lockstep."""
        ceiling = min(self.backoff_cap, self.backoff_base * (2 ** (attempt - 1)))
        return self._rng.uniform(0.0, ceiling)

    @staticmethod
    def _is_read_only(sql: str) -> bool:
        """Whether every statement in ``sql`` is a plain SELECT (no
        ``INTO``) — the precondition for safe retry.  Unparseable text
        is conservatively treated as a write."""
        from repro.sql import ast
        from repro.sql.parser import parse_sql

        try:
            statements = parse_sql(sql)
        except PermError:
            return False
        for stmt in statements:
            if not isinstance(stmt, (ast.SelectStmt, ast.SetOpSelect)):
                return False
            if getattr(stmt, "into", None):
                return False
        return True

    def provenance(self, sql: str, semantics: Optional[str] = None) -> ClientResult:
        """Mirror of :meth:`PermDatabase.provenance` over the wire."""
        return self.query(sql, provenance=semantics or "witness")

    def stats(self) -> dict:
        """Global + per-session server observability counters."""
        response = self._roundtrip({"op": "stats"})
        stats = {
            "stats": response.get("stats", {}),
            "sessions": response.get("sessions", []),
            "statement_cache": response.get("statement_cache", {}),
        }
        if "sharding" in response:  # only present on sharded backends
            stats["sharding"] = response["sharding"]
        return stats

    def close_session(self) -> bool:
        """Drop this session's server-side prepared-statement cache."""
        response = self._roundtrip({"op": "close", "session": self.session})
        return bool(response.get("closed"))
