"""Global server observability counters.

Everything the ``stats`` wire op and the shell's ``\\server stats``
report: request totals by outcome, a sliding latency window for
p50/p99, and a timestamp window for queries-per-second.  Recording
happens on executor threads; snapshots on the asyncio thread — one
lock, held only for deque appends and snapshot copies.
"""

from __future__ import annotations

import threading
import time
from collections import deque

#: Latency samples kept for percentile estimates.
LATENCY_WINDOW = 4096

#: Seconds of completion timestamps the QPS estimate averages over.
QPS_WINDOW_SECONDS = 10.0


def percentile(samples: list[float], fraction: float) -> float:
    """Nearest-rank percentile of a non-empty sorted sample list."""
    index = min(int(fraction * len(samples)), len(samples) - 1)
    return samples[index]


class ServerStats:
    """Monotonic counters + sliding windows for one server instance."""

    def __init__(self) -> None:
        self.started = time.monotonic()
        self.total = 0
        self.ok = 0
        self.errors = 0
        self.timeouts = 0
        self.overloads = 0
        self.shutdown_refusals = 0
        self.frames_rejected = 0
        self._latencies: deque[float] = deque(maxlen=LATENCY_WINDOW)
        self._completions: deque[float] = deque(maxlen=LATENCY_WINDOW)
        self._lock = threading.Lock()

    def record(self, latency: float, outcome: str) -> None:
        """Count one finished request (outcome: ok/error/timeout/
        overloaded/shutting_down/frame_too_large)."""
        now = time.monotonic()
        with self._lock:
            self.total += 1
            if outcome == "ok":
                self.ok += 1
            elif outcome == "timeout":
                self.timeouts += 1
                self.errors += 1
            elif outcome == "overloaded":
                self.overloads += 1
                self.errors += 1
            elif outcome == "shutting_down":
                self.shutdown_refusals += 1
                self.errors += 1
            elif outcome == "frame_too_large":
                self.frames_rejected += 1
                self.errors += 1
            else:
                self.errors += 1
            self._latencies.append(latency)
            self._completions.append(now)

    def snapshot(self, active_sessions: int, pending: int) -> dict:
        now = time.monotonic()
        with self._lock:
            latencies = sorted(self._latencies)
            recent = [t for t in self._completions if now - t <= QPS_WINDOW_SECONDS]
            data = {
                "uptime_seconds": round(now - self.started, 3),
                "total_requests": self.total,
                "ok": self.ok,
                "errors": self.errors,
                "timeouts": self.timeouts,
                "overloads": self.overloads,
                "shutdown_refusals": self.shutdown_refusals,
                "frames_rejected": self.frames_rejected,
            }
        data["qps"] = round(len(recent) / QPS_WINDOW_SECONDS, 3)
        if latencies:
            data["latency_ms"] = {
                "p50": round(percentile(latencies, 0.50) * 1000.0, 3),
                "p99": round(percentile(latencies, 0.99) * 1000.0, 3),
                "max": round(latencies[-1] * 1000.0, 3),
            }
        data["active_sessions"] = active_sessions
        data["pending_requests"] = pending
        return data
