"""Server-side sessions: prepared-statement caches and counters.

A session is the unit of server-side client state.  Clients name their
session (any string id); all connections presenting the same id share
one session, so a client can reconnect and keep its warm
prepared-statement cache.  Sessions hold *compiled query trees* — the
output of :meth:`PermDatabase.compile_select`, i.e. the full frontend
pipeline (parse → analyze → provenance-rewrite → optimize) — keyed by
(sql, provenance semantics, catalog epoch, stats epoch, pipeline
flags), so DDL and fresh statistics age entries out naturally.

All structures here are mutated from executor threads and read from
the asyncio thread concurrently, hence the per-object locks.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import TYPE_CHECKING, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.analyzer.query_tree import Query
    from repro.database import PermDatabase

#: Compiled statements kept per session.
SESSION_STATEMENT_CACHE_SIZE = 32

#: Sessions kept server-wide (least-recently-used beyond this bound).
MAX_SESSIONS = 256


class Session:
    """One client session: statement cache plus per-session counters."""

    def __init__(self, session_id: str, cache_size: int = SESSION_STATEMENT_CACHE_SIZE) -> None:
        self.session_id = session_id
        self.created = time.monotonic()
        self.queries = 0
        self.errors = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self._cache_size = cache_size
        self._statements: "OrderedDict[tuple, Query]" = OrderedDict()
        self._lock = threading.Lock()

    def _key(self, db: "PermDatabase", sql: str, provenance: Optional[str]) -> tuple:
        return (
            sql,
            provenance,
            db.catalog.epoch,
            db.catalog.stats_epoch,
            db.provenance_module_enabled,
            db.optimizer_enabled,
            db.cost_based_enabled,
        )

    def lookup(
        self, db: "PermDatabase", sql: str, provenance: Optional[str]
    ) -> Optional["Query"]:
        """Cache probe only — no compilation on a miss.

        The server uses this to learn *whether* a statement is a known
        SELECT before deciding between the compiled-snapshot path and
        the general ``execute`` path.
        """
        key = self._key(db, sql, provenance)
        with self._lock:
            query = self._statements.get(key)
            if query is not None:
                self._statements.move_to_end(key)
                self.cache_hits += 1
            return query

    def compiled(
        self, db: "PermDatabase", sql: str, provenance: Optional[str]
    ) -> Tuple["Query", bool]:
        """The compiled tree for (sql, provenance): ``(query, was_hit)``.

        Compilation happens outside the lock — it can be milliseconds of
        work and must not serialize unrelated sessions' threads.  Two
        racing misses for the same statement both compile; last write
        wins, which is correct because compiled trees are equivalent.
        """
        key = self._key(db, sql, provenance)
        with self._lock:
            query = self._statements.get(key)
            if query is not None:
                self._statements.move_to_end(key)
                self.cache_hits += 1
                return query, True
        compiled = db.compile_select(sql, provenance=provenance)
        with self._lock:
            self.cache_misses += 1
            self._statements[key] = compiled
            self._statements.move_to_end(key)
            while len(self._statements) > self._cache_size:
                self._statements.popitem(last=False)
        return compiled, False

    def record(self, ok: bool) -> None:
        with self._lock:
            self.queries += 1
            if not ok:
                self.errors += 1

    def stats(self) -> dict:
        with self._lock:
            return {
                "session": self.session_id,
                "queries": self.queries,
                "errors": self.errors,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "cached_statements": len(self._statements),
            }


class SessionManager:
    """Session-id -> :class:`Session`, bounded least-recently-used."""

    def __init__(self, max_sessions: int = MAX_SESSIONS) -> None:
        self.max_sessions = max_sessions
        self._sessions: "OrderedDict[str, Session]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, session_id: str) -> Session:
        with self._lock:
            session = self._sessions.get(session_id)
            if session is None:
                session = Session(session_id)
                self._sessions[session_id] = session
            self._sessions.move_to_end(session_id)
            while len(self._sessions) > self.max_sessions:
                self._sessions.popitem(last=False)
            return session

    def close(self, session_id: str) -> bool:
        with self._lock:
            return self._sessions.pop(session_id, None) is not None

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def stats(self) -> list[dict]:
        with self._lock:
            sessions = list(self._sessions.values())
        return [session.stats() for session in sessions]
