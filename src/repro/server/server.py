"""The asyncio query server.

One :class:`PermServer` fronts one :class:`~repro.database.PermDatabase`
(which must run the in-process Python backend — the server relies on
its snapshot/timeout execution controls).  The asyncio loop owns all
protocol work: framing, admission control, session bookkeeping,
response encoding.  Query execution — the only CPU-heavy part — runs on
a bounded thread-pool executor so the loop keeps accepting connections
and answering ``stats`` while queries grind.

Request lifecycle:

1. **Admission.** Requests beyond ``max_concurrency + queue_limit``
   in flight are refused immediately with an ``overloaded`` error —
   bounded queueing, never unbounded buffering, so p99 under overload
   degrades to a fast refusal instead of a growing queue.
2. **Snapshot.** A consistent-read token
   (:meth:`PermDatabase.snapshot`) is captured on the asyncio thread
   once the request clears the concurrency gate, so every query
   observes a table state that actually existed at its admission point
   even while writers run on other executor threads.
3. **Execution.** The session's prepared-statement cache is probed;
   on a miss the frontend pipeline compiles the statement.  SELECTs
   execute under the snapshot with a cooperative engine deadline;
   other statements (DDL/DML) route through ``PermDatabase.execute``.
4. **Timeout.** The engine deadline fires inside execution; an
   ``asyncio.wait_for`` backstop (deadline + grace) guards the await
   so a stuck worker can never wedge its connection.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Optional

from repro.database import PermDatabase, QueryResult
from repro.errors import ExecutionError, PermError
from repro.faultinject import InjectedFault, fault_point
from repro.server.protocol import (
    FrameTooLarge,
    ProtocolError,
    drain_payload,
    encode_row,
    read_frame,
    encode_frame,
)
from repro.server.session import Session, SessionManager
from repro.server.stats import ServerStats
from repro.sql import ast
from repro.sql.parser import parse_sql

#: Extra seconds the asyncio backstop waits beyond the engine deadline.
TIMEOUT_GRACE = 5.0


class PermServer:
    """Serve one database over the length-prefixed JSON protocol."""

    def __init__(
        self,
        db: PermDatabase,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_concurrency: int = 4,
        queue_limit: int = 64,
        request_timeout: Optional[float] = 30.0,
    ) -> None:
        if not getattr(db.backend, "supports_execution_controls", False):
            raise PermError(
                "PermServer requires a backend with snapshot/timeout "
                f"execution controls (got {db.backend_name!r})"
            )
        self.db = db
        self.host = host
        self.port = port
        self.max_concurrency = max(int(max_concurrency), 1)
        self.queue_limit = max(int(queue_limit), 0)
        self.request_timeout = request_timeout
        self.sessions = SessionManager()
        self.stats = ServerStats()
        self._pending = 0  # touched only on the asyncio thread
        self._draining = False  # graceful shutdown: refuse new queries
        self._semaphore: Optional[asyncio.Semaphore] = None
        self._executor = ThreadPoolExecutor(
            max_workers=self.max_concurrency, thread_name_prefix="repro-server"
        )
        self._aio_server: Optional[asyncio.AbstractServer] = None

    # -- lifecycle -----------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — resolves ``port=0`` after :meth:`start`."""
        if self._aio_server is None:
            return (self.host, self.port)
        sock = self._aio_server.sockets[0]
        host, port = sock.getsockname()[:2]
        return (host, port)

    async def start(self) -> None:
        self._semaphore = asyncio.Semaphore(self.max_concurrency)
        self._aio_server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )

    async def serve_forever(self) -> None:
        if self._aio_server is None:
            await self.start()
        async with self._aio_server:
            await self._aio_server.serve_forever()

    async def stop(self) -> None:
        if self._aio_server is not None:
            self._aio_server.close()
            await self._aio_server.wait_closed()
        self._executor.shutdown(wait=False, cancel_futures=True)

    async def shutdown(self, drain_timeout: float = 10.0) -> dict:
        """Graceful stop: drain in-flight queries, then :meth:`stop`.

        From the first moment new queries are refused with a typed
        ``shutting_down`` error (connections stay open so the refusal
        is *answered*, not a reset); queries already admitted get up to
        ``drain_timeout`` seconds to finish.  Returns
        ``{"drained": bool, "abandoned": <queries still running>}``.
        """
        self._draining = True
        deadline = time.monotonic() + max(drain_timeout, 0.0)
        while self._pending > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        abandoned = self._pending
        await self.stop()
        return {"drained": abandoned == 0, "abandoned": abandoned}

    @property
    def draining(self) -> bool:
        return self._draining

    # -- connection handling -------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_frame(reader)
                except FrameTooLarge as exc:
                    # Drain the declared payload so the connection is
                    # back at a frame boundary, then answer with a typed
                    # error and close cleanly — the client reads the
                    # reason instead of eating a connection reset while
                    # its oversized send is still in flight.
                    await drain_payload(reader, exc.length)
                    self.stats.record(0.0, "frame_too_large")
                    await self._send(
                        writer,
                        _error(None, "frame_too_large", str(exc)),
                    )
                    break
                except ProtocolError as exc:
                    await self._send(
                        writer,
                        _error(None, "protocol_error", str(exc)),
                    )
                    break
                if request is None:
                    break
                response = await self._dispatch(request)
                await self._send(writer, response)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # Server shutdown cancels handler tasks mid-close; the
                # task is ending either way, so don't re-raise here.
                pass

    async def _send(self, writer: asyncio.StreamWriter, message: dict) -> None:
        writer.write(encode_frame(message))
        await writer.drain()

    # -- request dispatch ----------------------------------------------------

    async def _dispatch(self, request: dict) -> dict:
        op = request.get("op")
        request_id = request.get("id")
        if op == "query":
            return await self._dispatch_query(request)
        if op == "stats":
            response = {
                "id": request_id,
                "ok": True,
                "stats": self.stats.snapshot(
                    active_sessions=len(self.sessions), pending=self._pending
                ),
                "sessions": self.sessions.stats(),
                "statement_cache": self.db.cache_stats(),
            }
            scatter_stats = getattr(self.db.backend, "scatter_stats", None)
            if scatter_stats is not None:
                response["sharding"] = scatter_stats()
            return response
        if op == "close":
            closed = self.sessions.close(str(request.get("session") or "default"))
            return {"id": request_id, "ok": True, "closed": closed}
        return _error(request_id, "protocol_error", f"unknown op {op!r}")

    async def _dispatch_query(self, request: dict) -> dict:
        request_id = request.get("id")
        sql = request.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            return _error(request_id, "protocol_error", "query without sql text")
        provenance = request.get("provenance")
        session = self.sessions.get(str(request.get("session") or "default"))
        timeout = self._effective_timeout(request.get("timeout"))

        start = time.monotonic()
        if self._draining:
            # Graceful shutdown: answer, don't admit.  In-flight queries
            # keep their executor slots until the drain deadline.
            self.stats.record(time.monotonic() - start, "shutting_down")
            return _error(
                request_id,
                "shutting_down",
                "server is draining and refusing new queries",
            )
        try:
            fault_point("server.admission", session=session.session_id)
        except InjectedFault as exc:
            self.stats.record(time.monotonic() - start, exc.error_type)
            return _error(request_id, exc.error_type, str(exc))
        if self._pending >= self.max_concurrency + self.queue_limit:
            # Refuse before buffering anything: bounded admission is the
            # overload contract — clients get a fast, typed error and
            # retry with backoff instead of stacking latency.
            self.stats.record(time.monotonic() - start, "overloaded")
            return _error(
                request_id,
                "overloaded",
                f"server at capacity ({self._pending} requests in flight)",
            )
        self._pending += 1
        try:
            async with self._semaphore:
                snapshot = self.db.snapshot()
                loop = asyncio.get_running_loop()
                future = loop.run_in_executor(
                    self._executor,
                    self._execute,
                    session,
                    sql,
                    provenance,
                    snapshot,
                    timeout,
                )
                if timeout is not None:
                    payload = await asyncio.wait_for(future, timeout + TIMEOUT_GRACE)
                else:
                    payload = await future
        except asyncio.TimeoutError:
            session.record(ok=False)
            self.stats.record(time.monotonic() - start, "timeout")
            return _error(request_id, "timeout", "query timed out")
        except InjectedFault as exc:
            # Chaos harness: surface the injected failure as its typed
            # wire error so client retry logic is exercised end to end.
            session.record(ok=False)
            self.stats.record(time.monotonic() - start, exc.error_type)
            return _error(request_id, exc.error_type, str(exc))
        except ExecutionError as exc:
            outcome, kind = _classify_execution_error(exc)
            session.record(ok=False)
            self.stats.record(time.monotonic() - start, outcome)
            return _error(request_id, kind, str(exc))
        except PermError as exc:
            session.record(ok=False)
            self.stats.record(time.monotonic() - start, "error")
            return _error(request_id, "query_error", str(exc))
        finally:
            self._pending -= 1

        elapsed = time.monotonic() - start
        session.record(ok=True)
        self.stats.record(elapsed, "ok")
        payload["id"] = request_id
        payload["ok"] = True
        payload["elapsed_ms"] = round(elapsed * 1000.0, 3)
        return payload

    def _effective_timeout(self, requested: Any) -> Optional[float]:
        """Per-request timeout, capped by the server-wide deadline."""
        if requested is None:
            return self.request_timeout
        try:
            requested = float(requested)
        except (TypeError, ValueError):
            return self.request_timeout
        if requested <= 0:
            return self.request_timeout
        if self.request_timeout is None:
            return requested
        return min(requested, self.request_timeout)

    # -- executor-thread work ------------------------------------------------

    def _execute(
        self,
        session: Session,
        sql: str,
        provenance: Optional[str],
        snapshot: dict,
        timeout: Optional[float],
    ) -> dict:
        fault_point("server.query", session=session.session_id, sql=sql)
        query = session.lookup(self.db, sql, provenance)
        cached = query is not None
        if query is None:
            statements = parse_sql(sql)
            if len(statements) == 1 and isinstance(
                statements[0], (ast.SelectStmt, ast.SetOpSelect)
            ):
                query, _ = session.compiled(self.db, sql, provenance)
            else:
                if provenance is not None:
                    raise PermError(
                        "provenance semantics require a single SELECT statement"
                    )
                # DDL/DML (and multi-statement scripts) execute outside
                # the snapshot: they *create* the states snapshots name.
                result = self.db.execute(sql)
                return _result_payload(result, cached=False)
        result = self.db.run_compiled(query, snapshot=snapshot, timeout=timeout)
        return _result_payload(result, cached=cached)


def _result_payload(result: QueryResult, cached: bool) -> dict:
    return {
        "columns": list(result.columns),
        "rows": [encode_row(row) for row in result.rows],
        "command": result.command,
        "annotation_column": result.annotation_column,
        "cached": cached,
    }


def _error(request_id: Any, kind: str, message: str) -> dict:
    return {
        "id": request_id,
        "ok": False,
        "error": {"type": kind, "message": message},
    }


def _classify_execution_error(exc: ExecutionError) -> tuple[str, str]:
    text = str(exc)
    if text.startswith("query canceled"):
        return "timeout", "timeout"
    if text.startswith("snapshot too old"):
        return "error", "snapshot_invalid"
    return "error", "query_error"


# ---------------------------------------------------------------------------
# Threaded embedding (CLI, tests, benchmarks)
# ---------------------------------------------------------------------------


class ServerHandle:
    """A server running on a daemon thread with its own event loop."""

    def __init__(self, db: PermDatabase, host: str, port: int, kwargs: dict) -> None:
        self._db = db
        self._kwargs = kwargs
        self._host = host
        self._port = port
        self.server: Optional[PermServer] = None
        self._ready = threading.Event()
        self._failure: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-server-loop", daemon=True
        )

    def start(self) -> "ServerHandle":
        self._thread.start()
        if not self._ready.wait(timeout=10.0):
            raise PermError("server failed to start within 10s")
        if self._failure is not None:
            raise PermError(f"server failed to start: {self._failure}")
        return self

    @property
    def address(self) -> tuple[str, int]:
        assert self.server is not None
        return self.server.address

    def stop(self) -> None:
        if self._loop is not None and self._stop_event is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:
                pass  # loop already closed: the thread is on its way out
        self._thread.join(timeout=10.0)

    def shutdown(self, drain_timeout: float = 10.0) -> Optional[dict]:
        """Graceful stop from any thread: drain, refuse, then join.

        Returns the server's drain report (see
        :meth:`PermServer.shutdown`), or None when the loop is already
        gone.
        """
        if self._loop is None or self.server is None or not self._thread.is_alive():
            return None
        future = asyncio.run_coroutine_threadsafe(
            self.server.shutdown(drain_timeout), self._loop
        )
        try:
            report = future.result(timeout=drain_timeout + 10.0)
        finally:
            self.stop()
        return report

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # pragma: no cover - startup failures
            self._failure = exc
            self._ready.set()

    async def _main(self) -> None:
        self.server = PermServer(self._db, self._host, self._port, **self._kwargs)
        await self.server.start()
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._ready.set()
        async with self.server._aio_server:
            await self._stop_event.wait()
        await self.server.stop()


def start_in_thread(
    db: PermDatabase, host: str = "127.0.0.1", port: int = 0, **kwargs
) -> ServerHandle:
    """Start a :class:`PermServer` on a background thread.

    Returns a handle exposing ``address`` and ``stop()`` — the shape the
    shell's ``\\server start`` and the test/benchmark harnesses use.
    """
    return ServerHandle(db, host, port, kwargs).start()
