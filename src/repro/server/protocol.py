"""The wire protocol: length-prefixed JSON frames plus a value codec.

Framing is a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON — trivially parseable from any language, stream
boundaries are explicit, and oversized frames are rejected before
allocation (:data:`MAX_FRAME`).

Requests and responses are flat JSON objects:

* request  — ``{"op": "query", "id": 1, "sql": "...",
  "provenance": null | "witness" | "polynomial" | <strategy>,
  "session": "<client-chosen id>", "timeout": <seconds, optional>}``;
  ``op`` may also be ``"stats"`` (observability counters) or
  ``"close"`` (discard the session's server-side state).
* response — ``{"id": ..., "ok": true, "columns": [...], "rows":
  [...], ...}`` or ``{"id": ..., "ok": false, "error":
  {"type": "timeout" | "overloaded" | "snapshot_invalid" |
  "query_error" | "protocol_error", "message": "..."}}``.

JSON has no date/interval/polynomial values, so non-scalar engine
values ride in single-key tagged objects (``{"$date": "2026-01-01"}``,
``{"$poly": <Polynomial.to_wire()>}``, ``{"$interval": [days,
months]}``); the provenance polynomial codec reuses the engine's
canonical wire form, so annotations survive the hop bit-exactly.
"""

from __future__ import annotations

import datetime
import json
import socket
import struct
from typing import Any, Optional

from repro.datatypes import Interval
from repro.semiring.polynomial import Polynomial

#: Upper bound on one frame's payload, request or response.
MAX_FRAME = 8 * 1024 * 1024

_HEADER = struct.Struct(">I")


class ProtocolError(Exception):
    """A malformed or oversized frame."""


# ---------------------------------------------------------------------------
# Value codec
# ---------------------------------------------------------------------------


def encode_value(value: Any) -> Any:
    """One engine value -> a JSON-representable value."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Polynomial):
        return {"$poly": value.to_wire()}
    if isinstance(value, datetime.date):
        return {"$date": value.isoformat()}
    if isinstance(value, Interval):
        return {"$interval": [value.days, value.months]}
    # Loud-but-lossy fallback: the repr still identifies the value, and
    # a tagged object keeps it distinguishable from a plain string.
    return {"$str": str(value)}


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value` (``$str`` stays a string)."""
    if isinstance(value, dict) and len(value) == 1:
        if "$poly" in value:
            return Polynomial.from_wire(value["$poly"])
        if "$date" in value:
            return datetime.date.fromisoformat(value["$date"])
        if "$interval" in value:
            days, months = value["$interval"]
            return Interval(days=days, months=months)
        if "$str" in value:
            return value["$str"]
    return value


def encode_row(row: tuple) -> list:
    return [encode_value(value) for value in row]


def decode_row(row: list) -> tuple:
    return tuple(decode_value(value) for value in row)


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------


def encode_frame(message: dict) -> bytes:
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds MAX_FRAME ({MAX_FRAME})"
        )
    return _HEADER.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> dict:
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError("frame payload must be a JSON object")
    return message


def check_length(length: int) -> int:
    if length > MAX_FRAME:
        raise ProtocolError(
            f"declared frame length {length} exceeds MAX_FRAME ({MAX_FRAME})"
        )
    return length


# -- asyncio side (server) --------------------------------------------------


async def read_frame(reader) -> Optional[dict]:
    """Read one frame; None on clean EOF at a frame boundary."""
    import asyncio

    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-header") from None
    length = check_length(_HEADER.unpack(header)[0])
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError("connection closed mid-frame") from None
    return decode_payload(payload)


# -- blocking side (client) --------------------------------------------------


def send_frame(sock: socket.socket, message: dict) -> None:
    sock.sendall(encode_frame(message))


def recv_frame(sock: socket.socket) -> Optional[dict]:
    """Read one frame from a blocking socket; None on clean EOF."""
    header = _recv_exact(sock, _HEADER.size, allow_eof=True)
    if header is None:
        return None
    length = check_length(_HEADER.unpack(header)[0])
    payload = _recv_exact(sock, length, allow_eof=False)
    return decode_payload(payload)


def _recv_exact(
    sock: socket.socket, count: int, allow_eof: bool
) -> Optional[bytes]:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if allow_eof and remaining == count:
                return None
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)
