"""The wire protocol: length-prefixed JSON frames plus a value codec.

Framing is a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON — trivially parseable from any language, stream
boundaries are explicit, and oversized frames are rejected before
allocation (:data:`MAX_FRAME`).

Requests and responses are flat JSON objects:

* request  — ``{"op": "query", "id": 1, "sql": "...",
  "provenance": null | "witness" | "polynomial" | <strategy>,
  "session": "<client-chosen id>", "timeout": <seconds, optional>}``;
  ``op`` may also be ``"stats"`` (observability counters) or
  ``"close"`` (discard the session's server-side state).
* response — ``{"id": ..., "ok": true, "columns": [...], "rows":
  [...], ...}`` or ``{"id": ..., "ok": false, "error":
  {"type": "timeout" | "overloaded" | "snapshot_invalid" |
  "shutting_down" | "frame_too_large" | "query_error" |
  "protocol_error", "message": "..."}}``.  ``overloaded`` and
  ``snapshot_invalid`` are safe to retry for reads (the client's
  backoff machinery does); ``shutting_down`` means the server is
  draining and will not admit new work; a frame over the 8 MiB cap
  gets ``frame_too_large`` followed by a clean close.

JSON has no date/interval/polynomial values, so non-scalar engine
values ride in single-key tagged objects (``{"$date": "2026-01-01"}``,
``{"$poly": <Polynomial.to_wire()>}``, ``{"$interval": [days,
months]}``); the provenance polynomial codec reuses the engine's
canonical wire form, so annotations survive the hop bit-exactly.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Optional

# The value codec is shared with the durability layer's checkpoints;
# re-exported here so existing protocol users keep their import path.
from repro.codec import (  # noqa: F401  (re-exports)
    decode_row,
    decode_value,
    encode_row,
    encode_value,
)

#: Upper bound on one frame's payload, request or response.
MAX_FRAME = 8 * 1024 * 1024

#: Most bytes the server will read-and-discard to answer an oversized
#: frame with a typed error on a clean connection; a declared length
#: beyond this is treated as a framing desync and the connection is
#: closed after the error reply without draining.
MAX_DRAIN = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")


class ProtocolError(Exception):
    """A malformed or oversized frame."""


class FrameTooLarge(ProtocolError):
    """A frame whose declared payload exceeds :data:`MAX_FRAME`.

    Distinguished from generic framing corruption so the server can
    drain the oversized payload, reply with a typed ``frame_too_large``
    error, and close cleanly instead of resetting the connection under
    the client's still-in-flight send.
    """

    def __init__(self, length: int) -> None:
        super().__init__(
            f"declared frame length {length} exceeds MAX_FRAME ({MAX_FRAME})"
        )
        self.length = length


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------


def encode_frame(message: dict) -> bytes:
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds MAX_FRAME ({MAX_FRAME})"
        )
    return _HEADER.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> dict:
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError("frame payload must be a JSON object")
    return message


def check_length(length: int) -> int:
    if length > MAX_FRAME:
        raise FrameTooLarge(length)
    return length


# -- asyncio side (server) --------------------------------------------------


async def read_frame(reader) -> Optional[dict]:
    """Read one frame; None on clean EOF at a frame boundary."""
    import asyncio

    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-header") from None
    length = check_length(_HEADER.unpack(header)[0])
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError("connection closed mid-frame") from None
    return decode_payload(payload)


async def drain_payload(reader, length: int, chunk: int = 1 << 20) -> bool:
    """Read and discard an oversized frame's payload.

    Returns True when the payload was fully consumed (the connection is
    back at a frame boundary and the error reply will be readable by
    the client), False when the length is implausible (> ``MAX_DRAIN``)
    or the peer hung up mid-payload.
    """
    import asyncio

    if length > MAX_DRAIN:
        return False
    remaining = length
    while remaining:
        try:
            data = await reader.readexactly(min(chunk, remaining))
        except asyncio.IncompleteReadError:
            return False
        remaining -= len(data)
    return True


# -- blocking side (client) --------------------------------------------------


def send_frame(sock: socket.socket, message: dict) -> None:
    sock.sendall(encode_frame(message))


def recv_frame(sock: socket.socket) -> Optional[dict]:
    """Read one frame from a blocking socket; None on clean EOF."""
    header = _recv_exact(sock, _HEADER.size, allow_eof=True)
    if header is None:
        return None
    length = check_length(_HEADER.unpack(header)[0])
    payload = _recv_exact(sock, length, allow_eof=False)
    return decode_payload(payload)


def _recv_exact(
    sock: socket.socket, count: int, allow_eof: bool
) -> Optional[bytes]:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if allow_eof and remaining == count:
                return None
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)
