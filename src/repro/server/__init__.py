"""Client/server front-end for the provenance engine.

The paper's deployment model makes provenance queries ordinary SQL a
DBMS serves to clients; this package gives the repro that serving
surface.  An asyncio server (:mod:`repro.server.server`) speaks a
length-prefixed JSON protocol (:mod:`repro.server.protocol`) carrying
the query text, the provenance semantics, and a session id.  Sessions
(:mod:`repro.server.session`) hold prepared-statement caches so
repeated statements skip the frontend pipeline; every read executes
under a snapshot token built on the storage layer's append-only heaps,
so concurrent clients get consistent answers while writers run.
Admission is bounded and overload is answered, not buffered; per-query
deadlines cancel runaway execution cooperatively inside the engine.
:mod:`repro.server.client` is the matching blocking client.
"""

from repro.server.client import (
    RETRYABLE_ERRORS,
    ClientResult,
    PermClient,
    ServerError,
)
from repro.server.protocol import MAX_FRAME, FrameTooLarge, ProtocolError
from repro.server.server import PermServer, ServerHandle, start_in_thread
from repro.server.session import Session, SessionManager
from repro.server.stats import ServerStats

__all__ = [
    "MAX_FRAME",
    "RETRYABLE_ERRORS",
    "ClientResult",
    "FrameTooLarge",
    "PermClient",
    "PermServer",
    "ProtocolError",
    "ServerError",
    "ServerHandle",
    "ServerStats",
    "Session",
    "SessionManager",
    "start_in_thread",
]
