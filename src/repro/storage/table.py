"""Heap tables: the mutable storage behind catalog relations.

A :class:`Table` owns a list of row tuples plus its schema.  It is the
physical object scanned by the executor and the object INSERT/SELECT INTO
write into.  Duplicate rows are naturally represented by repetition, which
matches the bag semantics of the Perm algebra.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterable, Iterator, Sequence

from repro.catalog.schema import TableSchema
from repro.errors import ExecutionError
from repro.storage.chunk import DEFAULT_BATCH_SIZE, Chunk
from repro.storage.relation import Relation


_UID_COUNTER = itertools.count(1)


class Table:
    """A named heap of rows conforming to a :class:`TableSchema`.

    Mutation tracking for execution backends that mirror catalog data
    (e.g. the SQLite backend):

    * ``uid`` uniquely identifies this heap for the process lifetime, so a
      dropped-and-recreated table of the same name is recognizably new;
    * ``epoch`` increments on :meth:`truncate` — within one epoch the row
      list only ever *grows*, so a mirror that remembers how many rows it
      copied can sync incrementally by shipping just the appended suffix.
    """

    def __init__(self, schema: TableSchema, rows: Iterable[Sequence[Any]] | None = None) -> None:
        self.schema = schema
        self._rows: list[tuple] = []
        self.uid = next(_UID_COUNTER)
        self.epoch = 0
        # Columnar view of the heap for vectorized scans, rebuilt lazily
        # whenever the (epoch, row count) it was derived from goes stale.
        # The epoch matters: truncate() + reinserting the same number of
        # rows must not serve the pre-truncate columns.
        self._columns: list[list] | None = None
        self._columns_state: tuple[int, int] = (-1, -1)
        if rows is not None:
            self.insert_many(rows)

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def column_names(self) -> tuple[str, ...]:
        return self.schema.column_names

    def insert(self, row: Sequence[Any]) -> None:
        """Insert one row, validating width and (cheaply) types."""
        row = tuple(row)
        if len(row) != len(self.schema.columns):
            raise ExecutionError(
                f"INSERT into {self.name}: row has {len(row)} values, "
                f"table has {len(self.schema.columns)} columns"
            )
        self._rows.append(row)

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> int:
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def truncate(self) -> None:
        self._rows.clear()
        self.epoch += 1

    def scan(self) -> Iterator[tuple]:
        """Iterate the stored rows (the executor's SeqScan source)."""
        return iter(self._rows)

    def columnar(self) -> list[list]:
        """The heap transposed to per-attribute columns, cached.

        Within one epoch the row list only grows, so the cache is valid
        exactly when it was built from the current (epoch, row count);
        otherwise it is rebuilt with one C-level transpose.
        """
        state = (self.epoch, len(self._rows))
        if self._columns is None or self._columns_state != state:
            width = len(self.schema.columns)
            if not self._rows:
                self._columns = [[] for _ in range(width)]
            else:
                self._columns = [list(col) for col in zip(*self._rows)]
            self._columns_state = state
        return self._columns

    def scan_chunks(
        self,
        batch_size: int = DEFAULT_BATCH_SIZE,
        columns: list[int] | None = None,
    ) -> Iterator[Chunk]:
        """Scan the heap as columnar chunks (the vectorized SeqScan source).

        ``columns`` (when given) narrows to the listed attribute numbers in
        output order.  ``batch_size`` is always honored — even when the
        columnar cache holds the whole table: the zero-copy fast path
        (handing out the cached column lists directly; consumers never
        mutate chunk columns) applies only when the table genuinely fits
        one batch, otherwise the cache is sliced into bounded chunks.
        The cost-based planner shrinks the executor's batch size below
        the table size when joins fan out
        (:attr:`~repro.executor.nodes.PlanNode.batch_size_hint`), so at
        larger scale factors scans stream bounded chunks instead of
        SF-sized single ones.
        """
        total = len(self._rows)
        if total == 0:
            return
        batch_size = max(int(batch_size), 1)
        data = self.columnar()
        narrow = columns is not None
        if narrow:
            data = [data[i] for i in columns]
        if total <= batch_size:
            # Full-width single chunks also share the heap's row list:
            # a downstream consumer that needs row tuples (a hash-join
            # spool) then gathers original rows instead of transposing.
            yield Chunk(
                columns=data,
                nrows=total,
                width=len(data),
                phys_rows=None if narrow else self._rows,
            )
            return
        for start in range(0, total, batch_size):
            stop = min(start + batch_size, total)
            yield Chunk(
                columns=[col[start:stop] for col in data],
                nrows=stop - start,
                width=len(data),
                phys_rows=None if narrow else self._rows[start:stop],
            )

    def raw_rows(self) -> list[tuple]:
        """Direct access to the row list; used by scans for speed."""
        return self._rows

    def row_count(self) -> int:
        return len(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def to_relation(self) -> Relation:
        return Relation.from_rows(self.column_names, self._rows)

    def __repr__(self) -> str:
        return f"Table({self.name!r}, {len(self._rows)} rows)"
