"""Heap tables: the mutable storage behind catalog relations.

A :class:`Table` owns a list of row tuples plus its schema.  It is the
physical object scanned by the executor and the object INSERT/SELECT INTO
write into.  Duplicate rows are naturally represented by repetition, which
matches the bag semantics of the Perm algebra.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Sequence

from repro.catalog.schema import TableSchema
from repro.errors import ExecutionError
from repro.storage.chunk import DEFAULT_BATCH_SIZE, Chunk
from repro.storage.relation import Relation


_UID_COUNTER = itertools.count(1)

#: Per-statement deltas retained per table; readers that fall further
#: behind (``deltas_since`` past the pruned floor) get ``None`` and must
#: recompute from the full heap.
DELTA_LOG_CAPACITY = 256


@dataclass(frozen=True)
class TableDelta:
    """The row sets one DML statement added to / removed from a table.

    ``seq`` orders deltas per table (1-based, gapless while retained).
    An UPDATE records both sets: the pre-images it removed and the
    post-images it wrote.  Consumers (materialized-view maintenance,
    future row versioning) treat the pair as delete-then-insert.
    """

    seq: int
    command: str  # 'INSERT' | 'DELETE' | 'UPDATE'
    inserted: tuple[tuple, ...] = ()
    deleted: tuple[tuple, ...] = ()


class Table:
    """A named heap of rows conforming to a :class:`TableSchema`.

    Mutation tracking for execution backends that mirror catalog data
    (e.g. the SQLite backend):

    * ``uid`` uniquely identifies this heap for the process lifetime, so a
      dropped-and-recreated table of the same name is recognizably new;
    * ``epoch`` increments on :meth:`truncate` — within one epoch the row
      list only ever *grows*, so a mirror that remembers how many rows it
      copied can sync incrementally by shipping just the appended suffix.
    """

    def __init__(self, schema: TableSchema, rows: Iterable[Sequence[Any]] | None = None) -> None:
        self.schema = schema
        self._rows: list[tuple] = []
        self.uid = next(_UID_COUNTER)
        self.epoch = 0
        # Columnar view of the heap for vectorized scans, rebuilt lazily
        # whenever the (epoch, row count) it was derived from goes stale.
        # The epoch matters: truncate() + reinserting the same number of
        # rows must not serve the pre-truncate columns.
        self._columns: list[list] | None = None
        self._columns_state: tuple[int, int] = (-1, -1)
        # Serializes columnar-cache rebuilds: concurrent scans (morsel
        # workers, server requests) may race on a stale cache, and each
        # would otherwise redo the full transpose.  Appends themselves
        # stay lock-free — CPython list.append is atomic and within one
        # epoch the row list only grows.
        self._columns_lock = threading.Lock()
        # Per-statement delta log (``TableDelta``): what each DML
        # statement inserted/deleted, for consumers that maintain
        # derived state incrementally.  ``delta_seq`` is the seq of the
        # newest recorded delta; ``_delta_floor`` the seq below which
        # deltas were pruned (or invalidated by truncate).
        self._deltas: list[TableDelta] = []
        self.delta_seq = 0
        self._delta_floor = 0
        if rows is not None:
            self.insert_many(rows)

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def column_names(self) -> tuple[str, ...]:
        return self.schema.column_names

    def insert(self, row: Sequence[Any]) -> None:
        """Insert one row, validating width and (cheaply) types."""
        row = tuple(row)
        if len(row) != len(self.schema.columns):
            raise ExecutionError(
                f"INSERT into {self.name}: row has {len(row)} values, "
                f"table has {len(self.schema.columns)} columns"
            )
        self._rows.append(row)

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> int:
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def truncate(self) -> None:
        self._rows.clear()
        self.epoch += 1
        # A truncate is not expressible as a bounded delta; invalidate
        # the whole log so lagging readers recompute from scratch.
        self._deltas.clear()
        self._delta_floor = self.delta_seq

    def remove_rows(self, rows: Iterable[Sequence[Any]]) -> int:
        """Remove one occurrence per listed row (order-preserving multiset
        difference); returns how many rows were actually removed.

        Removal ends the append-only guarantee the current epoch made to
        snapshot readers, so the epoch is bumped — in-flight snapshots
        taken before the removal fail loudly instead of reading rows that
        may have shifted position.
        """
        from collections import Counter

        pending = Counter(tuple(row) for row in rows)
        if not pending:
            return 0
        kept: list[tuple] = []
        removed = 0
        for row in self._rows:
            if pending.get(row, 0) > 0:
                pending[row] -= 1
                removed += 1
            else:
                kept.append(row)
        if removed:
            self._rows[:] = kept
            self.epoch += 1
        return removed

    # -- delta log ----------------------------------------------------------

    def record_delta(
        self,
        command: str,
        inserted: Iterable[Sequence[Any]] = (),
        deleted: Iterable[Sequence[Any]] = (),
    ) -> TableDelta:
        """Append one statement's delta row sets to the log."""
        self.delta_seq += 1
        delta = TableDelta(
            seq=self.delta_seq,
            command=command,
            inserted=tuple(tuple(r) for r in inserted),
            deleted=tuple(tuple(r) for r in deleted),
        )
        self._deltas.append(delta)
        if len(self._deltas) > DELTA_LOG_CAPACITY:
            dropped = self._deltas.pop(0)
            self._delta_floor = dropped.seq
        return delta

    def deltas_since(self, seq: int) -> list[TableDelta] | None:
        """All deltas recorded after ``seq``, oldest first.

        Returns ``None`` when the log cannot answer — ``seq`` predates
        the pruned floor or a truncate — meaning the caller must fall
        back to reading the full heap.
        """
        if seq < self._delta_floor:
            return None
        return [d for d in self._deltas if d.seq > seq]

    # -- durability (checkpoint restore) -------------------------------------

    def delta_log_state(self) -> tuple[int, list[TableDelta]]:
        """(pruned floor, retained deltas) — what a checkpoint persists."""
        return self._delta_floor, list(self._deltas)

    def restore_state(
        self,
        rows: Iterable[Sequence[Any]],
        epoch: int,
        delta_seq: int,
        delta_floor: int,
        deltas: Iterable[TableDelta],
    ) -> None:
        """Rehydrate heap rows, epoch and delta log from a checkpoint.

        The table keeps its fresh ``uid`` (uids are process-lifetime
        identities, never persisted); everything else — including the
        in-memory delta log, so incremental matview maintenance resumes
        where the crashed process left off — is restored exactly.
        """
        self._rows = [tuple(row) for row in rows]
        self.epoch = epoch
        self.delta_seq = delta_seq
        self._delta_floor = delta_floor
        self._deltas = list(deltas)
        self._columns = None
        self._columns_state = (-1, -1)

    def scan(self) -> Iterator[tuple]:
        """Iterate the stored rows (the executor's SeqScan source)."""
        return iter(self._rows)

    def columnar(self) -> list[list]:
        """The heap transposed to per-attribute columns, cached.

        Within one epoch the row list only grows, so the cache is valid
        exactly when it was built from the current (epoch, row count);
        otherwise it is rebuilt with one C-level transpose.

        Thread-safe via double-checked locking: readers that find a
        fresh cache never take the lock; a stale cache is rebuilt by one
        thread while the others wait.  The returned columns are at least
        as long as any row count read before the call (the row list only
        grows within an epoch), so callers may slice by their own count.
        """
        state = (self.epoch, len(self._rows))
        columns = self._columns
        if columns is not None and self._columns_state == state:
            return columns
        with self._columns_lock:
            state = (self.epoch, len(self._rows))
            if self._columns is None or self._columns_state != state:
                count = state[1]
                width = len(self.schema.columns)
                if count == 0:
                    self._columns = [[] for _ in range(width)]
                else:
                    # Bound the transpose to the row count recorded in
                    # ``state`` so a concurrent append cannot leave the
                    # cache longer than its recorded state says.
                    self._columns = [list(col) for col in zip(*self._rows[:count])]
                self._columns_state = state
            return self._columns

    def scan_chunks(
        self,
        batch_size: int = DEFAULT_BATCH_SIZE,
        columns: list[int] | None = None,
        start: int = 0,
        stop: int | None = None,
    ) -> Iterator[Chunk]:
        """Scan the heap as columnar chunks (the vectorized SeqScan source).

        ``columns`` (when given) narrows to the listed attribute numbers in
        output order.  ``batch_size`` is always honored — even when the
        columnar cache holds the whole table: the zero-copy fast path
        (handing out the cached column lists directly; consumers never
        mutate chunk columns) applies only when the table genuinely fits
        one batch, otherwise the cache is sliced into bounded chunks.
        The cost-based planner shrinks the executor's batch size below
        the table size when joins fan out
        (:attr:`~repro.executor.nodes.PlanNode.batch_size_hint`), so at
        larger scale factors scans stream bounded chunks instead of
        SF-sized single ones.

        ``start``/``stop`` bound the scan to a physical row range — the
        substrate for both morsel-driven parallelism (each worker scans
        one range) and snapshot reads (the visible prefix of the heap at
        snapshot time; within one epoch rows are append-only, so a row
        count *is* a snapshot token).
        """
        total = len(self._rows)
        bounded = start != 0 or stop is not None
        stop = total if stop is None else min(stop, total)
        start = max(start, 0)
        if start >= stop:
            return
        batch_size = max(int(batch_size), 1)
        data = self.columnar()
        narrow = columns is not None
        if narrow:
            data = [data[i] for i in columns]
        if not bounded and total <= batch_size:
            # Full-width single chunks also share the heap's row list:
            # a downstream consumer that needs row tuples (a hash-join
            # spool) then gathers original rows instead of transposing.
            yield Chunk(
                columns=data,
                nrows=total,
                width=len(data),
                phys_rows=None if narrow else self._rows,
            )
            return
        for lower in range(start, stop, batch_size):
            upper = min(lower + batch_size, stop)
            yield Chunk(
                columns=[col[lower:upper] for col in data],
                nrows=upper - lower,
                width=len(data),
                phys_rows=None if narrow else self._rows[lower:upper],
            )

    def raw_rows(self) -> list[tuple]:
        """Direct access to the row list; used by scans for speed."""
        return self._rows

    def row_count(self) -> int:
        return len(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def to_relation(self) -> Relation:
        return Relation.from_rows(self.column_names, self._rows)

    def __repr__(self) -> str:
        return f"Table({self.name!r}, {len(self._rows)} rows)"
