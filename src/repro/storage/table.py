"""Heap tables: the mutable storage behind catalog relations.

A :class:`Table` owns a list of row tuples plus its schema.  It is the
physical object scanned by the executor and the object INSERT/SELECT INTO
write into.  Duplicate rows are naturally represented by repetition, which
matches the bag semantics of the Perm algebra.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterable, Iterator, Sequence

from repro.catalog.schema import TableSchema
from repro.errors import ExecutionError
from repro.storage.relation import Relation


_UID_COUNTER = itertools.count(1)


class Table:
    """A named heap of rows conforming to a :class:`TableSchema`.

    Mutation tracking for execution backends that mirror catalog data
    (e.g. the SQLite backend):

    * ``uid`` uniquely identifies this heap for the process lifetime, so a
      dropped-and-recreated table of the same name is recognizably new;
    * ``epoch`` increments on :meth:`truncate` — within one epoch the row
      list only ever *grows*, so a mirror that remembers how many rows it
      copied can sync incrementally by shipping just the appended suffix.
    """

    def __init__(self, schema: TableSchema, rows: Iterable[Sequence[Any]] | None = None) -> None:
        self.schema = schema
        self._rows: list[tuple] = []
        self.uid = next(_UID_COUNTER)
        self.epoch = 0
        if rows is not None:
            self.insert_many(rows)

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def column_names(self) -> tuple[str, ...]:
        return self.schema.column_names

    def insert(self, row: Sequence[Any]) -> None:
        """Insert one row, validating width and (cheaply) types."""
        row = tuple(row)
        if len(row) != len(self.schema.columns):
            raise ExecutionError(
                f"INSERT into {self.name}: row has {len(row)} values, "
                f"table has {len(self.schema.columns)} columns"
            )
        self._rows.append(row)

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> int:
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def truncate(self) -> None:
        self._rows.clear()
        self.epoch += 1

    def scan(self) -> Iterator[tuple]:
        """Iterate the stored rows (the executor's SeqScan source)."""
        return iter(self._rows)

    def raw_rows(self) -> list[tuple]:
        """Direct access to the row list; used by scans for speed."""
        return self._rows

    def row_count(self) -> int:
        return len(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def to_relation(self) -> Relation:
        return Relation.from_rows(self.column_names, self._rows)

    def __repr__(self) -> str:
        return f"Table({self.name!r}, {len(self._rows)} rows)"
