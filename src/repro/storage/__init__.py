"""In-memory storage: bag-semantics relations, heap tables, and the
columnar chunks the vectorized executor scans them as."""

from repro.storage.chunk import DEFAULT_BATCH_SIZE, Chunk, chunk_rows
from repro.storage.relation import Relation
from repro.storage.table import Table

__all__ = ["Chunk", "DEFAULT_BATCH_SIZE", "Relation", "Table", "chunk_rows"]
