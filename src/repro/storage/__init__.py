"""In-memory storage: bag-semantics relations and heap tables."""

from repro.storage.relation import Relation
from repro.storage.table import Table

__all__ = ["Relation", "Table"]
