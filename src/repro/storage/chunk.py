"""Columnar batches: the unit of vectorized execution.

A :class:`Chunk` is a horizontal slice of a relation in columnar form:
one Python list per attribute plus a row count.  Plan nodes exchange
chunks through ``run_batches`` instead of single tuples through ``run``,
which amortizes the interpreter's per-row dispatch cost (generator
frames, closure calls) over :data:`DEFAULT_BATCH_SIZE` rows at a time.

Three design points keep chunks cheap in pure Python:

* **Dual backing.**  A chunk can be backed by columns, by row tuples, or
  both; each representation is materialized lazily with one C-level
  ``zip(*...)`` transpose and then cached.  Operators consume whichever
  form suits them (expression kernels read columns, hash joins read
  rows) without per-row Python loops at the boundary.

* **Selection vectors.**  Filters do not copy data: they attach a list
  of surviving physical row positions (``sel``).  Downstream readers
  gather lazily — :meth:`column` applies the selection per column on
  first use, so a projection after a filter touches only the columns it
  actually needs and no intermediate rows are ever materialized.

* **NULL stays in-band.**  SQL NULL is ``None`` inside the column lists
  (no separate validity mask): boolean columns are tri-valued
  ``True``/``False``/``None``, which is exactly the three-valued logic
  the expression kernels implement.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

#: Rows per chunk.  Python columns hold object *pointers*, so unlike a
#: native columnar engine there is no L1-blocking payoff to small
#: vectors — per-chunk interpreter overhead dominates instead.  A large
#: batch lets every table at benchmark scale stream as a single
#: zero-copy chunk straight out of the heap's columnar cache, while
#: still bounding memory on genuinely large scans.
DEFAULT_BATCH_SIZE = 65536


class Chunk:
    """A batch of rows, columnar-first, with an optional selection vector.

    ``nrows`` is the *physical* length of every column; the *logical*
    row count (``len(chunk)``) is ``len(sel)`` when a selection vector
    is present.  ``sel`` holds physical positions in output order and is
    only ever set on column-backed chunks.
    """

    __slots__ = ("_columns", "_rows", "_phys_rows", "nrows", "width", "sel")

    def __init__(
        self,
        columns: Optional[list[list]] = None,
        nrows: int = 0,
        width: Optional[int] = None,
        sel: Optional[list[int]] = None,
        rows: Optional[list[tuple]] = None,
        phys_rows: Optional[list[tuple]] = None,
    ) -> None:
        self._columns = columns
        self._rows = rows
        # Physical row tuples aligned with the columns (the heap's own
        # row list, shared by reference).  With a selection vector,
        # ``rows()`` then gathers original tuples instead of transposing
        # columns — a scan→filter→join chain never rebuilds rows.
        self._phys_rows = phys_rows
        self.nrows = nrows
        self.width = len(columns) if width is None and columns is not None else (width or 0)
        self.sel = sel

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_columns(cls, columns: list[list], nrows: int) -> "Chunk":
        return cls(columns=columns, nrows=nrows, width=len(columns))

    @classmethod
    def from_rows(cls, rows: list[tuple], width: int) -> "Chunk":
        return cls(nrows=len(rows), width=width, rows=rows)

    # -- shape --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.sel) if self.sel is not None else self.nrows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        backing = []
        if self._columns is not None:
            backing.append("cols")
        if self._rows is not None:
            backing.append("rows")
        suffix = f", sel={len(self.sel)}" if self.sel is not None else ""
        return f"Chunk({len(self)}x{self.width} [{'+'.join(backing)}]{suffix})"

    # -- representation access ----------------------------------------------

    def is_row_backed(self) -> bool:
        """True when only the row representation is materialized."""
        return self._columns is None and self._rows is not None

    def physical_columns(self) -> list[list]:
        """The backing columns (physical order, selection NOT applied)."""
        if self._columns is None:
            # Row-backed chunks never carry a selection vector, so the
            # transpose is the physical layout.
            if self.width == 0:
                self._columns = []
            elif not self._rows:
                self._columns = [[] for _ in range(self.width)]
            else:
                self._columns = [list(c) for c in zip(*self._rows)]
        return self._columns

    def column(self, index: int) -> list:
        """One logical column (selection vector applied, lazily).

        Row-backed chunks extract the one requested column directly
        instead of transposing the whole chunk — aggregate and join-key
        kernels typically touch a few columns of a wide row.
        """
        if self._columns is None and self._rows is not None:
            return [row[index] for row in self._rows]
        col = self.physical_columns()[index]
        sel = self.sel
        if sel is None:
            return col
        return [col[i] for i in sel]

    def rows(self) -> list[tuple]:
        """The logical rows as tuples (materialized once, then cached)."""
        if self._rows is None:
            sel = self.sel
            phys = self._phys_rows
            if phys is not None:
                self._rows = phys if sel is None else [phys[i] for i in sel]
                return self._rows
            columns = self.physical_columns()
            if not columns:
                self._rows = [()] * len(self)
            elif sel is None:
                self._rows = list(zip(*columns))
            elif len(sel) * 3 > self.nrows:
                # Dense selection: one C-level transpose of the whole
                # chunk plus a row gather beats per-column gathers.
                all_rows = list(zip(*columns))
                self._rows = [all_rows[i] for i in sel]
            else:
                self._rows = list(zip(*([col[i] for i in sel] for col in columns)))
                # The gather consumed the selection; cache as compact rows.
        return self._rows

    # -- derived chunks -----------------------------------------------------

    def with_sel(self, sel: list[int]) -> "Chunk":
        """This chunk's columns restricted to the given physical rows."""
        phys = self._phys_rows
        if phys is None and self.sel is None:
            # Without a selection the cached logical rows ARE physical.
            phys = self._rows
        return Chunk(
            columns=self.physical_columns(),
            nrows=self.nrows,
            width=self.width,
            sel=sel,
            phys_rows=phys,
        )

    def select(self, logical: Sequence[int]) -> "Chunk":
        """Restrict to a subset of *logical* positions (for progressive
        predicate evaluation: AND/OR/CASE evaluate later arms only on
        still-active rows)."""
        if self.sel is None:
            if self._columns is None and self._rows is not None:
                # Row-backed: gather rows directly, skip the transpose.
                rows = self._rows
                return Chunk.from_rows([rows[i] for i in logical], self.width)
            return self.with_sel(list(logical))
        sel = self.sel
        return self.with_sel([sel[i] for i in logical])

    def project(self, keep: list[int]) -> "Chunk":
        """Reorder/subset columns (zero-copy when column-backed)."""
        if self._columns is not None:
            columns = self._columns
            return Chunk(
                columns=[columns[i] for i in keep],
                nrows=self.nrows,
                width=len(keep),
                sel=self.sel,
            )
        rows = self.rows()
        if len(keep) == 1:
            index = keep[0]
            return Chunk.from_rows([(row[index],) for row in rows], 1)
        if not keep:
            return Chunk(nrows=len(rows), width=0, rows=[()] * len(rows))
        import operator

        getter = operator.itemgetter(*keep)
        return Chunk.from_rows([getter(row) for row in rows], len(keep))

    def slice(self, start: int, stop: Optional[int]) -> "Chunk":
        """A logical row range (LIMIT/OFFSET)."""
        if self.sel is not None:
            return self.with_sel(self.sel[start:stop])
        if self._rows is not None:
            rows = self._rows[start:stop]
            return Chunk.from_rows(rows, self.width)
        columns = [col[start:stop] for col in self.physical_columns()]
        upper = self.nrows if stop is None else min(stop, self.nrows)
        return Chunk(columns=columns, nrows=max(upper - start, 0), width=self.width)

    def compact(self) -> "Chunk":
        """Apply the selection vector; result has ``sel is None``."""
        if self.sel is None:
            return self
        if self._phys_rows is not None:
            # One row gather from the shared heap rows beats gathering
            # every column; consumers re-extract columns on demand.
            return Chunk.from_rows(self.rows(), self.width)
        return Chunk(
            columns=[self.column(i) for i in range(self.width)],
            nrows=len(self.sel),
            width=self.width,
        )


def chunk_rows(
    rows: Iterable[tuple], width: int, batch_size: int = DEFAULT_BATCH_SIZE
) -> Iterator[Chunk]:
    """Re-chunk a row iterator (the row-engine -> batch-engine bridge)."""
    if isinstance(rows, list):
        yield from chunk_row_list(rows, width, batch_size)
        return
    buffer: list[tuple] = []
    append = buffer.append
    for row in rows:
        append(row)
        if len(buffer) >= batch_size:
            yield Chunk.from_rows(buffer, width)
            buffer = []
            append = buffer.append
    if buffer:
        yield Chunk.from_rows(buffer, width)


def chunk_row_list(
    rows: list[tuple], width: int, batch_size: int = DEFAULT_BATCH_SIZE
) -> Iterator[Chunk]:
    """Chunk an already-materialized row list by slicing (no row loop)."""
    count = len(rows)
    if count <= batch_size:
        if count:
            yield Chunk.from_rows(rows, width)
        return
    for start in range(0, count, batch_size):
        yield Chunk.from_rows(rows[start : start + batch_size], width)
