"""Bag-semantics relations.

The Perm algebra (paper Fig. 1) is defined over *bags*: each tuple ``t``
carries a multiplicity ``n``, written ``t^n`` in the paper.  This module
provides the canonical in-memory representation used by

* the formal algebra interpreter (``repro.algebra``), where multiplicities
  are explicit, and
* test assertions comparing query results as bags.

The physical executor streams plain row tuples (a tuple appearing ``n``
times simply occurs ``n`` times in the stream); :meth:`Relation.from_rows`
converts such streams to the canonical counted form.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Iterable, Iterator, Sequence

Row = tuple  # a row is a tuple of SQL values


class Relation:
    """An immutable bag of rows with named columns.

    Rows are stored as a ``Counter`` mapping row-tuples to multiplicities.
    Following the paper's convention, a multiplicity of zero or below means
    the tuple is not in the relation; such entries are dropped eagerly.
    """

    __slots__ = ("columns", "_counts")

    def __init__(self, columns: Sequence[str], counts: Counter | None = None) -> None:
        self.columns: tuple[str, ...] = tuple(columns)
        clean: Counter = Counter()
        if counts:
            for row, n in counts.items():
                if n > 0:
                    clean[row] = n
        self._counts = clean

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_rows(cls, columns: Sequence[str], rows: Iterable[Sequence[Any]]) -> "Relation":
        """Build a relation from a stream of rows (each row counted once)."""
        counts: Counter = Counter()
        width = len(columns)
        for row in rows:
            row = tuple(row)
            if len(row) != width:
                raise ValueError(
                    f"row width {len(row)} does not match {width} columns {columns}"
                )
            counts[row] += 1
        return cls(columns, counts)

    @classmethod
    def from_counted(
        cls, columns: Sequence[str], counted: Iterable[tuple[Sequence[Any], int]]
    ) -> "Relation":
        """Build a relation from ``(row, multiplicity)`` pairs."""
        counts: Counter = Counter()
        for row, n in counted:
            counts[tuple(row)] += n
        return cls(columns, counts)

    @classmethod
    def empty(cls, columns: Sequence[str]) -> "Relation":
        return cls(columns, Counter())

    # -- bag access ---------------------------------------------------------

    def multiplicity(self, row: Sequence[Any]) -> int:
        """The multiplicity ``n`` of ``t^n``; 0 when the tuple is absent."""
        return self._counts.get(tuple(row), 0)

    def counted(self) -> Iterator[tuple[Row, int]]:
        """Iterate ``(row, multiplicity)`` pairs."""
        return iter(self._counts.items())

    def rows(self) -> Iterator[Row]:
        """Iterate rows with repetition according to multiplicity."""
        for row, n in self._counts.items():
            for _ in range(n):
                yield row

    def distinct_rows(self) -> Iterator[Row]:
        """Iterate the distinct rows (the set-semantics projection ΠS)."""
        return iter(self._counts.keys())

    def to_set(self) -> frozenset:
        return frozenset(self._counts.keys())

    # -- size ---------------------------------------------------------------

    def __len__(self) -> int:
        """Total number of rows counting multiplicities."""
        return sum(self._counts.values())

    def distinct_count(self) -> int:
        return len(self._counts)

    def __bool__(self) -> bool:
        return bool(self._counts)

    # -- comparison ---------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        """Bag equality: same columns and same multiplicities."""
        if not isinstance(other, Relation):
            return NotImplemented
        return self.columns == other.columns and self._counts == other._counts

    def __hash__(self) -> int:  # pragma: no cover - relations rarely hashed
        return hash((self.columns, frozenset(self._counts.items())))

    def bag_equal(self, other: "Relation") -> bool:
        """Bag equality ignoring column names (used by set-op tests)."""
        return self._counts == other._counts

    def set_equal(self, other: "Relation") -> bool:
        """Set equality ignoring multiplicities (the paper's ΠS_T(T+) = ΠS_T(T))."""
        return self.to_set() == other.to_set()

    # -- helpers used by the algebra interpreter ----------------------------

    def column_index(self, name: str) -> int:
        try:
            return self.columns.index(name)
        except ValueError:
            raise KeyError(f"no column {name!r} in {self.columns}") from None

    def project_columns(self, names: Sequence[str]) -> "Relation":
        """Bag projection onto a list of existing columns (no renaming)."""
        idx = [self.column_index(n) for n in names]
        counts: Counter = Counter()
        for row, n in self._counts.items():
            counts[tuple(row[i] for i in idx)] += n
        return Relation(names, counts)

    def rename(self, new_columns: Sequence[str]) -> "Relation":
        if len(new_columns) != len(self.columns):
            raise ValueError("rename requires the same number of columns")
        return Relation(new_columns, self._counts)

    def __repr__(self) -> str:
        return f"Relation({list(self.columns)!r}, {len(self)} rows)"

    def pretty(self, limit: int = 20) -> str:
        """A small fixed-width rendering for examples and debugging."""
        from repro.datatypes import format_value

        header = list(self.columns)
        body = [[format_value(v) for v in row] for row in list(self.rows())[:limit]]
        widths = [len(h) for h in header]
        for row in body:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [
            " | ".join(h.ljust(w) for h, w in zip(header, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        lines += [" | ".join(c.ljust(w) for c, w in zip(row, widths)) for row in body]
        extra = len(self) - len(body)
        if extra > 0:
            lines.append(f"... ({extra} more rows)")
        return "\n".join(lines)
