"""Schema objects: columns and table schemas."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.datatypes import SQLType


@dataclass(frozen=True)
class Column:
    """A named, typed column."""

    name: str
    type: SQLType

    def __repr__(self) -> str:
        return f"Column({self.name!r}, {self.type.value})"


@dataclass
class TableSchema:
    """Schema of a base relation: ordered columns plus an optional key.

    The primary key is informational (used by the TPC-H generator and some
    tests); the engine does not enforce uniqueness.
    """

    name: str
    columns: list[Column]
    primary_key: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for col in self.columns:
            low = col.name.lower()
            if low in seen:
                raise ValueError(f"duplicate column {col.name!r} in table {self.name!r}")
            seen.add(low)
        for key_col in self.primary_key:
            if key_col.lower() not in seen:
                raise ValueError(f"primary key column {key_col!r} not in table {self.name!r}")

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(col.name for col in self.columns)

    @property
    def column_types(self) -> tuple[SQLType, ...]:
        return tuple(col.type for col in self.columns)

    def column_index(self, name: str) -> int:
        low = name.lower()
        for i, col in enumerate(self.columns):
            if col.name.lower() == low:
                return i
        raise KeyError(f"no column {name!r} in table {self.name!r}")

    def has_column(self, name: str) -> bool:
        low = name.lower()
        return any(col.name.lower() == low for col in self.columns)

    def column(self, name: str) -> Column:
        return self.columns[self.column_index(name)]

    @classmethod
    def of(cls, name: str, spec: Sequence[tuple[str, SQLType]], primary_key: Sequence[str] = ()) -> "TableSchema":
        """Shorthand constructor: ``TableSchema.of("t", [("a", INTEGER), ...])``."""
        return cls(name, [Column(n, t) for n, t in spec], tuple(primary_key))
