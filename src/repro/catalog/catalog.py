"""The catalog maps names to tables and view definitions.

Views are stored as their SQL text plus the parsed statement; the analyzer
unfolds them into subquery range-table entries, mirroring PostgreSQL's
rewriter stage (paper Fig. 5: Perm runs *after* view unfolding).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.catalog.schema import TableSchema
from repro.errors import CatalogError
from repro.storage.table import Table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.matview.view import MaterializedProvenanceView
    from repro.planner.stats import TableStats
    from repro.sql.ast import SelectStmt


@dataclass
class ViewDefinition:
    """A named view: its SQL text and parsed SELECT statement."""

    name: str
    sql: str
    statement: "SelectStmt"
    # Provenance attribute names declared when the view stores external or
    # previously computed provenance (paper section IV-A.3).
    provenance_attributes: tuple[str, ...] = ()


class Catalog:
    """Name -> table/view mapping with case-insensitive lookup.

    ``epoch`` is a schema version counter: it increments on every DDL
    change (create/drop of a table or view).  Compiled statements are
    schema-bound but *data*-independent — plans resolve tables by name at
    execution and scans read the live heap (each :class:`Table` carries
    its own ``uid``/``epoch`` for data-mirroring backends) — so the
    prepared-statement cache keys on this counter alone.
    """

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._views: dict[str, ViewDefinition] = {}
        self._matviews: dict[str, "MaterializedProvenanceView"] = {}
        self.epoch = 0
        # ANALYZE-collected statistics, keyed by lower-cased table name.
        # ``stats_epoch`` increments on every (re)collection so cached
        # plans keyed on it re-plan with the fresh numbers.
        self._table_stats: dict[str, "TableStats"] = {}
        self.stats_epoch = 0
        # Serializes (auto-)ANALYZE: server sessions share one catalog
        # across handler threads, and a concurrent double-collect would
        # bump ``stats_epoch`` twice and waste two heap passes.
        self._analyze_lock = threading.Lock()

    # -- tables -------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> Table:
        key = schema.name.lower()
        if key in self._tables or key in self._views:
            raise CatalogError(f"relation {schema.name!r} already exists")
        table = Table(schema)
        self._tables[key] = table
        self.epoch += 1
        return table

    def drop_table(self, name: str, missing_ok: bool = False) -> None:
        key = name.lower()
        if key not in self._tables:
            if missing_ok:
                return
            raise CatalogError(f"table {name!r} does not exist")
        del self._tables[key]
        self.epoch += 1

    def table(self, name: str) -> Table:
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(f"table {name!r} does not exist")
        return self._tables[key]

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def tables(self) -> list[Table]:
        return list(self._tables.values())

    # -- durability (checkpoint restore) -------------------------------------
    #
    # Restore installs pre-built objects without bumping ``epoch`` /
    # ``stats_epoch``: recovery forces both counters to their persisted
    # values afterwards so statement caches key identically to the
    # crashed process.

    def install_table(self, table: Table) -> None:
        key = table.name.lower()
        if key in self._tables or key in self._views:
            raise CatalogError(f"relation {table.name!r} already exists")
        self._tables[key] = table

    def install_stats(self, name: str, stats: "TableStats") -> None:
        self._table_stats[name.lower()] = stats

    def stats_entries(self) -> dict[str, "TableStats"]:
        """Every stored statistics snapshot, fresh or lagging.

        Checkpoints persist the raw entries (not :meth:`analyzed_tables`):
        a *lagging* snapshot still drives auto-ANALYZE growth thresholds,
        so recovery must restore exactly what the crashed process held or
        replayed DML would re-ANALYZE at different points.
        """
        return dict(self._table_stats)

    def set_epochs(self, epoch: int, stats_epoch: int) -> None:
        self.epoch = epoch
        self.stats_epoch = stats_epoch

    # -- statistics (ANALYZE) ------------------------------------------------

    def analyze(self, name: Optional[str] = None) -> list["TableStats"]:
        """Collect statistics for one table (or all tables).

        Returns the collected :class:`~repro.planner.stats.TableStats`
        snapshots.  Stale entries for dropped tables are purged so the
        statistics dictionary tracks the live schema.
        """
        from repro.planner.stats import collect_table_stats

        if name is not None:
            tables = [self.table(name)]
        else:
            tables = self.tables()
        with self._analyze_lock:
            collected = []
            for table in tables:
                stats = collect_table_stats(table)
                self._table_stats[table.name.lower()] = stats
                collected.append(stats)
            for key in list(self._table_stats):
                if key not in self._tables:
                    del self._table_stats[key]
            self.stats_epoch += 1
        return collected

    #: Auto-ANALYZE fires only after at least this many new rows …
    AUTO_ANALYZE_MIN_GROWTH = 128
    #: … and only once the heap grew by this fraction of the analyzed
    #: row count (the PostgreSQL autovacuum shape: base + scale factor).
    AUTO_ANALYZE_GROWTH_FRACTION = 0.2
    #: Heaps at or above this many live rows are auto-ANALYZEd from a
    #: reservoir sample instead of a full scan …
    AUTO_ANALYZE_SAMPLE_THRESHOLD = 50_000
    #: … of this many rows (seeded deterministically per heap state).
    AUTO_ANALYZE_SAMPLE_ROWS = 20_000

    def maybe_auto_analyze(self) -> list[str]:
        """Refresh statistics for previously-ANALYZEd tables whose heaps
        grew past the auto-ANALYZE threshold.

        Deliberately conservative: tables never ANALYZEd stay
        stats-free (the cost model's defaults apply), so opting a
        workload into statistics remains an explicit act; only the
        *staleness* of collected numbers is repaired automatically.
        Tables whose heap was truncated/recreated (stale uid/epoch) are
        also re-collected once they hold enough rows to matter.
        Returns the names of the tables refreshed.
        """
        from repro.planner.stats import collect_table_stats

        with self._analyze_lock:
            refreshed = []
            for key, stats in list(self._table_stats.items()):
                table = self._tables.get(key)
                if table is None:
                    continue
                live = table.row_count()
                threshold = self.AUTO_ANALYZE_MIN_GROWTH + int(
                    stats.row_count * self.AUTO_ANALYZE_GROWTH_FRACTION
                )
                if stats.is_fresh_for(table):
                    due = live - stats.row_count >= threshold
                else:
                    due = live >= self.AUTO_ANALYZE_MIN_GROWTH
                if due:
                    # Large heaps refresh from a reservoir sample: the
                    # background path must not re-scan a multi-100k-row
                    # table on every 20% growth step.  Explicit ANALYZE
                    # stays a full scan.
                    sample = (
                        self.AUTO_ANALYZE_SAMPLE_ROWS
                        if live >= self.AUTO_ANALYZE_SAMPLE_THRESHOLD
                        else None
                    )
                    self._table_stats[key] = collect_table_stats(
                        table, sample_rows=sample
                    )
                    refreshed.append(table.name)
            if refreshed:
                self.stats_epoch += 1
            return refreshed

    def stats_for(self, name: str) -> Optional["TableStats"]:
        """Fresh statistics for a table, or None (never analyzed, the
        heap was truncated/recreated since, or the table is gone)."""
        key = name.lower()
        stats = self._table_stats.get(key)
        if stats is None:
            return None
        table = self._tables.get(key)
        if table is None or not stats.is_fresh_for(table):
            return None
        return stats

    def analyzed_tables(self) -> list["TableStats"]:
        """All statistics snapshots that are still fresh."""
        return [
            stats
            for name, stats in sorted(self._table_stats.items())
            if self.stats_for(name) is not None
        ]

    # -- views --------------------------------------------------------------

    def create_view(self, view: ViewDefinition) -> None:
        key = view.name.lower()
        if key in self._tables or key in self._views:
            raise CatalogError(f"relation {view.name!r} already exists")
        self._views[key] = view
        self.epoch += 1

    def drop_view(self, name: str, missing_ok: bool = False) -> None:
        key = name.lower()
        if key not in self._views:
            if missing_ok:
                return
            raise CatalogError(f"view {name!r} does not exist")
        del self._views[key]
        self.epoch += 1

    def view(self, name: str) -> ViewDefinition:
        key = name.lower()
        if key not in self._views:
            raise CatalogError(f"view {name!r} does not exist")
        return self._views[key]

    def has_view(self, name: str) -> bool:
        return name.lower() in self._views

    def views(self) -> list[ViewDefinition]:
        return list(self._views.values())

    def has_relation(self, name: str) -> bool:
        return self.has_table(name) or self.has_view(name) or self.has_matview(name)

    # -- materialized provenance views --------------------------------------

    def create_matview(self, view: "MaterializedProvenanceView") -> None:
        key = view.name.lower()
        if key in self._tables or key in self._views or key in self._matviews:
            raise CatalogError(f"relation {view.name!r} already exists")
        self._matviews[key] = view
        self.epoch += 1

    def drop_matview(self, name: str, missing_ok: bool = False) -> None:
        key = name.lower()
        if key not in self._matviews:
            if missing_ok:
                return
            raise CatalogError(
                f"materialized provenance view {name!r} does not exist"
            )
        del self._matviews[key]
        self.epoch += 1

    def matview(self, name: str) -> "MaterializedProvenanceView":
        key = name.lower()
        if key not in self._matviews:
            raise CatalogError(
                f"materialized provenance view {name!r} does not exist"
            )
        return self._matviews[key]

    def has_matview(self, name: str) -> bool:
        return name.lower() in self._matviews

    def matviews(self) -> list["MaterializedProvenanceView"]:
        return list(self._matviews.values())

    def matview_for_statement(
        self, stmt: "SelectStmt"
    ) -> Optional["MaterializedProvenanceView"]:
        """The registered view whose definition matches ``stmt``, if any.

        Matching is by normalized statement text (``matview.matching``),
        so textual variation that prints identically — whitespace, case
        of keywords, redundant parens — still hits the view.
        """
        if not self._matviews:
            return None
        from repro.matview.matching import statement_key

        key = statement_key(stmt)
        if key is None:
            return None
        for view in self._matviews.values():
            if view.statement_key == key:
                return view
        return None
