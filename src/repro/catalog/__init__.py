"""Catalog: schemas for tables and views."""

from repro.catalog.catalog import Catalog
from repro.catalog.schema import Column, TableSchema

__all__ = ["Catalog", "Column", "TableSchema"]
