"""The PermDatabase facade.

Runs the full pipeline of paper Fig. 5 on every statement::

    parser & analyzer -> (view unfolding) -> provenance rewriter
        -> planner -> executor

The provenance rewriter (``repro.core``) is invoked between analysis and
planning, exactly where the paper places the Perm module: it traverses the
query tree looking for nodes marked ``SELECT PROVENANCE`` and rewrites
them; unmarked queries pass through untouched.  The
``provenance_module_enabled`` switch reproduces the paper's Fig. 9
configurations (Perm module present vs. plain PostgreSQL).

Where the rewritten tree *executes* is pluggable (``repro.backends``):
the default ``python`` backend is the built-in planner/executor; the
``sqlite`` backend deparses the tree to SQLite SQL and runs it on an
embedded ``sqlite3`` database — the paper's actual deployment model,
where ``q+`` is ordinary SQL executed by the host DBMS.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.backends import BackendSpec
    from repro.wal.recovery import RecoveryReport

from repro.catalog.catalog import Catalog, ViewDefinition
from repro.catalog.schema import Column, TableSchema
from repro.datatypes import SQLType, type_from_name
from repro.errors import AnalyzeError, CatalogError, ExecutionError, PermError
from repro.analyzer.analyzer import Analyzer
from repro.analyzer.query_tree import Query
from repro.executor.context import ExecContext
from repro.executor.expr_eval import ExprCompiler
from repro.executor.nodes import PlanNode
from repro.planner import make_planner
from repro.sql import ast
from repro.sql.parser import parse_sql
from repro.sql.printer import format_statement
from repro.storage.relation import Relation
from repro.storage.table import Table


#: Statement kinds the write-ahead log records.  SELECT joins the set
#: only in its ``SELECT INTO`` form (it creates a table); EXPLAIN and
#: plain reads never touch the log.
_DURABLE_STMTS = (
    ast.CreateTableStmt,
    ast.CreateViewStmt,
    ast.CreateMatViewStmt,
    ast.RefreshMatViewStmt,
    ast.InsertStmt,
    ast.DeleteStmt,
    ast.UpdateStmt,
    ast.DropStmt,
    ast.AnalyzeStmt,
)


def _durable_statement(stmt: ast.Statement) -> bool:
    if isinstance(stmt, _DURABLE_STMTS):
        return True
    if isinstance(stmt, (ast.SelectStmt, ast.SetOpSelect)):
        return bool(getattr(stmt, "into", None))
    return False


#: Reusable no-op guard for the non-durable (read) path, so the
#: statement loop stays branch-cheap when no WAL is configured.
_NO_COMMIT_LOCK = nullcontext()


@dataclass
class QueryResult:
    """Result of one statement: column names and materialized rows.

    ``annotation_column`` names the semiring annotation column when the
    statement was rewritten with an annotation-carrying strategy
    (``SELECT PROVENANCE (polynomial)``); :meth:`annotations` and
    :meth:`evaluate_provenance` read and specialize it.
    """

    columns: list[str]
    rows: list[tuple]
    command: str = "SELECT"
    annotation_column: Optional[str] = None

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    # -- semiring annotations ---------------------------------------------

    def annotation_index(self) -> int:
        """Position of the annotation column; raises if there is none."""
        if self.annotation_column is None:
            raise PermError(
                "result carries no provenance annotation column "
                "(use SELECT PROVENANCE (polynomial) ...)"
            )
        return self.columns.index(self.annotation_column)

    def annotations(self) -> list[Any]:
        """The provenance polynomial of every result row, in row order."""
        index = self.annotation_index()
        return [row[index] for row in self.rows]

    def evaluate_provenance(
        self, semiring: Any = "counting", valuation: Any = None
    ) -> list[Any]:
        """Evaluate each row's polynomial in a semiring.

        ``semiring`` is a registered name or a
        :class:`repro.semiring.Semiring`; ``valuation`` maps tuple
        variables to semiring values (missing/None = ``semiring.one``).
        """
        from repro.semiring import get_semiring

        if isinstance(semiring, str):
            semiring = get_semiring(semiring)
        return [
            polynomial.evaluate(valuation, semiring)
            for polynomial in self.annotations()
        ]

    def relation(self) -> Relation:
        """The result as a bag-semantics relation (for comparisons)."""
        return Relation.from_rows(self.columns, self.rows)

    def pretty(self, limit: int = 25) -> str:
        return self.relation().pretty(limit)

    def scalar(self) -> Any:
        """The single value of a 1x1 result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise ExecutionError(
                f"scalar() requires a 1x1 result, got "
                f"{len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][0]


@dataclass
class PreparedQuery:
    """A planned query, ready to execute; exposes pipeline timings.

    ``compile_seconds`` covers parse + analyze + provenance-rewrite + plan,
    the quantity measured by the paper's Fig. 9.

    Each :meth:`run` executes on a fresh :class:`ExecContext`, and all
    per-execution memoization (materialized shared subplans, uncorrelated
    sublink results) lives in that context — so re-running a prepared
    statement after table mutation returns fresh rows.
    """

    plan: PlanNode
    query: Query
    compile_seconds: float
    rewrite_seconds: float = 0.0
    vectorize: bool = False

    def run(self) -> QueryResult:
        from repro.executor.nodes import run_plan_rows
        from repro.storage.chunk import DEFAULT_BATCH_SIZE

        ctx = ExecContext(
            batch_size=self.plan.batch_size_hint or DEFAULT_BATCH_SIZE,
            vectorized=self.vectorize,
        )
        rows = run_plan_rows(self.plan, ctx)
        return QueryResult(
            columns=list(self.plan.output_names),
            rows=rows,
            annotation_column=self.query.annotation_column,
        )


@dataclass(frozen=True)
class _MatViewAnswer:
    """Statement-cache marker: this SQL is answered from a materialized
    provenance view.  Safe to cache because DML leaves the catalog epoch
    (part of every cache key) untouched — staleness is the *view's*
    problem, handled on every serve — while dropping the view is DDL and
    rotates the key."""

    view_name: str


@dataclass
class CompiledViewAnswer:
    """What :meth:`PermDatabase.compile_select` returns when the SQL
    matches a materialized provenance view.

    Carries the normally-compiled query tree as the fallback:
    :meth:`PermDatabase.run_compiled` serves the stored rows only when
    the view's dependency state matches the request's snapshot token
    exactly, and otherwise executes ``query`` under the snapshot like
    any compiled statement.
    """

    view_name: str
    query: Query


class _StatementCache:
    """Tiny LRU keyed on (sql text, mode, backend, catalog epoch, flags).

    Caches analyzed/rewritten/optimized query *trees*, not results: a hit
    skips parse → analyze → rewrite → optimize and goes straight to the
    backend, which re-executes against the live data.  DDL bumps the
    catalog epoch, so schema changes produce new keys and stale entries
    age out via the LRU bound.  Entries may also be
    :class:`_MatViewAnswer` markers routing the SQL to a materialized
    provenance view instead of a tree.
    """

    def __init__(self, maxsize: int) -> None:
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[tuple, Any]" = OrderedDict()
        # Server sessions share one database across handler threads;
        # OrderedDict reordering + eviction is not atomic, so all cache
        # operations serialize on this lock (they are dict-speed — the
        # lock is never held across parsing or execution).
        self._lock = threading.Lock()

    def get(self, key: tuple) -> Optional[Any]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                # Misses are counted at ``put`` time instead: every statement
                # probes the cache before parsing, so counting here would let
                # DDL/DML noise swamp the hit rate ``\stats`` reports.
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: tuple, query: Any) -> None:
        if self.maxsize <= 0:
            return
        with self._lock:
            self.misses += 1  # a cacheable statement that wasn't cached yet
            self._entries[key] = query
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


class PermDatabase:
    """An in-memory relational database with the Perm provenance module.

    >>> db = PermDatabase()
    >>> db.execute("CREATE TABLE t (a integer, b text)")
    >>> db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
    >>> db.execute("SELECT PROVENANCE a FROM t").columns
    ['a', 'prov_t_a', 'prov_t_b']
    """

    def __init__(
        self,
        provenance_module_enabled: bool = True,
        backend: "BackendSpec" = "python",
        optimize: bool = True,
        vectorize: bool = True,
        cost_based: bool = True,
        fuse_pipelines: bool = True,
        statement_cache_size: int = 64,
        parallel_workers: int = 1,
        parallel_executor: str = "thread",
        shards: Optional[int] = None,
        shard_keys: Optional[dict] = None,
        auto_analyze: bool = True,
        wal_dir: Optional[str] = None,
        wal_sync: str = "always",
        wal_checkpoint_interval: Optional[int] = None,
    ) -> None:
        from repro.backends import create_backend

        self.catalog = Catalog()
        self.provenance_module_enabled = provenance_module_enabled
        self.optimizer_enabled = optimize
        self._vectorize = vectorize
        self._cost_based = cost_based
        self._fuse_pipelines = fuse_pipelines
        self._parallel_workers = parallel_workers
        self._parallel_executor = parallel_executor
        #: Refresh stale ANALYZE statistics automatically once a table
        #: grows past the catalog's auto-ANALYZE threshold.
        self.auto_analyze_enabled = auto_analyze
        if shards is not None:
            # Sharded deployment: wrap the requested backend as the
            # child engine of a hash-partitioned scatter-gather layer.
            from repro.sharding.backend import ShardedBackend

            child_spec = backend

            def backend(catalog, _child=child_spec):  # type: ignore[no-redef]
                return ShardedBackend(
                    catalog, shards=shards, shard_keys=shard_keys, child=_child
                )

        self._backend = create_backend(backend, self.catalog)
        self._propagate_vectorize()
        self._propagate_cost_based()
        self._propagate_fuse()
        self._propagate_parallel()
        self._propagate_executor()
        self._stmt_cache = _StatementCache(statement_cache_size)
        # Durability last: attaching recovers any existing WAL directory
        # by replaying statements through this (fully constructed) db.
        self._durability = None
        if wal_dir is not None:
            from repro.wal.manager import Durability

            self._durability = Durability(
                self,
                wal_dir,
                sync=wal_sync,
                checkpoint_interval=wal_checkpoint_interval,
            )
            self._durability.attach()

    # -- execution backends ----------------------------------------------------

    @property
    def backend(self):
        """The active :class:`~repro.backends.ExecutionBackend`."""
        return self._backend

    @property
    def backend_name(self) -> str:
        return self._backend.name

    def set_backend(self, backend: "BackendSpec") -> None:
        """Switch execution backends; catalog data is untouched."""
        from repro.backends import create_backend

        replacement = create_backend(backend, self.catalog)
        self._backend.close()
        self._backend = replacement
        self._propagate_vectorize()
        self._propagate_cost_based()
        self._propagate_fuse()
        self._propagate_parallel()
        self._propagate_executor()

    # -- vectorized execution toggle -------------------------------------------

    @property
    def vectorize_enabled(self) -> bool:
        """Whether the Python engine executes batch-at-a-time (vectorized)."""
        return self._vectorize

    @vectorize_enabled.setter
    def vectorize_enabled(self, value: bool) -> None:
        self._vectorize = bool(value)
        self._propagate_vectorize()

    def _propagate_vectorize(self) -> None:
        # Only the in-process Python backend interprets plans itself;
        # other backends (SQLite, ...) execute deparsed SQL and have no
        # notion of chunked interpretation.
        if hasattr(self._backend, "vectorize"):
            self._backend.vectorize = self._vectorize

    # -- cost-based planning toggle ---------------------------------------------

    @property
    def cost_based_enabled(self) -> bool:
        """Whether the Python planner makes statistics-driven cost-based
        choices (join order, operator selection); ``False`` selects the
        legacy heuristic planner, kept for differential testing."""
        return self._cost_based

    @cost_based_enabled.setter
    def cost_based_enabled(self, value: bool) -> None:
        self._cost_based = bool(value)
        self._propagate_cost_based()

    def _propagate_cost_based(self) -> None:
        if hasattr(self._backend, "cost_based"):
            self._backend.cost_based = self._cost_based

    # -- pipeline-fusion toggle --------------------------------------------------

    @property
    def fuse_pipelines_enabled(self) -> bool:
        """Whether vectorized plans collapse scan→filter→project chains
        into single generated kernels (:mod:`repro.executor.fusion`);
        ``False`` keeps the per-operator batch pipeline, the
        differential oracle for the fused path."""
        return self._fuse_pipelines

    @fuse_pipelines_enabled.setter
    def fuse_pipelines_enabled(self, value: bool) -> None:
        self._fuse_pipelines = bool(value)
        self._propagate_fuse()

    def _propagate_fuse(self) -> None:
        if hasattr(self._backend, "fuse_pipelines"):
            self._backend.fuse_pipelines = self._fuse_pipelines

    # -- morsel-driven parallelism ----------------------------------------------

    @property
    def parallel_workers(self) -> int:
        """Fan-out for morsel-driven parallel query execution.

        ``1`` (the default) keeps execution fully serial; ``N > 1`` lets
        the cost-based planner insert exchange operators that run
        parallel-safe scan pipelines on ``N`` worker threads
        (:mod:`repro.parallel`); ``None`` resolves to the host CPU
        count.  Only the vectorized Python backend parallelizes.
        """
        return self._parallel_workers

    @parallel_workers.setter
    def parallel_workers(self, value) -> None:
        self._parallel_workers = value
        self._propagate_parallel()

    def _propagate_parallel(self) -> None:
        if hasattr(self._backend, "parallel_workers"):
            self._backend.parallel_workers = self._parallel_workers

    @property
    def parallel_executor(self) -> str:
        """Worker-pool strategy for parallel dispatch.

        ``thread`` (default) runs morsels and shard scatter on the
        shared thread pool; ``process`` forks GIL-free workers that
        inherit the columnar caches copy-on-write and pickle results
        back; ``serial`` disables concurrent dispatch while keeping the
        exchange/scatter plumbing (differential oracle).
        """
        return self._parallel_executor

    @parallel_executor.setter
    def parallel_executor(self, value: str) -> None:
        if value not in ("thread", "process", "serial"):
            raise PermError(
                f"unknown parallel executor {value!r} "
                "(expected thread, process or serial)"
            )
        self._parallel_executor = value
        self._propagate_executor()

    def _propagate_executor(self) -> None:
        if hasattr(self._backend, "parallel_executor"):
            self._backend.parallel_executor = self._parallel_executor

    # -- statistics (ANALYZE) ---------------------------------------------------

    def analyze(self, table: Optional[str] = None) -> QueryResult:
        """Collect planner statistics (``ANALYZE [table]``).

        Returns a per-table summary of what was collected.  The
        statistics feed the cost-based planner's selectivity and
        cardinality estimates; collected numbers go stale only on
        TRUNCATE / re-creation (appends merely lag until the next run).
        """
        collected = self.catalog.analyze(table)
        return QueryResult(
            columns=["table", "rows", "columns"],
            rows=[
                (stats.table_name, stats.row_count, len(stats.columns))
                for stats in collected
            ],
            command=f"ANALYZE {len(collected)}",
        )

    def _maybe_auto_analyze(self) -> None:
        """Auto-ANALYZE hook, run before statement compilation.

        Must run before :meth:`_cache_key` is computed: a refresh bumps
        the catalog's ``stats_epoch`` (part of every cache key), so a
        statement compiled this call is keyed against the statistics it
        was actually planned with.
        """
        if self.auto_analyze_enabled:
            self.catalog.maybe_auto_analyze()

    # -- durability (write-ahead log) -------------------------------------------

    @property
    def durable(self) -> bool:
        """Whether this database writes a WAL (``wal_dir`` was given)."""
        return self._durability is not None

    @property
    def last_recovery(self) -> Optional["RecoveryReport"]:
        """What the attach-time recovery pass found, when durable."""
        if self._durability is None:
            return None
        return self._durability.report

    def checkpoint(self) -> int:
        """Snapshot the catalog and truncate the WAL (``\\checkpoint``).

        Returns the new active segment number.  Also the way to make
        *programmatic* loads durable: ``create_table()``/``load_table()``
        bypass the SQL pipeline and therefore the log — checkpoint after
        bulk-loading so the snapshot carries the rows.
        """
        if self._durability is None:
            raise PermError(
                "checkpoint() requires a durable database (wal_dir=...)"
            )
        return self._durability.checkpoint()

    def wal_status(self) -> Optional[dict]:
        """WAL counters for the shell's ``\\wal``; None when not durable."""
        if self._durability is None:
            return None
        return self._durability.status()

    def close(self) -> None:
        """Flush and close the WAL (when durable) and the backend."""
        if self._durability is not None:
            self._durability.close()
        self._backend.close()

    # -- statement execution ---------------------------------------------------

    def execute(self, sql: str) -> QueryResult:
        """Execute one or more ``;``-separated statements.

        Returns the result of the last statement (DDL returns an empty
        result with a command tag).  Single-statement SELECTs hit the
        prepared-statement cache: a repeat of the same text on the same
        backend and catalog epoch skips the whole frontend pipeline.
        """
        self._maybe_auto_analyze()
        key = self._cache_key(sql, "plain")
        if key is not None:
            cached = self._stmt_cache.get(key)
            if cached is not None:
                return self._run_cached(cached)
        statements = parse_sql(sql)
        result = QueryResult(columns=[], rows=[], command="EMPTY")
        cacheable: Optional[Any] = None
        for stmt in statements:
            # Commit protocol for durable statements: apply, then append
            # the canonical printed form to the WAL, both under the
            # commit lock so a concurrent checkpoint always snapshots at
            # a statement boundary.  A failed statement is never logged
            # (its partial effects are atomically absent after recovery);
            # reads take the no-op guard and never serialize.
            durable = self._durability is not None and _durable_statement(stmt)
            guard = self._durability.commit_lock if durable else _NO_COMMIT_LOCK
            with guard:
                if isinstance(stmt, (ast.SelectStmt, ast.SetOpSelect)):
                    query, result = self._execute_select(stmt)
                    cacheable = query if len(statements) == 1 else None
                else:
                    result = self._execute_statement(stmt)
                    cacheable = None
                if durable:
                    self._durability.log_statement(format_statement(stmt))
        if key is not None and cacheable is not None:
            self._stmt_cache.put(key, cacheable)
        return result

    def query(self, sql: str) -> QueryResult:
        """Alias of :meth:`execute` for read queries."""
        return self.execute(sql)

    def provenance(self, sql: str, semantics: Optional[str] = None) -> QueryResult:
        """Compute the provenance of a plain SELECT.

        Equivalent to adding the ``PROVENANCE`` keyword to the outermost
        select-clause (SQL-PLE, paper section IV-A.2).  ``semantics``
        selects a registered rewrite strategy by name (``"polynomial"``
        for semiring annotations); ``None`` keeps the default witness-list
        semantics.
        """
        self._maybe_auto_analyze()
        key = self._cache_key(sql, f"prov:{semantics or ''}")
        if key is not None:
            cached = self._stmt_cache.get(key)
            if cached is not None:
                return self._run_cached(cached)
        statements = parse_sql(sql)
        if len(statements) != 1 or not isinstance(
            statements[0], (ast.SelectStmt, ast.SetOpSelect)
        ):
            raise PermError("provenance() expects a single SELECT statement")
        stmt = statements[0]
        stmt.provenance = True
        if semantics is not None:
            stmt.provenance_type = semantics
        query, result = self._execute_select(stmt)
        if key is not None and query is not None:
            self._stmt_cache.put(key, query)
        return result

    # -- prepared-statement cache ------------------------------------------

    def _run_cached(self, cached: Any) -> QueryResult:
        """Execute a statement-cache hit: a compiled tree runs on the
        backend; a view marker serves the materialized rows."""
        if isinstance(cached, _MatViewAnswer):
            return self._serve_matview(self.catalog.matview(cached.view_name))
        return self._backend.run_select(cached)

    def _cache_key(self, sql: str, mode: str) -> Optional[tuple]:
        if self._stmt_cache.maxsize <= 0:
            return None
        return (
            sql,
            mode,
            self._backend.name,
            self.catalog.epoch,
            self.catalog.stats_epoch,
            self.provenance_module_enabled,
            self.optimizer_enabled,
            self._cost_based,
            self._fuse_pipelines,
        )

    def cache_stats(self) -> dict[str, int]:
        """Hit/miss/size counters of the prepared-statement cache."""
        return {
            "hits": self._stmt_cache.hits,
            "misses": self._stmt_cache.misses,
            "entries": len(self._stmt_cache),
            "capacity": self._stmt_cache.maxsize,
        }

    def prepare(self, sql: str) -> PreparedQuery:
        """Parse, analyze, provenance-rewrite and plan without executing."""
        self._maybe_auto_analyze()
        statements = parse_sql(sql)
        if len(statements) != 1 or not isinstance(
            statements[0], (ast.SelectStmt, ast.SetOpSelect)
        ):
            raise PermError("prepare() expects a single SELECT statement")
        return self._prepare_select(statements[0])

    # -- compiled execution (server-facing) ---------------------------------

    def snapshot(self) -> dict[int, tuple[int, int]]:
        """A snapshot token: ``{table.uid: (table epoch, visible rows)}``.

        Heaps are append-only within a table epoch, so a recorded row
        count is a consistent read boundary: a query executed under the
        token (:meth:`run_compiled`) sees exactly the rows present when
        it was taken, regardless of concurrent inserts.  TRUNCATE /
        re-creation bumps the table epoch and makes the token fail
        loudly (``snapshot too old``) instead of reading rewritten rows.

        Backends owning derived state (the sharded backend's shard
        mirrors) mint the token themselves so it stays consistent with
        what their workers will actually read.
        """
        token = getattr(self._backend, "snapshot_token", None)
        if token is not None:
            return token()
        return {
            table.uid: (table.epoch, table.row_count())
            for table in self.catalog.tables()
        }

    def compile_select(self, sql: str, provenance: Optional[str] = None) -> Query:
        """Frontend pipeline only: parse → analyze → rewrite → optimize.

        Returns the executable query tree for :meth:`run_compiled`.
        ``provenance`` marks the outermost SELECT like
        :meth:`provenance` does (``"witness"``, ``"polynomial"``, or a
        registered strategy name).  Bypasses the statement cache:
        callers (the server's session-scoped prepared-statement caches)
        key compiled trees themselves.

        When the statement restates a registered materialized
        provenance view the result is a :class:`CompiledViewAnswer`
        wrapping the compiled tree — :meth:`run_compiled` then serves
        the stored rows when the snapshot allows and falls back to the
        tree otherwise.
        """
        self._maybe_auto_analyze()
        statements = parse_sql(sql)
        if len(statements) != 1 or not isinstance(
            statements[0], (ast.SelectStmt, ast.SetOpSelect)
        ):
            raise PermError("compile_select() expects a single SELECT statement")
        stmt = statements[0]
        if provenance is not None:
            stmt.provenance = True
            stmt.provenance_type = provenance
        view = None
        if getattr(stmt, "provenance", False):
            view = self.catalog.matview_for_statement(stmt)
        query, _ = self._analyze_and_rewrite(stmt)
        if query.into is not None:
            raise PermError("compile_select() does not support SELECT INTO")
        if view is not None:
            return CompiledViewAnswer(view_name=view.name, query=query)
        return query

    def run_compiled(
        self,
        query: Query,
        snapshot: Optional[dict] = None,
        timeout: Optional[float] = None,
    ) -> QueryResult:
        """Execute a tree from :meth:`compile_select` on the backend.

        ``snapshot`` is a :meth:`snapshot` token for consistent reads;
        ``timeout`` (seconds) arms cooperative per-query cancellation.
        Both require the in-process Python backend — data-shipping
        backends execute deparsed SQL and cannot honor engine-level
        execution controls.

        A :class:`CompiledViewAnswer` serves the materialized rows only
        when the view's recorded dependency states equal the snapshot
        token (the stored result *is* the state the snapshot names);
        any mismatch — including a view made unmaintainable by a
        dropped base table — executes the wrapped tree under the
        snapshot instead, preserving the typed ``snapshot too old``
        contract for deleted-from tables.
        """
        if isinstance(query, CompiledViewAnswer):
            result = self._run_compiled_view(query, snapshot)
            if result is not None:
                return result
            query = query.query
        if snapshot is None and timeout is None:
            return self._backend.run_select(query)
        if not getattr(self._backend, "supports_execution_controls", False):
            raise PermError(
                f"backend {self._backend.name!r} does not support "
                "snapshot/timeout execution controls"
            )
        return self._backend.run_select(query, snapshot=snapshot, timeout=timeout)

    def _run_compiled_view(
        self, compiled: "CompiledViewAnswer", snapshot: Optional[dict]
    ) -> Optional[QueryResult]:
        """Serve a compiled view answer, or None to use the fallback tree."""
        from repro.matview import maintenance

        if not self.catalog.has_matview(compiled.view_name):
            return None
        view = self.catalog.matview(compiled.view_name)
        with view.lock:
            try:
                maintenance.ensure_fresh(self, view)
            except CatalogError:
                # A dropped base table: the fallback tree raises its own
                # (equally loud) error when it re-plans.
                return None
            if snapshot is None or view.matches_snapshot(snapshot):
                view.served_reads += 1
                return view.result()
        return None

    def explain(self, sql: str, analyze: bool = False) -> str:
        """Logical query trees (before/after optimization) + physical plan.

        Shows the optimizer's work on the provenance-rewritten tree: the
        tree as the rewriter left it, the tree after the rule-based
        optimizer (when enabled), and the plan the backend-independent
        planner builds from it.

        ``analyze=True`` additionally *executes* the plan (with the
        in-process engine, in the database's current vectorize mode) and
        annotates every node with actual row counts, batch counts and
        inclusive wall time.
        """
        from repro.optimizer import format_query_tree, optimize_query_tree

        sections = self._explain_matview_sections(sql)
        query = self._rewritten_tree(sql, caller="explain")
        sections += [
            "-- logical query tree (after rewrite) --",
            format_query_tree(query),
        ]
        if self.optimizer_enabled:
            query = optimize_query_tree(query)
            sections += [
                "-- logical query tree (after optimization) --",
                format_query_tree(query),
            ]
        from repro.parallel import resolve_worker_count

        plan = make_planner(
            self.catalog,
            cost_based=self._cost_based,
            vectorize=self._vectorize,
            parallel_workers=resolve_worker_count(self._parallel_workers),
            morsel_size=getattr(self._backend, "morsel_size", None),
            fuse_pipelines=self._fuse_pipelines,
            parallel_executor=self._parallel_executor,
        ).plan(query)
        describe_scatter = getattr(self._backend, "describe_scatter", None)
        if describe_scatter is not None:
            sections += ["-- sharding --", describe_scatter(query)]
        if not analyze:
            sections += ["-- physical plan --", plan.explain()]
            return "\n".join(sections)

        from repro.executor.instrument import (
            format_plan_with_stats,
            instrument_plan,
        )

        from repro.storage.chunk import DEFAULT_BATCH_SIZE

        stats = instrument_plan(plan)
        ctx = ExecContext(
            batch_size=plan.batch_size_hint or DEFAULT_BATCH_SIZE,
            vectorized=self._vectorize,
        )
        start = time.perf_counter()
        if self._vectorize:
            total_rows = sum(len(chunk) for chunk in plan.run_batches(ctx))
        else:
            total_rows = sum(1 for _ in plan.run(ctx))
        elapsed = time.perf_counter() - start
        mode = "vectorized" if self._vectorize else "row-at-a-time"
        sections += [
            f"-- physical plan (analyzed, {mode}) --",
            format_plan_with_stats(plan, stats),
            f"-- execution: {total_rows} rows in {elapsed * 1000.0:.3f}ms --",
        ]
        return "\n".join(sections)

    def _explain_matview_sections(self, sql: str) -> list[str]:
        """Explain header when the SQL is answered from a materialized
        provenance view (the tree sections that follow describe the
        fallback pipeline the view replaces)."""
        statements = parse_sql(sql)
        if len(statements) != 1 or not isinstance(
            statements[0], (ast.SelectStmt, ast.SetOpSelect)
        ):
            return []
        stmt = statements[0]
        if not getattr(stmt, "provenance", False):
            return []
        view = self.catalog.matview_for_statement(stmt)
        if view is None:
            return []
        from repro.matview import maintenance

        state = maintenance.status(view, self.catalog)
        detail = (
            "served as stored"
            if state == "fresh"
            else "maintained before serving"
        )
        return [
            f"-- answered from materialized provenance view {view.name!r} "
            f"({state}; {len(view.rows)} stored rows; {detail}) --"
        ]

    def _rewritten_tree(self, sql: str, caller: str) -> Query:
        """Parse a single SELECT, analyze and provenance-rewrite it
        (shared frontend of :meth:`explain` / :meth:`rewritten_sql` —
        everything before the optimizer)."""
        statements = parse_sql(sql)
        if len(statements) != 1 or not isinstance(
            statements[0], (ast.SelectStmt, ast.SetOpSelect)
        ):
            raise PermError(f"{caller}() expects a single SELECT statement")
        query = Analyzer(self.catalog).analyze(statements[0])
        if self.provenance_module_enabled:
            from repro.core.rewriter import traverse_query_tree

            query = traverse_query_tree(query)
        return query

    def rewritten_sql(
        self,
        sql: str,
        dialect: Optional[str] = None,
        optimized: Optional[bool] = None,
    ) -> str:
        """The SQL text of the provenance-rewritten query tree.

        Makes the paper's central point inspectable: ``q+`` is an ordinary
        SQL query over the same schema (null-safe join predicates render
        as ``IS NOT DISTINCT FROM``, which the repro parser re-parses).
        ``dialect`` selects the target syntax (``"postgres"`` — the
        default — or ``"sqlite"``, the form the SQLite backend executes).
        ``optimized`` controls whether the logical optimizer runs first;
        ``None`` follows the database setting, so by default the text is
        exactly what the SQLite backend ships.
        """
        from repro.sql.deparse import deparse_query, get_dialect

        query = self._rewritten_tree(sql, caller="rewritten_sql")
        if optimized if optimized is not None else self.optimizer_enabled:
            from repro.optimizer import optimize_query_tree

            query = optimize_query_tree(query)
        chosen = get_dialect(dialect) if dialect is not None else None
        return deparse_query(query, dialect=chosen)

    # -- programmatic helpers -----------------------------------------------------

    def create_table(self, schema: TableSchema) -> Table:
        return self.catalog.create_table(schema)

    def load_table(self, name: str, rows: Iterable[Sequence[Any]]) -> int:
        return self.catalog.table(name).insert_many(rows)

    def table_relation(self, name: str) -> Relation:
        return self.catalog.table(name).to_relation()

    # -- pipeline ---------------------------------------------------------------------

    def _analyze_and_rewrite(self, stmt: ast.SelectNode) -> tuple[Query, float]:
        """Parse-tree → analyzed, provenance-rewritten, optimized tree."""
        analyzer = Analyzer(self.catalog)
        query = analyzer.analyze(stmt)
        rewrite_seconds = 0.0
        if self.provenance_module_enabled:
            from repro.core.rewriter import traverse_query_tree

            rewrite_start = time.perf_counter()
            query = traverse_query_tree(query)
            rewrite_seconds = time.perf_counter() - rewrite_start
        if self.optimizer_enabled:
            from repro.optimizer import optimize_query_tree

            query = optimize_query_tree(query)
        return query, rewrite_seconds

    def _prepare_select(self, stmt: ast.SelectNode) -> PreparedQuery:
        start = time.perf_counter()
        query, rewrite_seconds = self._analyze_and_rewrite(stmt)
        plan = make_planner(
            self.catalog,
            cost_based=self._cost_based,
            vectorize=self._vectorize,
            fuse_pipelines=self._fuse_pipelines,
        ).plan(query)
        compile_seconds = time.perf_counter() - start
        return PreparedQuery(
            plan=plan,
            query=query,
            compile_seconds=compile_seconds,
            rewrite_seconds=rewrite_seconds,
            vectorize=self._vectorize,
        )

    def _run_select(self, stmt: ast.SelectNode) -> tuple[Query, QueryResult]:
        """Analyze, rewrite, and execute a SELECT on the active backend."""
        query, _ = self._analyze_and_rewrite(stmt)
        return query, self._backend.run_select(query)

    def _execute_select(self, stmt: ast.SelectNode) -> tuple[Optional[Any], QueryResult]:
        """Run one SELECT; returns (cacheable-entry-or-None, result).

        A provenance-marked statement that restates a registered
        materialized provenance view is answered from the view's stored
        rows (maintaining it first when base tables changed); the
        cacheable entry is then a :class:`_MatViewAnswer` marker rather
        than a compiled tree.
        """
        if getattr(stmt, "provenance", False):
            view = self.catalog.matview_for_statement(stmt)
            if view is not None:
                return _MatViewAnswer(view.name), self._serve_matview(view)
        query, result = self._run_select(stmt)
        if query.into is not None:
            self._store_into(query.into, query, result)
            return None, QueryResult(
                columns=[], rows=[], command=f"SELECT INTO {len(result)}"
            )
        return query, result

    def _execute_statement(self, stmt: ast.Statement) -> QueryResult:
        if isinstance(stmt, (ast.SelectStmt, ast.SetOpSelect)):
            return self._execute_select(stmt)[1]
        if isinstance(stmt, ast.CreateTableStmt):
            return self._execute_create_table(stmt)
        if isinstance(stmt, ast.CreateViewStmt):
            return self._execute_create_view(stmt)
        if isinstance(stmt, ast.InsertStmt):
            return self._execute_insert(stmt)
        if isinstance(stmt, ast.DeleteStmt):
            return self._execute_delete(stmt)
        if isinstance(stmt, ast.UpdateStmt):
            return self._execute_update(stmt)
        if isinstance(stmt, ast.CreateMatViewStmt):
            return self._execute_create_matview(stmt)
        if isinstance(stmt, ast.RefreshMatViewStmt):
            return self._execute_refresh_matview(stmt)
        if isinstance(stmt, ast.DropStmt):
            return self._execute_drop(stmt)
        if isinstance(stmt, ast.ExplainStmt):
            prepared = self._prepare_select(stmt.query)
            lines = prepared.plan.explain().splitlines()
            return QueryResult(
                columns=["query plan"], rows=[(line,) for line in lines]
            )
        if isinstance(stmt, ast.AnalyzeStmt):
            return self.analyze(stmt.table)
        raise PermError(f"unsupported statement {stmt!r}")

    # -- DDL / DML -------------------------------------------------------------------------

    def _execute_create_table(self, stmt: ast.CreateTableStmt) -> QueryResult:
        columns = []
        for col in stmt.columns:
            try:
                col_type = type_from_name(col.type_name)
            except ValueError as exc:
                raise AnalyzeError(str(exc)) from None
            columns.append(Column(col.name.lower(), col_type))
        schema = TableSchema(stmt.name.lower(), columns, tuple(stmt.primary_key))
        self.catalog.create_table(schema)
        return QueryResult(columns=[], rows=[], command="CREATE TABLE")

    def _execute_create_view(self, stmt: ast.CreateViewStmt) -> QueryResult:
        # Validate the view body analyzes cleanly before storing it.
        Analyzer(self.catalog).analyze(stmt.query)
        view = ViewDefinition(
            name=stmt.name.lower(),
            sql=stmt.sql_text,
            statement=stmt.query,
            provenance_attributes=tuple(stmt.provenance_attrs),
        )
        self.catalog.create_view(view)
        return QueryResult(columns=[], rows=[], command="CREATE VIEW")

    def _execute_insert(self, stmt: ast.InsertStmt) -> QueryResult:
        table = self.catalog.table(stmt.table)
        if stmt.columns:
            indexes = [table.schema.column_index(c) for c in stmt.columns]
        else:
            indexes = list(range(len(table.schema.columns)))
        width = len(table.schema.columns)

        if stmt.query is not None:
            source_rows = self._run_select(stmt.query)[1].rows
        else:
            source_rows = [self._eval_values_row(row) for row in stmt.values]

        inserted = 0
        full_rows: list[tuple] = []
        for values in source_rows:
            if len(values) != len(indexes):
                raise ExecutionError(
                    f"INSERT has {len(values)} expressions but "
                    f"{len(indexes)} target columns"
                )
            row: list[Any] = [None] * width
            for index, value in zip(indexes, values):
                row[index] = value
            table.insert(row)
            full_rows.append(tuple(row))
            inserted += 1
        if inserted:
            table.record_delta("INSERT", inserted=full_rows)
        return QueryResult(columns=[], rows=[], command=f"INSERT {inserted}")

    def _execute_delete(self, stmt: ast.DeleteStmt) -> QueryResult:
        table = self.catalog.table(stmt.table)
        matched = self._dml_matched_rows(stmt.table, stmt.where)
        removed = table.remove_rows(matched)
        if removed:
            table.record_delta("DELETE", deleted=matched)
        return QueryResult(columns=[], rows=[], command=f"DELETE {removed}")

    def _execute_update(self, stmt: ast.UpdateStmt) -> QueryResult:
        table = self.catalog.table(stmt.table)
        assigned: dict[str, ast.Expr] = {}
        for column, expr in stmt.assignments:
            if not table.schema.has_column(column):
                raise AnalyzeError(
                    f"UPDATE {stmt.table}: no column {column!r}"
                )
            if column.lower() in assigned:
                raise ExecutionError(
                    f"UPDATE assigns column {column!r} more than once"
                )
            assigned[column.lower()] = expr
        # One scan computes both images: the matched pre-image rows and,
        # per row, the post-image with SET expressions substituted.
        new_exprs = [
            ast.ResTarget(
                expr=assigned.get(col.name, ast.ColumnRef(name=col.name))
            )
            for col in table.schema.columns
        ]
        select = ast.SelectStmt(
            target_list=[ast.ResTarget(expr=ast.Star())] + new_exprs,
            from_clause=[ast.RangeVar(name=stmt.table)],
            where=stmt.where,
        )
        width = len(table.schema.columns)
        paired = self._prepare_select(select).run().rows
        old_rows = [row[:width] for row in paired]
        new_rows = [row[width:] for row in paired]
        removed = table.remove_rows(old_rows)
        if removed:
            table.insert_many(new_rows)
            table.record_delta("UPDATE", inserted=new_rows, deleted=old_rows)
        return QueryResult(columns=[], rows=[], command=f"UPDATE {removed}")

    def _dml_matched_rows(self, table_name: str, where: Optional[ast.Expr]) -> list[tuple]:
        """The full rows a DML predicate matches, evaluated in-process.

        Always runs on the Python engine (never a data-shipping backend):
        the rows come back by value and are matched against the heap, so
        any backend-side value conversion would silently miss rows.
        """
        select = ast.SelectStmt(
            target_list=[ast.ResTarget(expr=ast.Star())],
            from_clause=[ast.RangeVar(name=table_name)],
            where=where,
        )
        return self._prepare_select(select).run().rows

    def _eval_values_row(self, exprs: list[ast.Expr]) -> tuple:
        analyzer = Analyzer(self.catalog)
        compiler = ExprCompiler({}, [], plan_subquery=None)
        ctx = ExecContext()
        values = []
        for item in exprs:
            analyzed = analyzer._analyze_expr(item, scopes=[], allow_aggs=False)
            values.append(compiler.compile(analyzed)((), ctx))
        return tuple(values)

    def _execute_drop(self, stmt: ast.DropStmt) -> QueryResult:
        if stmt.kind == "table":
            self.catalog.drop_table(stmt.name, missing_ok=stmt.if_exists)
            return QueryResult(columns=[], rows=[], command="DROP TABLE")
        if stmt.kind == "matview":
            self.catalog.drop_matview(stmt.name, missing_ok=stmt.if_exists)
            return QueryResult(
                columns=[], rows=[], command="DROP MATERIALIZED PROVENANCE VIEW"
            )
        self.catalog.drop_view(stmt.name, missing_ok=stmt.if_exists)
        return QueryResult(columns=[], rows=[], command="DROP VIEW")

    # -- materialized provenance views ------------------------------------

    def _execute_create_matview(self, stmt: ast.CreateMatViewStmt) -> QueryResult:
        from repro.matview import maintenance, normalize_semantics
        from repro.matview.view import MaterializedProvenanceView
        from repro.sql.printer import format_statement

        if not self.provenance_module_enabled:
            raise PermError(
                "materialized provenance views require the provenance "
                "module (provenance_module_enabled=True)"
            )
        maintenance.validate_definition(stmt.query)
        view = MaterializedProvenanceView(
            name=stmt.name.lower(),
            sql=stmt.sql_text or format_statement(stmt),
            statement=stmt.query,
            semantics=normalize_semantics(stmt.query.provenance_type),
        )
        # Materialize before registering: a definition that fails to
        # analyze/rewrite/plan must not leave a broken catalog entry.
        maintenance.full_refresh(self, view)
        self.catalog.create_matview(view)
        return QueryResult(
            columns=[], rows=[], command="CREATE MATERIALIZED PROVENANCE VIEW"
        )

    def _execute_refresh_matview(self, stmt: ast.RefreshMatViewStmt) -> QueryResult:
        from repro.matview import maintenance

        view = self.catalog.matview(stmt.name)
        with view.lock:
            maintenance.full_refresh(self, view)
        return QueryResult(
            columns=[], rows=[], command="REFRESH MATERIALIZED PROVENANCE VIEW"
        )

    def _serve_matview(self, view) -> QueryResult:
        """Answer a read from a materialized provenance view.

        Maintain-on-read: stale views are first brought current
        (incrementally where the delta algebra is exact, else by full
        refresh), so a served result always equals re-executing the
        definition against the live tables.
        """
        from repro.matview import maintenance

        with view.lock:
            maintenance.ensure_fresh(self, view)
            view.served_reads += 1
            return view.result()

    def _store_into(self, name: str, query: Query, result: QueryResult) -> None:
        """SELECT INTO: materialize a result (e.g. stored provenance)."""
        if self.catalog.has_relation(name):
            raise CatalogError(f"relation {name!r} already exists")
        types = query.output_types()
        columns = [
            Column(col, SQLType.TEXT if t == SQLType.NULL else t)
            for col, t in zip(result.columns, types)
        ]
        schema = TableSchema(name.lower(), columns)
        table = self.catalog.create_table(schema)
        table.insert_many(result.rows)


def connect(
    provenance_module_enabled: bool = True,
    backend: "BackendSpec" = "python",
    optimize: bool = True,
    vectorize: bool = True,
    cost_based: bool = True,
    fuse_pipelines: bool = True,
    parallel_workers: int = 1,
    parallel_executor: str = "thread",
    shards: Optional[int] = None,
    shard_keys: Optional[dict] = None,
    auto_analyze: bool = True,
    wal_dir: Optional[str] = None,
    wal_sync: str = "always",
    wal_checkpoint_interval: Optional[int] = None,
) -> PermDatabase:
    """Create a fresh in-memory Perm database.

    ``optimize=False`` disables the logical optimizer (the rewritten
    query tree is planned/deparsed verbatim) — the paper's "no DBMS
    optimization phase" configuration, kept for benchmarks and tests.
    ``vectorize=False`` runs the Python engine tuple-at-a-time instead
    of batch-at-a-time (the pre-vectorization physical layer, kept
    differentially testable).  ``cost_based=False`` plans with the
    legacy heuristic join ordering instead of the statistics-driven
    cost model (the planner's own differential baseline).
    ``fuse_pipelines=False`` keeps vectorized scan→filter→project
    chains as per-operator batch passes instead of collapsing them
    into single generated kernels (:mod:`repro.executor.fusion`) — the
    differential oracle for the fused engine.
    ``parallel_workers=N`` (N > 1, or ``None`` for one per core) turns
    on morsel-driven parallel execution of eligible scan pipelines;
    the default 1 keeps execution serial.
    ``parallel_executor="process"`` dispatches morsels and shard
    scatter on fork-based worker processes (GIL-free) instead of the
    shared thread pool.  ``auto_analyze=False`` disables automatic
    refresh of stale ANALYZE statistics.

    ``shards=N`` runs queries on the hash-partitioned sharded backend:
    every catalog table is mirrored across N child instances of
    ``backend`` (partitioned by ``shard_keys[table]``, defaulting to
    the first primary-key column; ``None`` replicates), rewritten
    queries scatter to the relevant shards — pruned by shard-key
    predicates — and the partial results gather-merge semiring-natively.
    See ``docs/sharding.md``.

    ``wal_dir`` makes the database durable: committed DML/DDL is
    write-ahead logged there, any state a previous process left in the
    directory is recovered before this call returns, and
    :meth:`PermDatabase.checkpoint` snapshots + truncates the log.
    ``wal_sync`` picks the fsync policy (``"always"`` — commit implies
    durable — or ``"batch"``/``"never"``); ``wal_checkpoint_interval``
    auto-checkpoints after that many logged statements (0 disables).
    See ``docs/durability.md``.
    """
    return PermDatabase(
        provenance_module_enabled=provenance_module_enabled,
        backend=backend,
        optimize=optimize,
        vectorize=vectorize,
        cost_based=cost_based,
        fuse_pipelines=fuse_pipelines,
        parallel_workers=parallel_workers,
        parallel_executor=parallel_executor,
        shards=shards,
        shard_keys=shard_keys,
        auto_analyze=auto_analyze,
        wal_dir=wal_dir,
        wal_sync=wal_sync,
        wal_checkpoint_interval=wal_checkpoint_interval,
    )
