"""Tagged-JSON value codec shared by the wire protocol and the WAL.

JSON has no date/interval/polynomial values, so non-scalar engine
values ride in single-key tagged objects (``{"$date": "2026-01-01"}``,
``{"$poly": <Polynomial.to_wire()>}``, ``{"$interval": [days,
months]}``).  The provenance polynomial codec reuses the engine's
canonical wire form, so annotations survive the hop bit-exactly.  Both
the server protocol (:mod:`repro.server.protocol`) and the durability
layer's checkpoints (:mod:`repro.wal.checkpoint`) speak exactly this
encoding — a row that can be served over the wire can be made durable,
and vice versa.
"""

from __future__ import annotations

import datetime
from typing import Any

from repro.datatypes import Interval
from repro.semiring.polynomial import Polynomial


def encode_value(value: Any) -> Any:
    """One engine value -> a JSON-representable value."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Polynomial):
        return {"$poly": value.to_wire()}
    if isinstance(value, datetime.date):
        return {"$date": value.isoformat()}
    if isinstance(value, Interval):
        return {"$interval": [value.days, value.months]}
    # Loud-but-lossy fallback: the repr still identifies the value, and
    # a tagged object keeps it distinguishable from a plain string.
    return {"$str": str(value)}


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value` (``$str`` stays a string)."""
    if isinstance(value, dict) and len(value) == 1:
        if "$poly" in value:
            return Polynomial.from_wire(value["$poly"])
        if "$date" in value:
            return datetime.date.fromisoformat(value["$date"])
        if "$interval" in value:
            days, months = value["$interval"]
            return Interval(days=days, months=months)
        if "$str" in value:
            return value["$str"]
    return value


def encode_row(row: tuple) -> list:
    return [encode_value(value) for value in row]


def decode_row(row: list) -> tuple:
    return tuple(decode_value(value) for value in row)
