"""Table and column statistics: the planner's view of the data.

Collected by ``ANALYZE`` (the SQL statement, ``db.analyze()``, or the
shell's ``\\analyze``) in one pass over each heap and stored in the
catalog.  The cost model (:mod:`repro.planner.cost`) consumes them for
selectivity and cardinality estimation; without statistics it falls back
to magic-constant defaults, so ``ANALYZE`` is an optimization, never a
correctness requirement.

Freshness: a :class:`TableStats` remembers the ``(uid, epoch)`` of the
heap it was built from.  A dropped-and-recreated table (new ``uid``) or
a truncate (new ``epoch``) invalidates the entry; plain appends do not
— like any sampling DBMS, the numbers then lag the data until the next
``ANALYZE`` (the live row count is always read from the heap itself).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.storage.table import Table

#: Distinct-tracking cap per column: beyond this many values the column
#: is treated as effectively unique (ndv extrapolated to the row count),
#: bounding ANALYZE memory on wide-text columns of large heaps.
MAX_TRACKED_DISTINCT = 131072


@dataclass
class ColumnStats:
    """One column's statistics snapshot.

    ``ndv`` counts distinct non-NULL values; ``min_value``/``max_value``
    are populated only for orderable types (numbers, strings, dates) and
    drive range-predicate interpolation.
    """

    ndv: int = 0
    null_frac: float = 0.0
    min_value: Optional[Any] = None
    max_value: Optional[Any] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ColumnStats(ndv={self.ndv}, nulls={self.null_frac:.3f}, "
            f"range=[{self.min_value!r}, {self.max_value!r}])"
        )


@dataclass
class TableStats:
    """Statistics snapshot of one heap table."""

    table_name: str
    row_count: int
    columns: dict[str, ColumnStats] = field(default_factory=dict)
    # Heap identity at collection time (freshness check).
    table_uid: int = -1
    table_epoch: int = -1

    def column(self, name: str) -> Optional[ColumnStats]:
        return self.columns.get(name.lower())

    def is_fresh_for(self, table: "Table") -> bool:
        return (
            self.table_uid == table.uid and self.table_epoch == table.epoch
        )


def _orderable(value: Any) -> bool:
    """Min/max only make sense for homogeneous, orderable scalars."""
    import datetime

    return isinstance(value, (int, float, str, datetime.date)) and not isinstance(
        value, bool
    )


def collect_table_stats(table: "Table") -> TableStats:
    """One full pass over the heap: per-column NDV, nulls, min/max.

    Heaps are transposed through the table's columnar cache, so the
    per-column loops run over plain lists (one C-level ``set()`` build
    per column up to :data:`MAX_TRACKED_DISTINCT` values).
    """
    rows = table.row_count()
    stats = TableStats(
        table_name=table.name,
        row_count=rows,
        table_uid=table.uid,
        table_epoch=table.epoch,
    )
    if rows == 0:
        for name in table.column_names:
            stats.columns[name.lower()] = ColumnStats()
        return stats
    for attno, name in enumerate(table.column_names):
        column = table.columnar()[attno]
        non_null = [v for v in column if v is not None]
        null_frac = 1.0 - len(non_null) / rows
        if not non_null:
            stats.columns[name.lower()] = ColumnStats(null_frac=1.0)
            continue
        if len(non_null) > MAX_TRACKED_DISTINCT:
            sample = non_null[:MAX_TRACKED_DISTINCT]
            seen = len(set(sample))
            # Extrapolate: if the sample looks unique, assume the column
            # is; otherwise scale the sample's distinct ratio.
            ndv = (
                len(non_null)
                if seen == len(sample)
                else max(1, int(seen / len(sample) * len(non_null)))
            )
        else:
            ndv = len(set(non_null))
        probe = non_null[0]
        if _orderable(probe):
            try:
                min_value, max_value = min(non_null), max(non_null)
            except TypeError:  # mixed types sneaked in; skip the range
                min_value = max_value = None
        else:
            min_value = max_value = None
        stats.columns[name.lower()] = ColumnStats(
            ndv=ndv,
            null_frac=null_frac,
            min_value=min_value,
            max_value=max_value,
        )
    return stats
