"""Table and column statistics: the planner's view of the data.

Collected by ``ANALYZE`` (the SQL statement, ``db.analyze()``, or the
shell's ``\\analyze``) in one pass over each heap and stored in the
catalog.  The cost model (:mod:`repro.planner.cost`) consumes them for
selectivity and cardinality estimation; without statistics it falls back
to magic-constant defaults, so ``ANALYZE`` is an optimization, never a
correctness requirement.

Freshness: a :class:`TableStats` remembers the ``(uid, epoch)`` of the
heap it was built from.  A dropped-and-recreated table (new ``uid``) or
a truncate (new ``epoch``) invalidates the entry; plain appends do not
— like any sampling DBMS, the numbers then lag the data until the next
``ANALYZE`` (the live row count is always read from the heap itself).
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.storage.table import Table

#: Distinct-tracking cap per column: beyond this many values the column
#: is treated as effectively unique (ndv extrapolated to the row count),
#: bounding ANALYZE memory on wide-text columns of large heaps.
MAX_TRACKED_DISTINCT = 131072

#: Most-common-value list size.  A value makes the list only when it
#: repeats and (for high-NDV columns) occurs more often than average, so
#: unique-key columns carry no MCV list at all.
MCV_LIST_SIZE = 10

#: Equi-depth histogram resolution: each bucket holds ~1/32 of the
#: non-NULL, non-MCV rows.
HISTOGRAM_BUCKETS = 32


@dataclass
class ColumnStats:
    """One column's statistics snapshot.

    ``ndv`` counts distinct non-NULL values; ``min_value``/``max_value``
    are populated only for orderable types (numbers, strings, dates).

    ``mcv`` is the most-common-value list as ``(value, fraction)`` pairs
    where the fraction is of *all* rows (so NULLs and MCVs and the
    histogram mass sum to ~1).  ``histogram`` holds equi-depth bucket
    bounds over the remaining (non-NULL, non-MCV) orderable values, and
    ``histogram_frac`` is the fraction of all rows those buckets cover.
    """

    ndv: int = 0
    null_frac: float = 0.0
    min_value: Optional[Any] = None
    max_value: Optional[Any] = None
    mcv: tuple = ()
    histogram: tuple = ()
    histogram_frac: float = 0.0

    def mcv_total_frac(self) -> float:
        return sum(frac for _, frac in self.mcv)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ColumnStats(ndv={self.ndv}, nulls={self.null_frac:.3f}, "
            f"range=[{self.min_value!r}, {self.max_value!r}], "
            f"mcv={len(self.mcv)}, hist={max(len(self.histogram) - 1, 0)})"
        )


@dataclass
class TableStats:
    """Statistics snapshot of one heap table."""

    table_name: str
    row_count: int
    columns: dict[str, ColumnStats] = field(default_factory=dict)
    # Heap identity at collection time (freshness check).
    table_uid: int = -1
    table_epoch: int = -1
    #: Rows actually inspected when the snapshot was sample-based
    #: (auto-ANALYZE over large heaps); ``None`` means a full scan.
    sampled_rows: Optional[int] = None

    def column(self, name: str) -> Optional[ColumnStats]:
        return self.columns.get(name.lower())

    def is_fresh_for(self, table: "Table") -> bool:
        return (
            self.table_uid == table.uid and self.table_epoch == table.epoch
        )


def _orderable(value: Any) -> bool:
    """Min/max only make sense for homogeneous, orderable scalars."""
    import datetime

    return isinstance(value, (int, float, str, datetime.date)) and not isinstance(
        value, bool
    )


def _reservoir_indices(rows: int, sample_rows: int, seed: int) -> list[int]:
    """Algorithm-R reservoir over the row-index stream, sorted ascending.

    Seeded deterministically (from the heap's identity) so repeated
    collections over unchanged data produce identical statistics —
    estimate-quality tests and WAL replay both rely on that.
    """
    rng = random.Random(seed)
    reservoir = list(range(sample_rows))
    for index in range(sample_rows, rows):
        slot = rng.randrange(index + 1)
        if slot < sample_rows:
            reservoir[slot] = index
    reservoir.sort()
    return reservoir


def _chao1_ndv(counts: Counter, seen: int, est_population: int) -> int:
    """Chao1 richness estimate of population NDV from sample frequencies.

    ``seen + f1^2 / (2 f2)`` with the bias-corrected ``f1 (f1 - 1) / 2``
    term when no value occurred exactly twice; clamped between the
    distinct values actually seen and the estimated non-NULL population.
    """
    f1 = sum(1 for c in counts.values() if c == 1)
    f2 = sum(1 for c in counts.values() if c == 2)
    if f2 > 0:
        estimate = seen + (f1 * f1) / (2.0 * f2)
    else:
        estimate = seen + f1 * (f1 - 1) / 2.0
    return max(seen, min(int(estimate), est_population))


def collect_table_stats(
    table: "Table", sample_rows: Optional[int] = None
) -> TableStats:
    """One pass over the heap: per-column NDV, nulls, min/max,
    most-common values, and an equi-depth histogram.

    Heaps are transposed through the table's columnar cache, so the
    per-column loops run over plain lists (one C-level ``Counter`` build
    per column over up to :data:`MAX_TRACKED_DISTINCT` values; larger
    columns are sampled by prefix and extrapolated).

    ``sample_rows`` switches to estimation over a seeded reservoir
    sample of that many rows (auto-ANALYZE uses this above
    :attr:`~repro.catalog.catalog.Catalog.AUTO_ANALYZE_SAMPLE_THRESHOLD`
    rows): fractions scale directly, NDV goes through the Chao1
    estimator, and min/max narrow to the sampled extremes.  The live
    ``row_count`` is always exact — only per-column shape is estimated.
    """
    rows = table.row_count()
    stats = TableStats(
        table_name=table.name,
        row_count=rows,
        table_uid=table.uid,
        table_epoch=table.epoch,
    )
    if rows == 0:
        for name in table.column_names:
            stats.columns[name.lower()] = ColumnStats()
        return stats
    sample_indices = None
    if sample_rows is not None and rows > sample_rows:
        seed = hash((table.uid, table.epoch, rows))
        sample_indices = _reservoir_indices(rows, sample_rows, seed)
        stats.sampled_rows = len(sample_indices)
    for attno, name in enumerate(table.column_names):
        column = table.columnar()[attno]
        if sample_indices is not None:
            column = [column[i] for i in sample_indices]
        scanned = len(column)
        non_null = [v for v in column if v is not None]
        null_frac = 1.0 - len(non_null) / scanned
        if not non_null:
            stats.columns[name.lower()] = ColumnStats(null_frac=1.0)
            continue
        sample = (
            non_null
            if len(non_null) <= MAX_TRACKED_DISTINCT
            else non_null[:MAX_TRACKED_DISTINCT]
        )
        counts = Counter(sample)
        seen = len(counts)
        if sample_indices is not None:
            est_non_null = max(1, round(rows * (1.0 - null_frac)))
            ndv = _chao1_ndv(counts, seen, est_non_null)
        elif len(sample) < len(non_null):
            # Extrapolate: if the sample looks unique, assume the column
            # is; otherwise scale the sample's distinct ratio.
            ndv = (
                len(non_null)
                if seen == len(sample)
                else max(1, int(seen / len(sample) * len(non_null)))
            )
        else:
            ndv = seen
        probe = non_null[0]
        if _orderable(probe):
            try:
                min_value, max_value = min(non_null), max(non_null)
            except TypeError:  # mixed types sneaked in; skip the range
                min_value = max_value = None
        else:
            min_value = max_value = None
        non_null_frac = len(non_null) / scanned
        mcv = _collect_mcv(counts, len(sample), seen, non_null_frac)
        histogram, histogram_frac = _collect_histogram(
            counts, {v for v, _ in mcv}, len(sample), non_null_frac
        )
        stats.columns[name.lower()] = ColumnStats(
            ndv=ndv,
            null_frac=null_frac,
            min_value=min_value,
            max_value=max_value,
            mcv=mcv,
            histogram=histogram,
            histogram_frac=histogram_frac,
        )
    return stats


def _collect_mcv(
    counts: Counter, sample_size: int, seen: int, non_null_frac: float
) -> tuple:
    """The most-common-value list as ``(value, fraction-of-all-rows)``.

    Singletons never qualify (a value seen once is not "common"), and on
    high-NDV columns a value must beat the average frequency — so a
    uniform column (every TPC-H key) carries no MCV list and estimation
    falls through to NDV/histogram arithmetic.  Low-NDV columns keep
    every repeating value, making equality estimates exact.
    """
    mcv = []
    for value, count in counts.most_common(MCV_LIST_SIZE):
        if count <= 1:
            break
        if seen > MCV_LIST_SIZE and count * seen <= sample_size:
            break  # most_common is descending: the rest fail too
        mcv.append((value, count / sample_size * non_null_frac))
    return tuple(mcv)


def _collect_histogram(
    counts: Counter, mcv_values: set, sample_size: int, non_null_frac: float
) -> tuple[tuple, float]:
    """Equi-depth bucket bounds over the non-MCV values.

    Returns ``(bounds, fraction-of-all-rows-covered)``; bounds are
    ``HISTOGRAM_BUCKETS + 1`` values (fewer when the column has fewer
    distinct values) with each adjacent pair delimiting ~equal row mass.
    Non-orderable or mixed-type columns get no histogram.
    """
    remaining = [(v, c) for v, c in counts.items() if v not in mcv_values]
    if len(remaining) < 2 or not _orderable(remaining[0][0]):
        return (), 0.0
    try:
        remaining.sort()
    except TypeError:  # mixed types: no meaningful order
        return (), 0.0
    total = sum(c for _, c in remaining)
    buckets = min(HISTOGRAM_BUCKETS, len(remaining) - 1)
    bounds = [remaining[0][0]]
    cumulative = 0
    threshold = 1
    for value, count in remaining:
        cumulative += count
        while threshold <= buckets and cumulative * buckets >= threshold * total:
            # A single heavy value can cross several thresholds; it
            # still contributes one bound (buckets merely go unequal).
            if value != bounds[-1]:
                bounds.append(value)
            threshold += 1
    return tuple(bounds), total / sample_size * non_null_frac
