"""Query planning: query trees -> executable physical plans."""

from repro.planner.planner import Planner

__all__ = ["Planner"]
