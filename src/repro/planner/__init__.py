"""Query planning: query trees -> executable physical plans.

A three-stage pipeline:

1. :mod:`repro.planner.logical` — the query tree's FROM/WHERE decomposes
   into a backend-neutral logical join graph (operands, pushed filters,
   join-conjunct pool);
2. :mod:`repro.planner.stats` / :mod:`repro.planner.cost` — ANALYZE
   statistics and the selectivity/cardinality model estimated over it;
3. :mod:`repro.planner.physical` — cost-based operator choices emit the
   executable plan (:class:`CostBasedPlanner`, the default), with the
   legacy magic-constant path in :mod:`repro.planner.heuristic` kept
   reachable for differential testing.
"""

from typing import Optional

from repro.planner.heuristic import HeuristicPlanner
from repro.planner.physical import CostBasedPlanner, PlannerBase

#: The default planner class.
Planner = CostBasedPlanner


def make_planner(
    catalog,
    cost_based: bool = True,
    vectorize: bool = False,
    outer_varmaps: Optional[list] = None,
    shared=None,
    parallel_workers: int = 1,
    morsel_size: Optional[int] = None,
    fuse_pipelines: bool = True,
    parallel_executor: str = "thread",
) -> PlannerBase:
    """The configured planner: cost-based (default) or legacy heuristic.

    ``parallel_workers > 1`` enables the cost-based planner's
    exchange-insertion post-pass (morsel-driven parallelism,
    :mod:`repro.parallel`); the heuristic planner always plans serial —
    it is the differential oracle for the parallel paths.
    ``parallel_executor`` picks the worker-pool strategy exchanges
    dispatch on (``thread`` / ``process`` / ``serial``).
    ``fuse_pipelines`` toggles the pipeline-fusion post-pass
    (:mod:`repro.executor.fusion`; vectorized plans only).
    """
    cls = CostBasedPlanner if cost_based else HeuristicPlanner
    planner = cls(catalog, outer_varmaps, shared, vectorize=vectorize)
    planner.parallel_workers = parallel_workers
    planner.morsel_size = morsel_size
    planner.fuse_pipelines = fuse_pipelines
    planner.parallel_executor = parallel_executor
    return planner


__all__ = [
    "CostBasedPlanner",
    "HeuristicPlanner",
    "Planner",
    "PlannerBase",
    "make_planner",
]
