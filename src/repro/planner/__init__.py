"""Query planning: query trees -> executable physical plans.

A three-stage pipeline:

1. :mod:`repro.planner.logical` — the query tree's FROM/WHERE decomposes
   into a backend-neutral logical join graph (operands, pushed filters,
   join-conjunct pool);
2. :mod:`repro.planner.stats` / :mod:`repro.planner.cost` — ANALYZE
   statistics and the selectivity/cardinality model estimated over it;
3. :mod:`repro.planner.physical` — cost-based operator choices emit the
   executable plan (:class:`CostBasedPlanner`, the default), with the
   legacy magic-constant path in :mod:`repro.planner.heuristic` kept
   reachable for differential testing.
"""

from typing import Optional

from repro.planner.heuristic import HeuristicPlanner
from repro.planner.physical import CostBasedPlanner, PlannerBase

#: The default planner class.
Planner = CostBasedPlanner


def make_planner(
    catalog,
    cost_based: bool = True,
    vectorize: bool = False,
    outer_varmaps: Optional[list] = None,
    shared=None,
) -> PlannerBase:
    """The configured planner: cost-based (default) or legacy heuristic."""
    cls = CostBasedPlanner if cost_based else HeuristicPlanner
    return cls(catalog, outer_varmaps, shared, vectorize=vectorize)


__all__ = [
    "CostBasedPlanner",
    "HeuristicPlanner",
    "Planner",
    "PlannerBase",
    "make_planner",
]
