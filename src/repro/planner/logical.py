"""Stage 1 of the planner pipeline: query trees -> logical join graphs.

This module is purely *logical*: it decomposes one query node's
FROM/WHERE component into a backend-neutral operator DAG without
touching the catalog or building any physical operator.  The result of
:func:`decompose_from_where` is a :class:`LogicalJoinGraph`:

* ``units`` — the join operands: base-relation scans
  (:class:`LogicalScan`), subquery scans (:class:`LogicalSubquery`),
  whole outer-join subtrees (:class:`LogicalOuterJoin`, with their own
  operand graphs), and the optimizer's fused aggregation pairs
  (:class:`LogicalFusedJoin`).  Single-unit WHERE conjuncts are already
  attached to their owning unit (``unit.conjuncts``) — the logical form
  of filter pushdown.
* ``pool`` — multi-unit, sublink-free conjuncts: the join predicates the
  physical stage orders joins around.
* ``late`` — conjuncts that must see the fully joined row (correlated
  sublinks, var-free leftovers).

The decomposition encodes the outer-join safety rules the old monolith
implemented inline: WHERE conjuncts over the preserved side of an outer
join sink below it, ON conjuncts over only the null-producing side
pre-filter that operand, and nothing ever moves below a null-producing
side.

The physical stage (:mod:`repro.planner.physical`) walks this graph and
makes the operator/order decisions; the cost model
(:mod:`repro.planner.cost`) estimates cardinalities over it.  The
conjunct utilities at the bottom (:func:`split_conjuncts`,
:func:`conjoin`, :func:`extract_equi_keys`) are shared by both stages
and by the logical optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.errors import PlanError
from repro.analyzer import expressions as ex
from repro.analyzer.query_tree import (
    JoinTreeExpr,
    JoinTreeNode,
    Query,
    RangeTableEntry,
    RangeTableRef,
    jointree_rtindexes,
)


# ---------------------------------------------------------------------------
# The logical operator DAG
# ---------------------------------------------------------------------------


@dataclass(eq=False)
class LogicalScan:
    """A base-relation join operand with its pushed-down filters."""

    rtindex: int
    rte: RangeTableEntry
    conjuncts: list[ex.Expr] = field(default_factory=list)

    @property
    def rtindexes(self) -> set[int]:
        return {self.rtindex}


@dataclass(eq=False)
class LogicalSubquery:
    """A FROM-subquery join operand (closed; no LATERAL)."""

    rtindex: int
    rte: RangeTableEntry
    conjuncts: list[ex.Expr] = field(default_factory=list)

    @property
    def rtindexes(self) -> set[int]:
        return {self.rtindex}


@dataclass(eq=False)
class LogicalFusedJoin:
    """The optimizer's ``q_agg ⋈ d+`` pair planned over one shared core.

    ``pair`` is the :attr:`Query.agg_shares` entry
    ``(agg_rtindex, prov_rtindex, agg_key_positions)``.
    """

    pair: tuple[int, int, tuple[int, ...]]
    conjuncts: list[ex.Expr] = field(default_factory=list)

    @property
    def rtindexes(self) -> set[int]:
        return set(self.pair[:2])


@dataclass(eq=False)
class LogicalOuterJoin:
    """A left/right/full/cross join subtree, planned as one unit.

    ``left``/``right`` are the operand join graphs; ``conditions`` the
    ON conjuncts that must stay in the join (they decide null
    extension); ``left_top``/``right_top`` are ON conjuncts over only
    the null-producing side, applied as a pre-filter *on top of* the
    built operand (never pushed into a nested outer join's innards).
    """

    join_type: str
    left: "LogicalJoinGraph"
    right: "LogicalJoinGraph"
    conditions: list[ex.Expr] = field(default_factory=list)
    left_top: list[ex.Expr] = field(default_factory=list)
    right_top: list[ex.Expr] = field(default_factory=list)
    conjuncts: list[ex.Expr] = field(default_factory=list)
    rtindex_set: set[int] = field(default_factory=set)

    @property
    def rtindexes(self) -> set[int]:
        return self.rtindex_set


LogicalUnit = Union[LogicalScan, LogicalSubquery, LogicalFusedJoin, LogicalOuterJoin]


@dataclass(eq=False)
class LogicalJoinGraph:
    """One query level's FROM/WHERE as a free inner-join set."""

    units: list[LogicalUnit] = field(default_factory=list)
    pool: list[ex.Expr] = field(default_factory=list)
    late: list[ex.Expr] = field(default_factory=list)

    def rtindexes(self) -> set[int]:
        out: set[int] = set()
        for unit in self.units:
            out |= unit.rtindexes
        return out


# ---------------------------------------------------------------------------
# Decomposition: Query -> LogicalJoinGraph
# ---------------------------------------------------------------------------


def decompose_from_where(query: Query) -> LogicalJoinGraph:
    """Decompose a query node's FROM/WHERE into a logical join graph.

    WHERE conjuncts are collected *first* so that conjuncts referencing
    only the preserved side of an outer join can sink below it —
    essential for the rewriter's sublink left-join chains, where the
    whole FROM clause sits under a LEFT JOIN.
    """
    where_conjuncts: list[ex.Expr] = []
    if query.jointree.quals is not None:
        where_conjuncts = split_conjuncts(query.jointree.quals)
    # Uncorrelated-sublink conjuncts may sink too: their subplans read
    # nothing from the enclosing layout, and filtering the preserved
    # side before an outer join is where the provenance rewrite's
    # original WHERE evaluated them.
    pushable = [
        c
        for c in where_conjuncts
        if ex.collect_vars(c)
        and not any(s.correlated for s in ex.collect_sublinks(c))
    ]
    non_pushable = [c for c in where_conjuncts if c not in pushable]
    units: list[LogicalUnit] = []
    conjuncts: list[ex.Expr] = []
    for item in query.jointree.items:
        _flatten_inner(item, query, units, conjuncts, pushable)
    # Outer-join pushdown consumed some of ``pushable``; the rest (and
    # the sublink/no-var conjuncts) classify at this level.
    conjuncts.extend(pushable)
    conjuncts.extend(non_pushable)

    graph = LogicalJoinGraph(units=units)
    if not units:
        # FROM-less query: everything evaluates over the single empty
        # row, in source order.
        graph.late = conjuncts
        return graph

    # Classify conjuncts: single-unit filters attach to their unit
    # (sublink conjuncts too — filtering before the joins is where a
    # pulled-up subquery evaluated them); multi-unit sublink conjuncts
    # run after all joins; the rest form the join pool.
    for conjunct in conjuncts:
        if any(s.correlated for s in ex.collect_sublinks(conjunct)):
            # A correlated sublink body may reference any unit; it must
            # see the full joined layout.
            graph.late.append(conjunct)
            continue
        vars_used = ex.collect_vars(conjunct)
        owners = {unit_of(units, var.varno) for var in vars_used}
        if len(owners) == 1:
            owners.pop().conjuncts.append(conjunct)
        elif ex.contains_sublink(conjunct) or len(owners) == 0:
            graph.late.append(conjunct)
        else:
            graph.pool.append(conjunct)
    return graph


def decompose_operand(
    node: JoinTreeNode,
    query: Query,
    extra_conjuncts: Optional[list[ex.Expr]] = None,
    pushable: Optional[list[ex.Expr]] = None,
) -> LogicalJoinGraph:
    """Decompose a join subtree standalone (an outer join's operand)."""
    units: list[LogicalUnit] = []
    conjuncts: list[ex.Expr] = list(extra_conjuncts or [])
    _flatten_inner(node, query, units, conjuncts, pushable)
    graph = LogicalJoinGraph(units=units)
    if len(units) == 1 and not conjuncts:
        return graph
    for conjunct in conjuncts:
        if ex.contains_sublink(conjunct):
            graph.late.append(conjunct)
            continue
        # Single-unit conjuncts filter at the unit, exactly as at the
        # top level — without this, a filter that lived inside a
        # pulled-up subquery would run as a join residual.
        vars_used = ex.collect_vars(conjunct)
        owners = {unit_of(units, var.varno) for var in vars_used}
        if len(owners) == 1:
            owners.pop().conjuncts.append(conjunct)
        else:
            graph.pool.append(conjunct)
    return graph


def _flatten_inner(
    node: JoinTreeNode,
    query: Query,
    units: list[LogicalUnit],
    conjuncts: list[ex.Expr],
    pushable: Optional[list[ex.Expr]] = None,
) -> None:
    if isinstance(node, RangeTableRef):
        rte = query.range_table[node.rtindex]
        from repro.analyzer.query_tree import RTEKind

        if rte.kind is RTEKind.RELATION:
            units.append(LogicalScan(node.rtindex, rte))
        else:
            units.append(LogicalSubquery(node.rtindex, rte))
        return
    pair = fused_pair(query, node)
    if pair is not None:
        # Aggregation-join fusion: the pair's group-key quals are
        # enforced by the fused hash join itself.
        units.append(LogicalFusedJoin(pair))
        return
    if node.join_type == "inner":
        _flatten_inner(node.left, query, units, conjuncts, pushable)
        _flatten_inner(node.right, query, units, conjuncts, pushable)
        if node.quals is not None:
            conjuncts.extend(split_conjuncts(node.quals))
        return
    units.append(_decompose_outer(node, query, pushable))


def fused_pair(
    query: Query, node: JoinTreeNode
) -> Optional[tuple[int, int, tuple[int, ...]]]:
    """The ``Query.agg_shares`` entry covering this join node, if any."""
    if (
        not query.agg_shares
        or not isinstance(node, JoinTreeExpr)
        or node.join_type not in ("inner", "cross")
        or not isinstance(node.left, RangeTableRef)
        or not isinstance(node.right, RangeTableRef)
    ):
        return None
    indexes = {node.left.rtindex, node.right.rtindex}
    for pair in query.agg_shares:
        if set(pair[:2]) == indexes:
            return pair
    return None


def _decompose_outer(
    node: JoinTreeExpr,
    query: Query,
    pushable: Optional[list[ex.Expr]] = None,
) -> LogicalOuterJoin:
    # WHERE conjuncts referencing only the preserved side can move
    # below the outer join (they filter preserved rows identically
    # before or after null extension of the other side).
    left_extra: list[ex.Expr] = []
    right_extra: list[ex.Expr] = []
    if pushable:
        if node.join_type == "left":
            preserved, extras = set(jointree_rtindexes(node.left)), left_extra
        elif node.join_type == "right":
            preserved, extras = set(jointree_rtindexes(node.right)), right_extra
        else:
            preserved, extras = set(), []
        if preserved:
            for conjunct in list(pushable):
                vars_used = ex.collect_vars(conjunct)
                if vars_used and all(v.varno in preserved for v in vars_used):
                    extras.append(conjunct)
                    pushable.remove(conjunct)
    # The pool may only flow into the preserved side: pushing WHERE
    # conjuncts below the null-producing side would let null-extended
    # rows survive that the original WHERE eliminates.
    left_pool = pushable if node.join_type == "left" else None
    right_pool = pushable if node.join_type == "right" else None
    left = decompose_operand(node.left, query, left_extra, left_pool)
    right = decompose_operand(node.right, query, right_extra, right_pool)
    out = LogicalOuterJoin(
        join_type=node.join_type,
        left=left,
        right=right,
        rtindex_set=set(jointree_rtindexes(node)),
    )
    condition_conjuncts = (
        split_conjuncts(node.quals) if node.quals is not None else []
    )
    # ON-condition conjuncts over the null-producing side alone
    # pre-filter that input: ``L LEFT JOIN R ON (c AND w(R))`` is
    # ``L LEFT JOIN (σ_w R) ON c``.  (Preserved-side conjuncts must
    # stay in the condition — they decide null extension, not row
    # survival.)
    if node.join_type in ("left", "right"):
        nullable_rts = (
            right.rtindexes() if node.join_type == "left" else left.rtindexes()
        )
        top = out.right_top if node.join_type == "left" else out.left_top
        for conjunct in condition_conjuncts:
            vars_used = ex.collect_vars(conjunct)
            if (
                vars_used
                and not ex.contains_sublink(conjunct)
                and all(v.varno in nullable_rts for v in vars_used)
            ):
                top.append(conjunct)
            else:
                out.conditions.append(conjunct)
    else:
        out.conditions = condition_conjuncts
    return out


def unit_of(units: list, rtindex: int):
    """The join operand owning a range-table index."""
    for unit in units:
        if rtindex in unit.rtindexes:
            return unit
    raise PlanError(f"range table index {rtindex} not found in any join unit")


# ---------------------------------------------------------------------------
# Conjunct utilities (shared with the optimizer and physical stage)
# ---------------------------------------------------------------------------


def split_conjuncts(expr: ex.Expr) -> list[ex.Expr]:
    """Flatten nested AND chains into a conjunct list.

    OR nodes whose every arm shares common conjuncts are factored
    (``(a AND x) OR (a AND y)`` -> ``a AND (x OR y)``), which recovers the
    join predicate hidden inside TPC-H Q19's disjunction.
    """
    if isinstance(expr, ex.BoolOpExpr) and expr.op == "and":
        result: list[ex.Expr] = []
        for arg in expr.args:
            result.extend(split_conjuncts(arg))
        return result
    if isinstance(expr, ex.BoolOpExpr) and expr.op == "or":
        factored = _factor_or(expr)
        if factored is not None:
            return factored
    return [expr]


def _factor_or(expr: ex.BoolOpExpr) -> Optional[list[ex.Expr]]:
    """Extract conjuncts common to every arm of an OR, if any."""
    arms = [split_conjuncts(arg) for arg in expr.args]
    common = [c for c in arms[0] if all(any(c == d for d in arm) for arm in arms[1:])]
    if not common:
        return None
    remainders: list[ex.Expr] = []
    for arm in arms:
        rest = [c for c in arm if not any(c == k for k in common)]
        if not rest:
            # One arm is exactly the common part: the OR adds nothing more.
            return common
        remainders.append(conjoin(rest))
    return common + [ex.BoolOpExpr("or", tuple(remainders))]


def conjoin(conjuncts: list[ex.Expr]) -> ex.Expr:
    if len(conjuncts) == 1:
        return conjuncts[0]
    return ex.BoolOpExpr("and", tuple(conjuncts))


def extract_equi_keys(
    conjuncts: list[ex.Expr], left_rts: set[int], right_rts: set[int]
) -> tuple[list[ex.Expr], list[ex.Expr], list[bool], list[ex.Expr]]:
    """Split conjuncts into hash-joinable equi keys and a residual list.

    Both plain ``=`` and the rewriter's null-safe ``<=>`` qualify; the
    returned flag list marks the null-safe keys.  ``left_rts`` /
    ``right_rts`` are the range-table index sets of the two join sides.
    """
    left_keys: list[ex.Expr] = []
    right_keys: list[ex.Expr] = []
    null_safe: list[bool] = []
    residual: list[ex.Expr] = []
    for conjunct in conjuncts:
        if (
            isinstance(conjunct, ex.OpExpr)
            and conjunct.op in ("=", "<=>")
            and not ex.contains_sublink(conjunct)
        ):
            a, b = conjunct.args
            vars_a = ex.collect_vars(a)
            vars_b = ex.collect_vars(b)
            if vars_a and vars_b:
                a_in_left = all(v.varno in left_rts for v in vars_a)
                a_in_right = all(v.varno in right_rts for v in vars_a)
                b_in_left = all(v.varno in left_rts for v in vars_b)
                b_in_right = all(v.varno in right_rts for v in vars_b)
                if a_in_left and b_in_right:
                    left_keys.append(a)
                    right_keys.append(b)
                    null_safe.append(conjunct.op == "<=>")
                    continue
                if a_in_right and b_in_left:
                    left_keys.append(b)
                    right_keys.append(a)
                    null_safe.append(conjunct.op == "<=>")
                    continue
        residual.append(conjunct)
    return left_keys, right_keys, null_safe, residual


def conjunct_touches(
    conjunct: ex.Expr, left_rts: set[int], right_rts: set[int]
) -> bool:
    """True when the conjunct references variables on both sides."""
    vars_used = ex.collect_vars(conjunct)
    touches_left = any(v.varno in left_rts for v in vars_used)
    touches_right = any(v.varno in right_rts for v in vars_used)
    return touches_left and touches_right
