"""The legacy heuristic planner (pre-cost-model), kept as a baseline.

Join ordering is the PR-4 greedy: start from the smallest *estimated*
base unit, prefer connected equi-join candidates, and attach
subquery-derived units (the aggregates the provenance rewrite re-joins)
last — the shape the rewrite intends, but blind to actual data
distribution.  Reachable through ``PermDatabase(cost_based=False)`` /
``connect(cost_based=False)`` so the cost-based planner stays
differentially testable against it.
"""

from __future__ import annotations

from repro.analyzer import expressions as ex
from repro.planner.logical import conjunct_touches
from repro.planner.physical import PlannerBase, _Unit


class HeuristicPlanner(PlannerBase):
    """Magic-constant estimates, subquery-last greedy join ordering."""

    def _order_joins(self, units: list[_Unit], pool: list[ex.Expr]) -> _Unit:
        """Left-deep greedy join ordering over inner-join units."""
        remaining = list(units)
        pool = list(pool)
        # Start from the smallest estimated *base* unit; subquery-derived
        # units (aggregates re-attached by the provenance rewrite) join
        # last, after the base join chain narrowed the row stream.
        remaining.sort(key=lambda u: (u.from_subquery, u.plan.estimate))
        current = remaining.pop(0)
        while remaining:
            connected = [
                (i, unit)
                for i, unit in enumerate(remaining)
                if any(self._connects(c, current, unit) for c in pool)
            ]
            candidates = connected or list(enumerate(remaining))
            best_index = min(
                candidates,
                key=lambda pair: (pair[1].from_subquery, pair[1].plan.estimate),
            )[0]
            next_unit = remaining.pop(best_index)
            applicable: list[ex.Expr] = []
            still_pooled: list[ex.Expr] = []
            combined_rts = current.rtindexes | next_unit.rtindexes
            for conjunct in pool:
                vars_used = ex.collect_vars(conjunct)
                if vars_used and all(v.varno in combined_rts for v in vars_used):
                    applicable.append(conjunct)
                else:
                    still_pooled.append(conjunct)
            pool = still_pooled
            current = self._join_units(current, next_unit, "inner", applicable)
        for conjunct in pool:
            # Conjuncts referencing no vars (constants) or left over.
            current.plan = self._filter_node(
                current.plan, self._compiler(current.varmap), conjunct
            )
        return current

    @staticmethod
    def _connects(conjunct: ex.Expr, left: _Unit, right: _Unit) -> bool:
        if not (isinstance(conjunct, ex.OpExpr) and conjunct.op in ("=", "<=>")):
            return False
        return conjunct_touches(conjunct, left.rtindexes, right.rtindexes)
