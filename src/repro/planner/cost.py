"""Stage 2 of the planner pipeline: selectivity and cardinality estimation.

The :class:`CostModel` turns ANALYZE statistics
(:mod:`repro.planner.stats`) into the numbers the physical stage plans
by: how many rows a filtered scan produces, how large a join output is,
how many groups an aggregation collapses to.  Estimates follow the
classic System-R recipes:

* equality against a constant — the MCV list when the value (or its
  absence) is recorded there, ``1/ndv`` over the non-MCV remainder
  otherwise;
* range predicates — the MCV fractions satisfying the comparison plus
  equi-depth histogram interpolation (numbers, dates *and* strings);
  without a histogram, linear interpolation between ``min``/``max``;
* ``LIKE`` against a constant pattern — a literal prefix becomes a
  range probe over the string histogram; patterns without a usable
  prefix are matched against the MCV values and histogram bounds as a
  sample;
* equi-joins — ``|L|·|R| / max(ndv(L keys), ndv(R keys))`` where each
  side's key NDV is the product of its per-key NDVs clamped by the
  side's current row estimate (the containment assumption, which also
  kills the independence error on composite keys: a table cannot carry
  more distinct key *combinations* than rows);
* grouping — product of group-key NDVs capped by the input cardinality
  (``extract_year``/``month``/``day`` over a dated column use the value
  range — the shape of every TPC-H provenance aggregate).

Everything degrades gracefully without statistics: magic-constant
defaults keep the estimates ordinal (selective things look smaller),
so an un-ANALYZEd database still plans correctly, just less sharply.

Column statistics travel with plan slots through joins and subquery
target lists (``_Unit.scope`` in the physical stage), so a provenance
rewrite's re-joined aggregate still knows the NDV of the base column a
group key came from.  The optimizer's annotations feed in here as well:
projection pruning's ``used_attnos`` narrows estimated scan widths, and
aggregation-fusion pairs inherit their shared core's estimate.
"""

from __future__ import annotations

import datetime
from typing import Any, Optional

from repro.analyzer import expressions as ex
from repro.catalog.catalog import Catalog
from repro.planner.logical import extract_equi_keys
from repro.planner.stats import ColumnStats

# Defaults when no statistics are available (System-R-style constants).
DEFAULT_EQ_SEL = 0.1
DEFAULT_RANGE_SEL = 0.3
DEFAULT_LIKE_SEL = 0.1
DEFAULT_PREFIX_LIKE_SEL = 0.05
DEFAULT_NULL_FRAC = 0.05
DEFAULT_SEL = 0.25
#: NDV guess for group keys without statistics (PostgreSQL's 200).
DEFAULT_GROUP_NDV = 200.0
#: Weight of evaluation work (pairs probed / hashed) against output
#: cardinality when scoring candidate join pairs: output size dominates,
#: but a tiny-output nested loop over huge inputs must still lose to a
#: hash join producing slightly more rows.
WORK_WEIGHT = 0.05

_MIN_SEL = 1e-4

Scope = Optional[dict]  # (varno, varattno) -> ColumnStats | None


def _clamp_sel(value: float) -> float:
    return min(1.0, max(_MIN_SEL, value))


#: Sentinel distinguishing "not a constant" from a constant SQL NULL.
_NO_CONST = object()


def _const_value(expr: ex.Expr) -> Any:
    """The value of a var-free constant expression, or :data:`_NO_CONST`.

    Constant arithmetic can reach the planner unfolded — TPC-H's
    ``DATE '1993-01-01' + INTERVAL '1' MONTH`` window bounds are the
    canonical case — and treating it as opaque cost Q14 a 13× scan
    misestimate.  Anything var-free and sublink-free evaluates with the
    ordinary row compiler against no row at all."""
    if isinstance(expr, ex.Const):
        return expr.value
    if not isinstance(expr, (ex.OpExpr, ex.FuncExpr)):
        return _NO_CONST
    if ex.collect_vars(expr) or ex.contains_sublink(expr):
        return _NO_CONST
    from repro.executor.expr_eval import ExprCompiler

    try:
        return ExprCompiler({}).compile(expr)(None, None)
    except Exception:
        return _NO_CONST


class CostModel:
    """Selectivity/cardinality estimation over ANALYZE statistics."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog

    # -- scope plumbing -----------------------------------------------------

    @staticmethod
    def _stats_for_var(expr: ex.Expr, scope: Scope) -> Optional[ColumnStats]:
        if (
            scope
            and isinstance(expr, ex.Var)
            and expr.levelsup == 0
        ):
            return scope.get((expr.varno, expr.varattno))
        return None

    # -- predicate selectivity ----------------------------------------------

    def conjunct_selectivity(self, conjunct: ex.Expr, scope: Scope) -> float:
        """Fraction of input rows the predicate keeps (clamped)."""
        return _clamp_sel(self._sel(conjunct, scope or {}))

    def _sel(self, e: ex.Expr, scope: dict) -> float:
        if isinstance(e, ex.Const):
            return 1.0 if e.value is True else _MIN_SEL
        if isinstance(e, ex.BoolOpExpr):
            if e.op == "and":
                sel = 1.0
                for arg in e.args:
                    sel *= self._sel(arg, scope)
                return sel
            if e.op == "or":
                keep_none = 1.0
                for arg in e.args:
                    keep_none *= 1.0 - _clamp_sel(self._sel(arg, scope))
                return 1.0 - keep_none
            return 1.0 - _clamp_sel(self._sel(e.args[0], scope))
        if isinstance(e, ex.NullTest):
            stats = self._stats_for_var(e.arg, scope)
            frac = stats.null_frac if stats is not None else DEFAULT_NULL_FRAC
            return (1.0 - frac) if e.negated else frac
        if isinstance(e, ex.LikeTest):
            if isinstance(e.pattern, ex.Const) and isinstance(e.pattern.value, str):
                stats = self._stats_for_var(e.arg, scope)
                sel = _like_sel(stats, e.pattern.value)
            else:
                sel = DEFAULT_LIKE_SEL
            return (1.0 - sel) if e.negated else sel
        if isinstance(e, ex.InList):
            stats = self._stats_for_var(e.arg, scope)
            if stats is not None and all(
                isinstance(item, ex.Const) for item in e.items
            ):
                sel = min(
                    1.0,
                    sum(_eq_sel(stats, item.value) for item in e.items),
                )
            elif stats is not None and stats.ndv > 0:
                sel = min(1.0, len(e.items) / stats.ndv)
            else:
                sel = min(1.0, DEFAULT_EQ_SEL * len(e.items))
            return (1.0 - sel) if e.negated else sel
        if isinstance(e, ex.OpExpr) and len(e.args) == 2:
            return self._op_sel(e, scope)
        if ex.contains_sublink(e):
            return DEFAULT_SEL
        return DEFAULT_SEL

    def _op_sel(self, e: ex.OpExpr, scope: dict) -> float:
        op = e.op
        left, right = e.args
        left_stats = self._stats_for_var(left, scope)
        right_stats = self._stats_for_var(right, scope)
        if op in ("=", "<=>"):
            if left_stats is not None and right_stats is not None:
                # Column-to-column equality within one relation set.
                return 1.0 / max(left_stats.ndv, right_stats.ndv, 1)
            stats, const = self._var_const(left, right, left_stats, right_stats)
            if stats is not None:
                return _eq_sel(stats, const)
            return DEFAULT_EQ_SEL
        if op in ("<>", "<!=>"):
            eq = self._op_sel(
                ex.OpExpr("=", e.args, e.type), scope
            )
            return 1.0 - _clamp_sel(eq)
        if op in ("<", "<=", ">", ">="):
            stats, const = self._var_const(left, right, left_stats, right_stats)
            if stats is None or const is None:
                return DEFAULT_RANGE_SEL
            # Orient the operator as ``column op constant``.
            if self._stats_for_var(left, scope) is None:
                op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]
            sel = _range_sel(stats, const, op)
            if sel is None:
                return DEFAULT_RANGE_SEL
            return sel
        return DEFAULT_SEL

    def range_bound(
        self, e: ex.Expr, scope: Scope
    ) -> Optional[tuple[tuple[int, int], str, float]]:
        """``((varno, attno), 'lo'|'hi', selectivity)`` when ``e`` is a
        one-sided range bound on a plain column against a constant whose
        selectivity the statistics can actually estimate; None otherwise.

        Conjuncts are pushed (and estimated) one at a time, so without
        pairing them up ``col >= lo AND col < hi`` multiplies two large
        marginals instead of measuring the interval — TPC-H's one-month
        windows (Q14's ``l_shipdate`` bounds) came out 13× too big.  The
        caller pairs opposite bounds on the same column and replaces the
        independence product with ``s_lo + s_hi - 1``.
        """
        scope = scope or {}
        if not (isinstance(e, ex.OpExpr) and len(e.args) == 2):
            return None
        op = e.op
        if op not in ("<", "<=", ">", ">="):
            return None
        left, right = e.args
        left_stats = self._stats_for_var(left, scope)
        right_stats = self._stats_for_var(right, scope)
        if (left_stats is None) == (right_stats is None):
            return None
        stats, const = self._var_const(left, right, left_stats, right_stats)
        if stats is None or const is None:
            return None
        if left_stats is None:
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]
            var = right
        else:
            var = left
        sel = _range_sel(stats, const, op)
        if sel is None:
            return None
        kind = "lo" if op in (">", ">=") else "hi"
        return (var.varno, var.varattno), kind, sel

    @staticmethod
    def combine_range_bounds(lo: float, hi: float) -> float:
        """Interval mass of paired lower/upper bound selectivities."""
        return min(lo, hi, max(lo + hi - 1.0, _MIN_SEL))

    @staticmethod
    def _var_const(
        left: ex.Expr,
        right: ex.Expr,
        left_stats: Optional[ColumnStats],
        right_stats: Optional[ColumnStats],
    ) -> tuple[Optional[ColumnStats], Optional[Any]]:
        """(column stats, constant value) for a var-vs-const comparison."""
        if left_stats is not None:
            value = _const_value(right)
            if value is not _NO_CONST:
                return left_stats, value
        if right_stats is not None:
            value = _const_value(left)
            if value is not _NO_CONST:
                return right_stats, value
        return None, None

    # -- join estimation -----------------------------------------------------

    def _key_ndv(self, key: ex.Expr, unit) -> float:
        """Distinct-value estimate of a join key on one side."""
        rows = max(getattr(unit.plan, "estimate", 1.0), 1.0)
        stats = self._stats_for_var(key, unit.scope or {})
        if stats is not None and stats.ndv > 0:
            # Containment: a filtered side cannot carry more distinct
            # keys than rows.
            return max(1.0, min(float(stats.ndv), rows))
        return rows

    def join_estimate(
        self, left, right, conjuncts: list[ex.Expr], join_type: str
    ) -> float:
        """Estimated output rows of joining two placed units."""
        la = max(getattr(left.plan, "estimate", 1.0), 1.0)
        lb = max(getattr(right.plan, "estimate", 1.0), 1.0)
        live = [
            c
            for c in conjuncts
            if not (isinstance(c, ex.Const) and c.value is True)
        ]
        left_keys, right_keys, _ns, residual = extract_equi_keys(
            live, left.rtindexes, right.rtindexes
        )
        sel = 1.0
        if left_keys:
            # Composite keys: the independence assumption (multiplying
            # per-key selectivities) overstates the distinct-combination
            # count; a side cannot carry more distinct key tuples than
            # rows, so clamp each side's NDV product by its estimate.
            ndv_l = ndv_r = 1.0
            for lk, rk in zip(left_keys, right_keys):
                ndv_l *= self._key_ndv(lk, left)
                ndv_r *= self._key_ndv(rk, right)
            sel = 1.0 / max(min(ndv_l, la), min(ndv_r, lb), 1.0)
        if residual:
            merged = {**(left.scope or {}), **(right.scope or {})}
            for c in residual:
                sel *= self.conjunct_selectivity(c, merged)
        inner = max(la * lb * sel, 1.0)
        if join_type == "left":
            return max(inner, la)
        if join_type == "right":
            return max(inner, lb)
        if join_type == "full":
            return max(inner, la + lb)
        return inner

    def pair_score(self, left, right, conjuncts: list[ex.Expr]) -> float:
        """Greedy-operator-ordering score of joining two units next.

        Primarily the estimated output cardinality; the work term adds
        the evaluation cost (hash: linear in the inputs, conditional
        nested loop: the full cross of pairs) so a cheap-output but
        quadratically-evaluated candidate does not always win.
        """
        la = max(getattr(left.plan, "estimate", 1.0), 1.0)
        lb = max(getattr(right.plan, "estimate", 1.0), 1.0)
        est = self.join_estimate(left, right, conjuncts, "inner")
        left_keys, _rk, _ns, _res = extract_equi_keys(
            conjuncts, left.rtindexes, right.rtindexes
        )
        if left_keys:
            work = la + lb
        elif conjuncts:
            work = la * lb
        else:
            work = est  # cross product: output built directly
        return est + WORK_WEIGHT * work

    # -- aggregation estimation ----------------------------------------------

    def group_estimate(
        self, group_clause: list[ex.Expr], scope: Scope, input_rows: float
    ) -> float:
        """Estimated group count of an aggregation."""
        if not group_clause:
            return 1.0
        input_rows = max(input_rows, 1.0)
        ndv = 1.0
        for key in group_clause:
            ndv *= self._group_key_ndv(key, scope or {}, input_rows)
            if ndv >= input_rows:
                return input_rows
        return max(1.0, min(ndv, input_rows))

    def _group_key_ndv(
        self, key: ex.Expr, scope: dict, input_rows: float
    ) -> float:
        stats = self._stats_for_var(key, scope)
        if stats is not None and stats.ndv > 0:
            return float(stats.ndv) + (1.0 if stats.null_frac > 0 else 0.0)
        if isinstance(key, ex.FuncExpr) and key.args:
            arg_stats = self._stats_for_var(key.args[0], scope)
            if key.name == "extract_year":
                span = _year_span(arg_stats)
                if span is not None:
                    return span
            elif key.name == "extract_month":
                return 12.0
            elif key.name == "extract_day":
                return 31.0
        return min(DEFAULT_GROUP_NDV, input_rows)


def _year_span(stats: Optional[ColumnStats]) -> Optional[float]:
    if (
        stats is not None
        and isinstance(stats.min_value, datetime.date)
        and isinstance(stats.max_value, datetime.date)
    ):
        return float(stats.max_value.year - stats.min_value.year + 1)
    return None


def _eq_sel(stats: ColumnStats, value: Any) -> float:
    """Selectivity of ``column = value`` from the MCV list + NDV.

    An MCV hit returns the recorded fraction exactly.  A miss spreads
    the non-NULL, non-MCV row mass uniformly over the remaining distinct
    values — the classic PostgreSQL recipe.
    """
    if stats.mcv:
        for mcv_value, frac in stats.mcv:
            if mcv_value == value:
                return frac
        rest_ndv = stats.ndv - len(stats.mcv)
        if rest_ndv <= 0:
            # Every distinct value is in the MCV list; an absent
            # constant matches (almost) nothing.
            return _MIN_SEL
        rest_frac = max(
            0.0, 1.0 - stats.null_frac - stats.mcv_total_frac()
        )
        return rest_frac / rest_ndv
    if stats.ndv > 0:
        return 1.0 / stats.ndv
    return DEFAULT_EQ_SEL


def _range_sel(stats: ColumnStats, value: Any, op: str) -> Optional[float]:
    """Selectivity of ``column op value`` (op oriented column-first)
    from the MCV list and the equi-depth histogram; None when neither
    the histogram nor min/max interpolation applies to the types."""
    lower = op in ("<", "<=")
    inclusive = op in ("<=", ">=")
    mcv_part = 0.0
    try:
        for mcv_value, frac in stats.mcv:
            if mcv_value == value:
                if inclusive:
                    mcv_part += frac
            elif (mcv_value < value) is lower:
                mcv_part += frac
    except TypeError:
        return None
    if len(stats.histogram) >= 2:
        below = _hist_fraction_below(stats.histogram, value)
        if below is None:
            return None
        part = below if lower else 1.0 - below
        return mcv_part + stats.histogram_frac * part
    fraction = _range_fraction(value, stats.min_value, stats.max_value)
    if fraction is None:
        return None
    rest = max(0.0, 1.0 - stats.null_frac - stats.mcv_total_frac())
    return mcv_part + rest * (fraction if lower else 1.0 - fraction)


def _hist_fraction_below(bounds: tuple, value: Any) -> Optional[float]:
    """Fraction of histogram-covered rows strictly below ``value``:
    complete buckets plus linear interpolation inside the straddling
    bucket (positional 0.5 for strings, which do not interpolate)."""
    try:
        if value <= bounds[0]:
            return 0.0
        if value >= bounds[-1]:
            return 1.0
        import bisect

        index = bisect.bisect_right(bounds, value) - 1
    except TypeError:
        return None
    within = _range_fraction(value, bounds[index], bounds[index + 1])
    if within is None:
        within = 0.5
    return (index + within) / (len(bounds) - 1)


def _like_prefix(pattern: str) -> str:
    """The literal prefix of a LIKE pattern (up to the first wildcard),
    with escaped wildcards kept literal."""
    prefix = []
    i = 0
    while i < len(pattern):
        char = pattern[i]
        if char in ("%", "_"):
            break
        if char == "\\" and i + 1 < len(pattern):
            i += 1
            char = pattern[i]
        prefix.append(char)
        i += 1
    return "".join(prefix)


def _like_sel(stats: Optional[ColumnStats], pattern: str) -> float:
    """Selectivity of ``column LIKE 'pattern'`` against a constant.

    With statistics, an anchored pattern becomes a range probe over the
    string histogram: ``prefix <= col < prefix⁺`` (the prefix with its
    last character incremented), multiplied by a residual factor when
    wildcards follow the prefix.  Unanchored patterns are matched
    against the MCV values exactly and against the histogram bounds as
    a small sample.  Without statistics, the old magic constants.
    """
    prefix = _like_prefix(pattern)
    anchored = bool(prefix)
    usable = stats is not None and (stats.mcv or len(stats.histogram) >= 2)
    if not usable:
        return DEFAULT_PREFIX_LIKE_SEL if anchored else DEFAULT_LIKE_SEL
    from repro.executor.expr_eval import _cached_like_regex

    regex = _cached_like_regex(pattern)
    matched = 0.0
    sampled = 0.0
    try:
        for value, frac in stats.mcv:
            sampled += frac
            if isinstance(value, str) and regex.fullmatch(value) is not None:
                matched += frac
    except TypeError:  # pragma: no cover - non-string MCVs
        return DEFAULT_LIKE_SEL
    bounds = stats.histogram
    if len(bounds) >= 2 and stats.histogram_frac > 0.0:
        hist_done = False
        if anchored and all(isinstance(b, str) for b in (bounds[0], bounds[-1])):
            upper = prefix[:-1] + chr(ord(prefix[-1]) + 1)
            below_hi = _hist_fraction_below(bounds, upper)
            below_lo = _hist_fraction_below(bounds, prefix)
            if below_hi is not None and below_lo is not None:
                range_frac = max(0.0, below_hi - below_lo)
                # An exact-prefix pattern ('PROMO%') is the range probe
                # itself; trailing wildcards keep only part of it.
                residual = 1.0 if pattern == prefix + "%" else DEFAULT_SEL
                matched += stats.histogram_frac * range_frac * residual
                hist_done = True
        if not hist_done:
            # No prefix range: treat the bucket bounds as a value
            # sample — the fraction of bounds matching the pattern
            # approximates the fraction of rows matching it.
            hits = sum(
                1
                for b in bounds
                if isinstance(b, str) and regex.fullmatch(b) is not None
            )
            matched += stats.histogram_frac * hits / len(bounds)
        sampled += stats.histogram_frac
    if sampled <= 0.0:
        return DEFAULT_PREFIX_LIKE_SEL if anchored else DEFAULT_LIKE_SEL
    return matched


def _range_fraction(value: Any, lo: Any, hi: Any) -> Optional[float]:
    """Position of ``value`` within ``[lo, hi]`` as a fraction, or None
    when the types do not interpolate (strings, mixed types)."""
    if lo is None or hi is None or value is None:
        return None
    try:
        if isinstance(value, datetime.date) and isinstance(lo, datetime.date):
            span = (hi - lo).days
            offset = (value - lo).days
        elif isinstance(value, (int, float)) and isinstance(lo, (int, float)):
            span = hi - lo
            offset = value - lo
        else:
            return None
    except TypeError:
        return None
    if span <= 0:
        return 0.5
    return min(0.999, max(0.001, offset / span))
