"""Stage 2 of the planner pipeline: selectivity and cardinality estimation.

The :class:`CostModel` turns ANALYZE statistics
(:mod:`repro.planner.stats`) into the numbers the physical stage plans
by: how many rows a filtered scan produces, how large a join output is,
how many groups an aggregation collapses to.  Estimates follow the
classic System-R recipes:

* equality against a constant — ``1/ndv``;
* range predicates — linear interpolation between the column's
  ``min``/``max`` (numbers and dates);
* equi-joins — ``|L|·|R| / max(ndv(l), ndv(r))`` per key pair, with
  per-side NDVs clamped by the side's current row estimate (the
  containment assumption);
* grouping — product of group-key NDVs capped by the input cardinality
  (``extract_year``/``month``/``day`` over a dated column use the value
  range — the shape of every TPC-H provenance aggregate).

Everything degrades gracefully without statistics: magic-constant
defaults keep the estimates ordinal (selective things look smaller),
so an un-ANALYZEd database still plans correctly, just less sharply.

Column statistics travel with plan slots through joins and subquery
target lists (``_Unit.scope`` in the physical stage), so a provenance
rewrite's re-joined aggregate still knows the NDV of the base column a
group key came from.  The optimizer's annotations feed in here as well:
projection pruning's ``used_attnos`` narrows estimated scan widths, and
aggregation-fusion pairs inherit their shared core's estimate.
"""

from __future__ import annotations

import datetime
from typing import Any, Optional

from repro.analyzer import expressions as ex
from repro.catalog.catalog import Catalog
from repro.planner.logical import extract_equi_keys
from repro.planner.stats import ColumnStats

# Defaults when no statistics are available (System-R-style constants).
DEFAULT_EQ_SEL = 0.1
DEFAULT_RANGE_SEL = 0.3
DEFAULT_LIKE_SEL = 0.1
DEFAULT_PREFIX_LIKE_SEL = 0.05
DEFAULT_NULL_FRAC = 0.05
DEFAULT_SEL = 0.25
#: NDV guess for group keys without statistics (PostgreSQL's 200).
DEFAULT_GROUP_NDV = 200.0
#: Weight of evaluation work (pairs probed / hashed) against output
#: cardinality when scoring candidate join pairs: output size dominates,
#: but a tiny-output nested loop over huge inputs must still lose to a
#: hash join producing slightly more rows.
WORK_WEIGHT = 0.05

_MIN_SEL = 1e-4

Scope = Optional[dict]  # (varno, varattno) -> ColumnStats | None


def _clamp_sel(value: float) -> float:
    return min(1.0, max(_MIN_SEL, value))


class CostModel:
    """Selectivity/cardinality estimation over ANALYZE statistics."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog

    # -- scope plumbing -----------------------------------------------------

    @staticmethod
    def _stats_for_var(expr: ex.Expr, scope: Scope) -> Optional[ColumnStats]:
        if (
            scope
            and isinstance(expr, ex.Var)
            and expr.levelsup == 0
        ):
            return scope.get((expr.varno, expr.varattno))
        return None

    # -- predicate selectivity ----------------------------------------------

    def conjunct_selectivity(self, conjunct: ex.Expr, scope: Scope) -> float:
        """Fraction of input rows the predicate keeps (clamped)."""
        return _clamp_sel(self._sel(conjunct, scope or {}))

    def _sel(self, e: ex.Expr, scope: dict) -> float:
        if isinstance(e, ex.Const):
            return 1.0 if e.value is True else _MIN_SEL
        if isinstance(e, ex.BoolOpExpr):
            if e.op == "and":
                sel = 1.0
                for arg in e.args:
                    sel *= self._sel(arg, scope)
                return sel
            if e.op == "or":
                keep_none = 1.0
                for arg in e.args:
                    keep_none *= 1.0 - _clamp_sel(self._sel(arg, scope))
                return 1.0 - keep_none
            return 1.0 - _clamp_sel(self._sel(e.args[0], scope))
        if isinstance(e, ex.NullTest):
            stats = self._stats_for_var(e.arg, scope)
            frac = stats.null_frac if stats is not None else DEFAULT_NULL_FRAC
            return (1.0 - frac) if e.negated else frac
        if isinstance(e, ex.LikeTest):
            if isinstance(e.pattern, ex.Const) and isinstance(e.pattern.value, str):
                anchored = not e.pattern.value.startswith("%")
                sel = DEFAULT_PREFIX_LIKE_SEL if anchored else DEFAULT_LIKE_SEL
            else:
                sel = DEFAULT_LIKE_SEL
            return (1.0 - sel) if e.negated else sel
        if isinstance(e, ex.InList):
            stats = self._stats_for_var(e.arg, scope)
            if stats is not None and stats.ndv > 0:
                sel = min(1.0, len(e.items) / stats.ndv)
            else:
                sel = min(1.0, DEFAULT_EQ_SEL * len(e.items))
            return (1.0 - sel) if e.negated else sel
        if isinstance(e, ex.OpExpr) and len(e.args) == 2:
            return self._op_sel(e, scope)
        if ex.contains_sublink(e):
            return DEFAULT_SEL
        return DEFAULT_SEL

    def _op_sel(self, e: ex.OpExpr, scope: dict) -> float:
        op = e.op
        left, right = e.args
        left_stats = self._stats_for_var(left, scope)
        right_stats = self._stats_for_var(right, scope)
        if op in ("=", "<=>"):
            if left_stats is not None and right_stats is not None:
                # Column-to-column equality within one relation set.
                return 1.0 / max(left_stats.ndv, right_stats.ndv, 1)
            stats, const = self._var_const(left, right, left_stats, right_stats)
            if stats is not None and stats.ndv > 0:
                return 1.0 / stats.ndv
            return DEFAULT_EQ_SEL
        if op in ("<>", "<!=>"):
            eq = self._op_sel(
                ex.OpExpr("=", e.args, e.type), scope
            )
            return 1.0 - _clamp_sel(eq)
        if op in ("<", "<=", ">", ">="):
            stats, const = self._var_const(left, right, left_stats, right_stats)
            if stats is None or const is None:
                return DEFAULT_RANGE_SEL
            # Orient the operator as ``column op constant``.
            if self._stats_for_var(left, scope) is None:
                op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]
            fraction = _range_fraction(const, stats.min_value, stats.max_value)
            if fraction is None:
                return DEFAULT_RANGE_SEL
            if op in ("<", "<="):
                return fraction
            return 1.0 - fraction
        return DEFAULT_SEL

    @staticmethod
    def _var_const(
        left: ex.Expr,
        right: ex.Expr,
        left_stats: Optional[ColumnStats],
        right_stats: Optional[ColumnStats],
    ) -> tuple[Optional[ColumnStats], Optional[Any]]:
        """(column stats, constant value) for a var-vs-const comparison."""
        if left_stats is not None and isinstance(right, ex.Const):
            return left_stats, right.value
        if right_stats is not None and isinstance(left, ex.Const):
            return right_stats, left.value
        return None, None

    # -- join estimation -----------------------------------------------------

    def _key_ndv(self, key: ex.Expr, unit) -> float:
        """Distinct-value estimate of a join key on one side."""
        rows = max(getattr(unit.plan, "estimate", 1.0), 1.0)
        stats = self._stats_for_var(key, unit.scope or {})
        if stats is not None and stats.ndv > 0:
            # Containment: a filtered side cannot carry more distinct
            # keys than rows.
            return max(1.0, min(float(stats.ndv), rows))
        return rows

    def join_estimate(
        self, left, right, conjuncts: list[ex.Expr], join_type: str
    ) -> float:
        """Estimated output rows of joining two placed units."""
        la = max(getattr(left.plan, "estimate", 1.0), 1.0)
        lb = max(getattr(right.plan, "estimate", 1.0), 1.0)
        live = [
            c
            for c in conjuncts
            if not (isinstance(c, ex.Const) and c.value is True)
        ]
        left_keys, right_keys, _ns, residual = extract_equi_keys(
            live, left.rtindexes, right.rtindexes
        )
        sel = 1.0
        for lk, rk in zip(left_keys, right_keys):
            sel *= 1.0 / max(self._key_ndv(lk, left), self._key_ndv(rk, right), 1.0)
        if residual:
            merged = {**(left.scope or {}), **(right.scope or {})}
            for c in residual:
                sel *= self.conjunct_selectivity(c, merged)
        inner = max(la * lb * sel, 1.0)
        if join_type == "left":
            return max(inner, la)
        if join_type == "right":
            return max(inner, lb)
        if join_type == "full":
            return max(inner, la + lb)
        return inner

    def pair_score(self, left, right, conjuncts: list[ex.Expr]) -> float:
        """Greedy-operator-ordering score of joining two units next.

        Primarily the estimated output cardinality; the work term adds
        the evaluation cost (hash: linear in the inputs, conditional
        nested loop: the full cross of pairs) so a cheap-output but
        quadratically-evaluated candidate does not always win.
        """
        la = max(getattr(left.plan, "estimate", 1.0), 1.0)
        lb = max(getattr(right.plan, "estimate", 1.0), 1.0)
        est = self.join_estimate(left, right, conjuncts, "inner")
        left_keys, _rk, _ns, _res = extract_equi_keys(
            conjuncts, left.rtindexes, right.rtindexes
        )
        if left_keys:
            work = la + lb
        elif conjuncts:
            work = la * lb
        else:
            work = est  # cross product: output built directly
        return est + WORK_WEIGHT * work

    # -- aggregation estimation ----------------------------------------------

    def group_estimate(
        self, group_clause: list[ex.Expr], scope: Scope, input_rows: float
    ) -> float:
        """Estimated group count of an aggregation."""
        if not group_clause:
            return 1.0
        input_rows = max(input_rows, 1.0)
        ndv = 1.0
        for key in group_clause:
            ndv *= self._group_key_ndv(key, scope or {}, input_rows)
            if ndv >= input_rows:
                return input_rows
        return max(1.0, min(ndv, input_rows))

    def _group_key_ndv(
        self, key: ex.Expr, scope: dict, input_rows: float
    ) -> float:
        stats = self._stats_for_var(key, scope)
        if stats is not None and stats.ndv > 0:
            return float(stats.ndv) + (1.0 if stats.null_frac > 0 else 0.0)
        if isinstance(key, ex.FuncExpr) and key.args:
            arg_stats = self._stats_for_var(key.args[0], scope)
            if key.name == "extract_year":
                span = _year_span(arg_stats)
                if span is not None:
                    return span
            elif key.name == "extract_month":
                return 12.0
            elif key.name == "extract_day":
                return 31.0
        return min(DEFAULT_GROUP_NDV, input_rows)


def _year_span(stats: Optional[ColumnStats]) -> Optional[float]:
    if (
        stats is not None
        and isinstance(stats.min_value, datetime.date)
        and isinstance(stats.max_value, datetime.date)
    ):
        return float(stats.max_value.year - stats.min_value.year + 1)
    return None


def _range_fraction(value: Any, lo: Any, hi: Any) -> Optional[float]:
    """Position of ``value`` within ``[lo, hi]`` as a fraction, or None
    when the types do not interpolate (strings, mixed types)."""
    if lo is None or hi is None or value is None:
        return None
    try:
        if isinstance(value, datetime.date) and isinstance(lo, datetime.date):
            span = (hi - lo).days
            offset = (value - lo).days
        elif isinstance(value, (int, float)) and isinstance(lo, (int, float)):
            span = hi - lo
            offset = value - lo
        else:
            return None
    except TypeError:
        return None
    if span <= 0:
        return 0.5
    return min(0.999, max(0.001, offset / span))
