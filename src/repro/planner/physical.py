"""Stage 3 of the planner pipeline: logical join graphs -> physical plans.

:class:`PlannerBase` owns all plan-*emission* machinery — compiling
expressions against slot layouts, building scans/joins/aggregates,
sublink and set-operation planning, shared-subplan materialization, the
aggregation-fusion shape — while delegating the plan-*choice* questions
to hooks:

* :meth:`PlannerBase._order_joins` — in which order the free inner-join
  set is joined;
* :meth:`PlannerBase._choose_sides` — which input builds the hash table;
* :meth:`PlannerBase._make_slice` — how far projections are pushed down;
* the ``_annotate_*`` hooks — the cardinality estimates written onto
  every emitted node (rendered as ``est=`` by ``EXPLAIN``).

:class:`CostBasedPlanner` (the default) answers them with the
statistics-driven cost model of :mod:`repro.planner.cost`: greedy
operator ordering by estimated output cardinality, build-side swapping,
late-materialization slice pushdown through hash joins, width-driven
column- vs row-backed join output, and batch sizes bounded by the
largest estimated intermediate.  The legacy heuristic answers live in
:mod:`repro.planner.heuristic` and stay reachable through
``PermDatabase(cost_based=False)``.

The plan output layout always equals the query's *full* target list
(including resjunk sort entries); junk columns are sliced away at the
very end.  Set-operation nodes plan each leaf subquery and fold the
set-operation tree into SetOpPlanNode instances.  Sublinks are planned
through a callback handed to the expression compiler; correlated
sublinks receive the stack of enclosing layouts so their free Vars
compile into reads of the executor's outer-row stack.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.catalog.catalog import Catalog
from repro.errors import PlanError
from repro.analyzer import expressions as ex
from repro.analyzer.query_tree import (
    Query,
    RangeTableEntry,
    RTEKind,
    SetOpRangeRef,
    SetOpTreeNode,
)
from repro.executor.expr_eval import ExprCompiler, VarMap
from repro.executor.nodes import (
    DistinctNode,
    FilterNode,
    HashAggregate,
    HashJoin,
    LimitNode,
    NestedLoopJoin,
    OneRow,
    PlanNode,
    ProjectNode,
    SetOpPlanNode,
    SliceNode,
    SortNode,
)
from repro.planner.logical import (
    LogicalFusedJoin,
    LogicalJoinGraph,
    LogicalOuterJoin,
    LogicalScan,
    LogicalSubquery,
    LogicalUnit,
    conjoin,
    conjunct_touches,
    decompose_from_where,
    extract_equi_keys,
)
from repro.storage.chunk import DEFAULT_BATCH_SIZE

# Synthetic varno for post-aggregation slots (group keys + agg results).
_POST_AGG_VARNO = -1


def _slot_reader(slot: int):
    """A compiled expression that reads one input slot."""
    return lambda row, ctx: row[slot]


def _slot_column(slot: int):
    """The batch-mode twin of :func:`_slot_reader`: one chunk column."""
    return lambda chunk, ctx: chunk.column(slot)


def _conjoin_predicates(first, second):
    """Combine two compiled predicates into one three-valued AND.

    Filter semantics only keep rows where the predicate is exactly True,
    so short-circuiting on ``is not True`` preserves NULL handling.
    """

    def combined(row, ctx):
        verdict = first(row, ctx)
        if verdict is not True:
            return verdict
        return second(row, ctx)

    return combined


class _Unit:
    """A placed or placeable join operand: subplan + var layout.

    ``from_subquery`` marks units derived from subquery RTEs (directly or
    inside an outer-join subtree); the heuristic join order attaches them
    last.  ``scope`` (cost-based planning only) maps ``(varno, varattno)``
    to the :class:`~repro.planner.stats.ColumnStats` of the base column a
    slot carries, threaded through joins and subquery target lists so the
    cost model can see NDVs and value ranges across operator boundaries.
    """

    __slots__ = (
        "plan",
        "varmap",
        "rtindexes",
        "from_subquery",
        "scope",
        "range_bounds",
    )

    def __init__(
        self,
        plan: PlanNode,
        varmap: VarMap,
        rtindexes: set[int],
        from_subquery: bool = False,
        scope: Optional[dict] = None,
    ) -> None:
        self.plan = plan
        self.varmap = varmap
        self.rtindexes = rtindexes
        self.from_subquery = from_subquery
        self.scope = scope
        # Tightest stats-backed range-bound selectivities pushed so far,
        # per column: (varno, attno) -> {'lo': s, 'hi': s, 'applied': s}.
        # The cost-based planner pairs opposite bounds on one column so
        # their interval mass replaces the independence product.
        self.range_bounds: Optional[dict] = None


class _EstUnit:
    """Cost-model stand-in for a joined operand subset during DP join
    ordering: quacks like a placed :class:`_Unit` (``plan.estimate``,
    ``rtindexes``, ``scope``) without emitting any plan nodes, so subset
    enumeration stays estimation-only."""

    __slots__ = ("plan", "rtindexes", "scope")

    class _Estimate:
        __slots__ = ("estimate",)

    def __init__(
        self, estimate: float, rtindexes: set[int], scope: Optional[dict]
    ) -> None:
        self.plan = _EstUnit._Estimate()
        self.plan.estimate = float(max(estimate, 1.0))
        self.rtindexes = rtindexes
        self.scope = scope


class _SharedSubplans:
    """Statement-scoped registry for common-subplan deduplication.

    The provenance rewrite duplicates whole subqueries (the original
    sublink and its rewritten copy, q_agg's inputs inside d, TPC-H Q15's
    twice-inlined revenue view).  Structurally identical, uncorrelated
    subqueries plan once and share a materialized result — the spool/CTE
    sharing a cost-based DBMS applies to common subexpressions.

    The registry doubles as the statement-wide accumulator for the
    cost model's intermediate-cardinality bounds (``max_scan_rows`` /
    ``max_intermediate_rows``), since exactly one instance spans all
    planner recursions of a statement.
    """

    __slots__ = ("entries", "max_scan_rows", "max_intermediate_rows")

    def __init__(self) -> None:
        # (cheap signature, query tree, shared materialized plan)
        self.entries: list[tuple[tuple, Query, PlanNode]] = []
        self.max_scan_rows = 0.0
        self.max_intermediate_rows = 0.0

    @staticmethod
    def signature(query: Query) -> tuple:
        return (
            query.node_class().value,
            len(query.target_list),
            len(query.range_table),
            tuple(query.output_columns()),
        )

    def lookup(self, query: Query) -> Optional[PlanNode]:
        from repro.optimizer.treeutils import queries_structurally_equal

        signature = self.signature(query)
        for entry_signature, entry_query, node in self.entries:
            if entry_signature != signature:
                continue
            if entry_query is query or queries_structurally_equal(
                query, entry_query
            ):
                return node
        return None

    def remember(self, query: Query, plan: PlanNode) -> PlanNode:
        from repro.executor.nodes import MaterializeNode

        node = MaterializeNode(plan)
        node.estimate = plan.estimate
        self.entries.append((self.signature(query), query, node))
        return node


def _expr_parallel_safe(expr: ex.Expr) -> bool:
    """Whether an expression may evaluate inside a morsel worker.

    Sublinks are excluded because their subplans execute against
    per-execution caches and (when correlated) the outer-row stack;
    outer Vars (``levelsup > 0``) are excluded for the same reason —
    both read context state an exchange worker does not carry.
    """
    return not any(
        isinstance(node, ex.SubLink)
        or (isinstance(node, ex.Var) and node.levelsup > 0)
        for node in ex.walk(expr)
    )


class PlannerBase:
    """Shared plan-emission machinery; subclasses answer the choices."""

    #: Morsel-parallel fan-out for the exchange-insertion post-pass
    #: (:mod:`repro.parallel.planning`); 1 disables it.  Set by
    #: :func:`repro.planner.make_planner` on root planners only — child
    #: planners (sublinks, set-op arms) keep the default, the root's
    #: post-pass walks the whole reachable tree anyway.
    parallel_workers: int = 1
    #: Morsel size override for inserted exchanges (None = default).
    morsel_size: Optional[int] = None
    #: Worker-pool strategy inserted exchanges dispatch on
    #: (``thread`` / ``process`` / ``serial``).
    parallel_executor: str = "thread"
    #: Pipeline-fusion post-pass toggle (vectorized plans only): when
    #: set, scan→filter→project chains collapse into one generated
    #: kernel (:mod:`repro.executor.fusion`).  ``connect`` threads the
    #: user's ``fuse_pipelines`` flag here through ``make_planner``.
    fuse_pipelines: bool = True

    def __init__(
        self,
        catalog: Catalog,
        outer_varmaps: Optional[list[VarMap]] = None,
        shared: Optional[_SharedSubplans] = None,
        vectorize: bool = False,
    ) -> None:
        self.catalog = catalog
        self.outer_varmaps = list(outer_varmaps or [])
        # Root planners (fresh shared-subplan registry) own statement-
        # level post-passes such as exchange insertion; spawned child
        # planners inherit the registry and skip them.
        self._root = shared is None
        self.shared = shared if shared is not None else _SharedSubplans()
        # When set, every expression is additionally compiled to a batch
        # kernel and attached to the plan nodes, enabling the vectorized
        # ``run_batches`` protocol on the whole tree.  Subtrees whose
        # expressions resist vectorization degrade per-expression (the
        # kernel falls back to the row closure internally) or per-node
        # (conditional nested loops bridge to the row protocol).
        self.vectorize = vectorize
        # Output column statistics of the most recently planned query
        # (parallel to its visible+junk target list); consumed by parent
        # planners to thread stats through subquery boundaries.
        self.output_stats: Optional[list] = None

    def _spawn(self, outer_varmaps: Optional[list[VarMap]] = None) -> "PlannerBase":
        """A child planner of the same concrete class."""
        child = type(self)(
            self.catalog, outer_varmaps, self.shared, vectorize=self.vectorize
        )
        child.fuse_pipelines = self.fuse_pipelines
        return child

    # -- decision hooks (answered by subclasses) ------------------------------

    def _order_joins(self, units: list[_Unit], pool: list[ex.Expr]) -> _Unit:
        """Join the free inner-join set; consumes the conjunct pool."""
        raise NotImplementedError

    def _choose_sides(
        self, left: _Unit, right: _Unit, join_type: str, conjuncts: list[ex.Expr]
    ) -> tuple[_Unit, _Unit]:
        """Probe/build side assignment (the build side is the right)."""
        return left, right

    def _annotate_scan(self, unit: _Unit, rte: RangeTableEntry) -> None:
        """Estimate/statistics bookkeeping for a fresh scan unit."""

    def _annotate_join(
        self,
        unit: _Unit,
        left: _Unit,
        right: _Unit,
        join_type: str,
        conjuncts: list[ex.Expr],
    ) -> None:
        """Estimate/statistics bookkeeping for a fresh join unit."""

    def _annotate_aggregate(
        self, node: PlanNode, query: Query, joined: _Unit
    ) -> None:
        """Estimate bookkeeping for a fresh aggregation node."""

    def _finalize_plan(self, plan: PlanNode) -> PlanNode:
        """Last look at a finished (sub)plan root."""
        return plan

    # -- public API -----------------------------------------------------------

    def plan(self, query: Query, joined: Optional["_Unit"] = None) -> PlanNode:
        """Plan a query; output columns = visible target entries.

        ``joined`` (internal, aggregation-join fusion) substitutes an
        already-planned FROM/WHERE unit: the query's own join tree and
        quals are skipped and its aggregation/projection/sort pipeline is
        planned on top of the given subplan.
        """
        plan = self._plan_query(query, joined)
        if self.vectorize and self.fuse_pipelines:
            from repro.executor.fusion import fuse_pipelines

            plan = fuse_pipelines(plan)
        return plan

    def _plan_query(
        self, query: Query, joined: Optional["_Unit"] = None
    ) -> PlanNode:
        if query.set_operations is not None:
            self.output_stats = None
            plan = self._plan_setop_query(query)
            plan = self._apply_sort(query, plan)
            plan = self._apply_limit(query, plan)
            return self._finalize_plan(self._slice_junk(query, plan))
        # SELECT DISTINCT with ORDER BY expressions outside the select
        # list: sort the junk-extended projection first, slice the junk,
        # then deduplicate — DistinctNode keeps first occurrences, so the
        # output is ordered by each distinct row's first sort position.
        defer_distinct = query.distinct and any(
            t.resjunk for t in query.target_list
        )
        plan = self._plan_plain_query(
            query, skip_distinct=defer_distinct, joined=joined
        )
        if defer_distinct:
            plan = self._apply_sort(query, plan)
            plan = self._slice_junk(query, plan)
            plan = DistinctNode(plan)
            return self._finalize_plan(self._apply_limit(query, plan))
        plan = self._apply_sort(query, plan)
        plan = self._apply_limit(query, plan)
        return self._finalize_plan(self._slice_junk(query, plan))

    # -- helpers shared with the expression compiler ----------------------------

    def _plan_sublink(self, query: Query, outer_varmaps: list[VarMap]) -> PlanNode:
        if query.share_candidate:
            return self._plan_shared_subquery(query)
        return self._spawn(outer_varmaps).plan(query)

    def _sub_planner(self) -> "PlannerBase":
        """A child planner for closed subqueries (no enclosing layouts)."""
        return self._spawn()

    def _plan_shared_subquery(self, query: Query) -> PlanNode:
        """Plan a closed subquery; optimizer-marked duplicates share one
        materialized plan (``share_candidate`` implies the query is
        closed and occurs structurally repeated in the statement)."""
        if not query.share_candidate:
            child = self._sub_planner()
            plan = child.plan(query)
            plan.output_stats = child.output_stats  # type: ignore[attr-defined]
            return plan
        cached = self.shared.lookup(query)
        if cached is not None:
            return cached
        child = self._sub_planner()
        plan = child.plan(query)
        node = self.shared.remember(query, plan)
        node.output_stats = child.output_stats  # type: ignore[attr-defined]
        return node

    def _compiler(self, varmap: VarMap) -> ExprCompiler:
        return ExprCompiler(varmap, self.outer_varmaps, plan_subquery=self._plan_sublink)

    # -- batch-kernel compilation helpers --------------------------------------

    def _batch_compile(self, compiler: ExprCompiler, expr: ex.Expr):
        """The expression's batch kernel, or None when not vectorizing."""
        return compiler.compile_batch(expr) if self.vectorize else None

    def _batch_compile_all(
        self, compiler: ExprCompiler, exprs: list[ex.Expr]
    ) -> Optional[list]:
        if not self.vectorize:
            return None
        return [compiler.compile_batch(e) for e in exprs]

    def _batch_target_exprs(
        self,
        compiler: ExprCompiler,
        exprs: list[ex.Expr],
        slots: list[Optional[int]],
    ) -> Optional[list]:
        """Projection kernels; slot-covered positions pass through as None."""
        if not self.vectorize:
            return None
        return [
            None if slot is not None else compiler.compile_batch(expr)
            for expr, slot in zip(exprs, slots)
        ]

    def _filter_node(
        self, plan: PlanNode, compiler: ExprCompiler, conjunct: ex.Expr
    ) -> FilterNode:
        """A FilterNode with both row and (when vectorizing) batch forms."""
        batch = self._batch_compile(compiler, conjunct)
        node = FilterNode(
            plan,
            compiler.compile(conjunct),
            [batch] if batch is not None else None,
        )
        if batch is not None:
            node.fusion = (compiler.varmap, [conjunct])
        if not _expr_parallel_safe(conjunct):
            node.parallel_safe = False
        return node

    def _push_conjunct(self, unit: "_Unit", conjunct: ex.Expr) -> None:
        """Compile a conjunct against a unit's layout and push it down."""
        compiler = self._compiler(unit.varmap)
        batch = self._batch_compile(compiler, conjunct)
        self._push_filter(unit, compiler.compile(conjunct), batch)
        self._note_fusion_conjunct(unit.plan, unit.varmap, conjunct, batch)
        if not _expr_parallel_safe(conjunct):
            # The push either merged into unit.plan (scan/filter) or
            # wrapped it in a fresh FilterNode; either way the node now
            # carrying this conjunct must not run inside a morsel worker.
            unit.plan.parallel_safe = False

    @staticmethod
    def _note_fusion_conjunct(
        plan: PlanNode, varmap: VarMap, conjunct: ex.Expr, batch
    ) -> None:
        """Record a pushed conjunct's analyzed form on the node now
        carrying it, in parallel with its batch kernel — the fusion
        pass re-emits it as inline source.  A conjunct without a batch
        form poisons the metadata exactly as it poisons batch mode."""
        from repro.executor.nodes import SeqScan

        if not isinstance(plan, (SeqScan, FilterNode)):
            return
        if batch is None or plan.batch_predicates is None:
            plan.fusion = None
            return
        if plan.fusion is None:
            plan.fusion = (varmap, [conjunct])
        else:
            plan.fusion[1].append(conjunct)

    # -- RTE plans ------------------------------------------------------------------

    def _plan_rte(self, rtindex: int, rte: RangeTableEntry) -> _Unit:
        if rte.kind is RTEKind.RELATION:
            table = self.catalog.table(rte.relation_name)
            from repro.executor.nodes import SeqScan

            if rte.used_attnos is not None and len(rte.used_attnos) < rte.width():
                # Optimizer projection-pruning hint: emit only the columns
                # this query references, so joins concatenate short tuples.
                keep = sorted(rte.used_attnos)
                plan: PlanNode = SeqScan(
                    table, [rte.column_names[i] for i in keep], columns=keep
                )
                varmap = {
                    (rtindex, attno): slot for slot, attno in enumerate(keep)
                }
                unit = _Unit(plan, varmap, {rtindex})
                self._annotate_scan(unit, rte)
                return unit
            plan = SeqScan(table, list(rte.column_names))
        else:
            # FROM subqueries are uncorrelated (no LATERAL), so they plan
            # with an empty enclosing-layout stack — and being closed,
            # structurally identical ones share one materialized plan.
            plan = self._plan_shared_subquery(rte.subquery)
        varmap = {(rtindex, attno): attno for attno in range(rte.width())}
        unit = _Unit(
            plan, varmap, {rtindex}, from_subquery=rte.kind is RTEKind.SUBQUERY
        )
        self._annotate_scan(unit, rte)
        return unit

    # -- plain (A)SPJ queries -----------------------------------------------------------

    def _plan_plain_query(
        self,
        query: Query,
        skip_distinct: bool = False,
        joined: Optional[_Unit] = None,
    ) -> PlanNode:
        if joined is None:
            joined = self._plan_from_where(query)
        if query.has_aggs or query.group_clause:
            plan, varmap, target_exprs = self._plan_aggregation(query, joined)
            scope: dict = {}
        else:
            plan, varmap = joined.plan, joined.varmap
            target_exprs = [t.expr for t in query.target_list]
            scope = joined.scope or {}
        self.output_stats = [
            scope.get((t.varno, t.varattno))
            if isinstance(t, ex.Var) and t.levelsup == 0
            else None
            for t in target_exprs
        ]
        # Project the full target list (visible + junk).  A target list of
        # plain column references — the dominant shape in provenance
        # rewrites — becomes a SliceNode (C-level row rearrangement)
        # instead of per-expression closure calls.
        names = [t.name for t in query.target_list]
        slots = self._var_only_slots(target_exprs, varmap)
        if slots is not None:
            plan = self._make_slice(plan, slots, names)
        else:
            compiler = self._compiler(varmap)
            exprs = [compiler.compile(e) for e in target_exprs]
            slot_hints = self._slot_hints(target_exprs, varmap)
            plan = ProjectNode(
                plan, exprs, names,
                slots=slot_hints,
                batch_exprs=self._batch_target_exprs(
                    compiler, target_exprs, slot_hints
                ),
            )
            if self.vectorize:
                plan.fusion = (varmap, list(target_exprs))
            if not all(_expr_parallel_safe(e) for e in target_exprs):
                plan.parallel_safe = False
        if query.distinct and not skip_distinct:
            plan = DistinctNode(plan)
        return plan

    @staticmethod
    def _var_only_slots(
        target_exprs: list[ex.Expr], varmap: VarMap
    ) -> Optional[list[int]]:
        """Input slots when every target is a local Var; None otherwise."""
        slots: list[int] = []
        for expr in target_exprs:
            if not isinstance(expr, ex.Var) or expr.levelsup != 0:
                return None
            slot = varmap.get((expr.varno, expr.varattno))
            if slot is None:
                return None
            slots.append(slot)
        return slots

    @staticmethod
    def _slot_hints(
        target_exprs: list[ex.Expr], varmap: VarMap
    ) -> list[Optional[int]]:
        """Per-position input slots for plain-Var targets (mixed lists)."""
        return [
            varmap.get((expr.varno, expr.varattno))
            if isinstance(expr, ex.Var) and expr.levelsup == 0
            else None
            for expr in target_exprs
        ]

    # -- FROM/WHERE: logical graph -> joined unit ---------------------------------

    def _plan_from_where(self, query: Query) -> _Unit:
        graph = decompose_from_where(query)
        if not graph.units:
            base: PlanNode = OneRow()
            unit = _Unit(base, {}, set())
            for conjunct in graph.late:
                unit = _Unit(
                    self._filter_node(unit.plan, self._compiler({}), conjunct),
                    {},
                    set(),
                )
            return unit
        return self._plan_graph(graph, query)

    def _plan_graph(self, graph: LogicalJoinGraph, query: Query) -> _Unit:
        units = [self._plan_logical_unit(u, query) for u in graph.units]
        if len(units) == 1 and not graph.pool and not graph.late:
            return units[0]
        joined = self._order_joins(units, list(graph.pool))
        for conjunct in graph.late:
            joined.plan = self._filter_node(
                joined.plan, self._compiler(joined.varmap), conjunct
            )
        return joined

    def _plan_logical_unit(self, lunit: LogicalUnit, query: Query) -> _Unit:
        if isinstance(lunit, (LogicalScan, LogicalSubquery)):
            unit = self._plan_rte(lunit.rtindex, lunit.rte)
        elif isinstance(lunit, LogicalFusedJoin):
            unit = self._plan_fused_unit(query, lunit.pair)
        elif isinstance(lunit, LogicalOuterJoin):
            unit = self._plan_outer_unit(lunit, query)
        else:  # pragma: no cover - exhaustive
            raise PlanError(f"unknown logical unit {lunit!r}")
        for conjunct in lunit.conjuncts:
            self._push_conjunct(unit, conjunct)
        return unit

    def _plan_outer_unit(self, louter: LogicalOuterJoin, query: Query) -> _Unit:
        left = self._plan_graph(louter.left, query)
        right = self._plan_graph(louter.right, query)
        for conjunct in louter.left_top:
            self._push_conjunct(left, conjunct)
        for conjunct in louter.right_top:
            self._push_conjunct(right, conjunct)
        return self._join_units(
            left,
            right,
            louter.join_type,
            list(louter.conditions),
            from_subquery=left.from_subquery or right.from_subquery,
        )

    @staticmethod
    def _push_filter(unit: _Unit, predicate, batch_predicate=None) -> None:
        """Attach a single-unit filter, merging into an existing scan
        predicate or filter node — conjuncts arrive one at a time and a
        stack of generator frames costs more than one combined check.

        Batch kernels accumulate as a list (applied in order over
        selection vectors); a conjunct without a batch form poisons the
        node's batch predicate so execution falls back to the row bridge
        rather than silently dropping the conjunct.
        """
        from repro.executor.nodes import SeqScan

        plan = unit.plan
        if isinstance(plan, SeqScan):
            had_predicate = plan.predicate is not None
            if not had_predicate:
                plan.predicate = predicate
            else:
                plan.predicate = _conjoin_predicates(plan.predicate, predicate)
            if batch_predicate is None:
                plan.batch_predicates = None
            elif had_predicate and plan.batch_predicates is None:
                pass  # earlier row-only conjunct already poisoned batch mode
            else:
                if plan.batch_predicates is None:
                    plan.batch_predicates = []
                plan.batch_predicates.append(batch_predicate)
            plan.estimate = max(plan.estimate * 0.25, 1.0)
            return
        if isinstance(plan, FilterNode):
            plan.predicate = _conjoin_predicates(plan.predicate, predicate)
            if batch_predicate is None or plan.batch_predicates is None:
                plan.batch_predicates = None
            else:
                plan.batch_predicates.append(batch_predicate)
            plan.estimate = max(plan.estimate * 0.25, 1.0)
            return
        unit.plan = FilterNode(
            plan,
            predicate,
            [batch_predicate] if batch_predicate is not None else None,
        )

    # -- aggregation-join fusion (Query.agg_share) -----------------------------

    def _plan_fused_unit(
        self, query: Query, pair: tuple[int, int, tuple[int, ...]]
    ) -> _Unit:
        """Plan the ``q_agg ⋈ d+`` pair over one shared, materialized core.

        The optimizer verified that both subqueries' FROM/WHERE produce
        the same bag of rows and that their range tables are numbered
        isomorphically (the provenance side only appends output columns),
        so the aggregate side's expressions compile directly against the
        core's variable layout.  The core runs once: the aggregation
        consumes the materialization, then the provenance projection
        re-reads it while hash-joining the aggregate rows back on the
        (null-safe) group keys.
        """
        from repro.executor.nodes import MaterializeNode

        agg_index, prov_index, positions = pair
        agg = query.range_table[agg_index].subquery
        prov = query.range_table[prov_index].subquery
        assert agg is not None and prov is not None

        inner = self._sub_planner()
        core = inner._plan_from_where(prov)
        mat = MaterializeNode(core.plan)
        mat.estimate = core.plan.estimate

        # Provenance-side projection over the core.  When every output is
        # a plain column reference (the rewriter's usual shape) no
        # projection runs at all — the parent's Vars map straight onto
        # core slots and the join emits raw core rows.
        names = [t.name for t in prov.target_list]
        target_exprs = [t.expr for t in prov.target_list]
        slots = self._var_only_slots(target_exprs, core.varmap)
        if slots is not None:
            left: PlanNode = mat
            b_slots = slots
        else:
            compiler = inner._compiler(core.varmap)
            slot_hints = self._slot_hints(target_exprs, core.varmap)
            left = ProjectNode(
                mat,
                [compiler.compile(e) for e in target_exprs],
                names,
                slots=slot_hints,
                batch_exprs=self._batch_target_exprs(
                    compiler, target_exprs, slot_hints
                ),
            )
            b_slots = list(range(len(target_exprs)))

        # Aggregate-side pipeline (agg + having + targets + sort/limit)
        # over the same materialization.  A structurally shared twin
        # elsewhere in the statement (Q13's inner aggregate, a HAVING
        # sublink's body) reuses one plan through the subplan registry.
        agg_plan: Optional[PlanNode] = None
        if agg.share_candidate:
            agg_plan = self.shared.lookup(agg)
        if agg_plan is None:
            agg_plan = self._sub_planner().plan(
                agg,
                joined=_Unit(
                    mat, dict(core.varmap), set(core.rtindexes), scope=core.scope
                ),
            )
            if agg.share_candidate:
                agg_plan = self.shared.remember(agg, agg_plan)

        if positions:
            left_keys = [_slot_reader(b_slots[i]) for i in range(len(positions))]
            right_keys = [_slot_reader(p) for p in positions]
            join: PlanNode = HashJoin(
                left,
                agg_plan,
                "inner",
                left_keys,
                right_keys,
                None,
                [True] * len(positions),
                batch_left_keys=(
                    [_slot_column(b_slots[i]) for i in range(len(positions))]
                    if self.vectorize
                    else None
                ),
                batch_right_keys=(
                    [_slot_column(p) for p in positions]
                    if self.vectorize
                    else None
                ),
            )
            join.left_key_slots = [b_slots[i] for i in range(len(positions))]
            join.right_key_slots = list(positions)
            join.estimate = max(left.estimate, 1.0)
        else:
            # Grand aggregate: a single aggregate row attaches to every
            # core row (and none when the core is empty — footnote 4).
            join = NestedLoopJoin(left, agg_plan, "inner", None)
            join.estimate = max(left.estimate, 1.0)

        b_width = left.width()
        varmap: VarMap = {
            (prov_index, p): b_slots[p] for p in range(len(target_exprs))
        }
        for slot in range(agg_plan.width()):
            varmap[(agg_index, slot)] = b_width + slot
        scope = None
        if core.scope:
            scope = {
                (prov_index, p): core.scope.get((t.varno, t.varattno))
                for p, t in enumerate(target_exprs)
                if isinstance(t, ex.Var) and t.levelsup == 0
            }
        return _Unit(
            join,
            varmap,
            {agg_index, prov_index},
            from_subquery=True,
            scope=scope,
        )

    # -- join construction --------------------------------------------------------

    def _join_units(
        self,
        left: _Unit,
        right: _Unit,
        join_type: str,
        conjuncts: list[ex.Expr],
        from_subquery: bool = False,
    ) -> _Unit:
        """Join two placed units; the single site every join flows through."""
        left, right = self._choose_sides(left, right, join_type, conjuncts)
        merged_map = dict(left.varmap)
        offset = left.plan.width()
        for key, slot in right.varmap.items():
            merged_map[key] = slot + offset
        plan = self._make_join(left, right, merged_map, join_type, conjuncts)
        unit = _Unit(
            plan,
            merged_map,
            left.rtindexes | right.rtindexes,
            from_subquery=from_subquery,
        )
        self._annotate_join(unit, left, right, join_type, conjuncts)
        return unit

    def _make_join(
        self,
        left: _Unit,
        right: _Unit,
        merged_map: VarMap,
        join_type: str,
        conjuncts: list[ex.Expr],
    ) -> PlanNode:
        # ``ON TRUE`` (the rewriter's unconditional join marker) adds
        # nothing: dropping it turns the join into the condition-free
        # nested loop, which has the cheap vectorized cross-product path.
        conjuncts = [
            c
            for c in conjuncts
            if not (isinstance(c, ex.Const) and c.value is True)
        ]
        left_keys, right_keys, null_safe, residual = extract_equi_keys(
            conjuncts, left.rtindexes, right.rtindexes
        )
        compiler = self._compiler(merged_map)
        if left_keys:
            left_compiler = self._compiler(left.varmap)
            right_compiler = self._compiler(right.varmap)
            residual_fn = (
                compiler.compile(conjoin(residual)) if residual else None
            )
            join = HashJoin(
                left.plan,
                right.plan,
                join_type,
                [left_compiler.compile(k) for k in left_keys],
                [right_compiler.compile(k) for k in right_keys],
                residual_fn,
                null_safe,
                batch_left_keys=self._batch_compile_all(left_compiler, left_keys),
                batch_right_keys=self._batch_compile_all(
                    right_compiler, right_keys
                ),
                # Outer-join residuals ride the two-phase filter-then-
                # reconcile kernel only in the fused configuration, so
                # ``fuse_pipelines=False`` reproduces the pre-fusion
                # executor (per-pair residual closures) for differential
                # testing and benchmarking.
                batch_residual=(
                    self._batch_compile(compiler, conjoin(residual))
                    if residual
                    and (join_type == "inner" or self.fuse_pipelines)
                    else None
                ),
            )
            join.left_key_slots = self._var_key_slots(left_keys, left.varmap)
            join.right_key_slots = self._var_key_slots(right_keys, right.varmap)
            return join
        condition_fn = compiler.compile(conjoin(conjuncts)) if conjuncts else None
        return NestedLoopJoin(
            left.plan,
            right.plan,
            join_type,
            condition_fn,
            batch_condition=(
                self._batch_compile(compiler, conjoin(conjuncts))
                if conjuncts
                else None
            ),
        )

    @staticmethod
    def _var_key_slots(
        keys: list[ex.Expr], varmap: VarMap
    ) -> Optional[list[int]]:
        """Input slots when every hash key is a plain Var; None otherwise.

        The metadata late-materialization slice pushdown needs to remap
        keys onto narrowed join inputs.
        """
        slots: list[int] = []
        for key in keys:
            if not isinstance(key, ex.Var) or key.levelsup != 0:
                return None
            slot = varmap.get((key.varno, key.varattno))
            if slot is None:
                return None
            slots.append(slot)
        return slots

    # -- aggregation ---------------------------------------------------------------------

    def _plan_aggregation(
        self, query: Query, joined: _Unit
    ) -> tuple[PlanNode, VarMap, list[ex.Expr]]:
        from repro.executor.aggregates import make_aggregate_factory

        aggrefs: list[ex.Aggref] = []

        def collect(expr: ex.Expr) -> None:
            for node in ex.walk(expr):
                if isinstance(node, ex.Aggref) and node not in aggrefs:
                    aggrefs.append(node)

        for target in query.target_list:
            collect(target.expr)
        if query.having is not None:
            collect(query.having)

        input_compiler = self._compiler(joined.varmap)
        group_fns = [input_compiler.compile(g) for g in query.group_clause]
        agg_factories = []
        agg_args: list[Optional[Callable]] = []
        # Distinct argument expressions are compiled (and evaluated) once;
        # sum(x) and avg(x) share one evaluation of x per input row.
        arg_slots: list[Optional[int]] = []
        unique_arg_exprs: list[ex.Expr] = []
        unique_arg_fns: list[Callable] = []
        for aggref in aggrefs:
            agg_factories.append(
                make_aggregate_factory(aggref.aggname, aggref.star, aggref.distinct)
            )
            if aggref.arg is None:
                agg_args.append(None)
                arg_slots.append(None)
                continue
            try:
                slot = unique_arg_exprs.index(aggref.arg)
            except ValueError:
                slot = len(unique_arg_exprs)
                unique_arg_exprs.append(aggref.arg)
                unique_arg_fns.append(input_compiler.compile(aggref.arg))
            agg_args.append(unique_arg_fns[slot])
            arg_slots.append(slot)
        group_count = len(query.group_clause)
        output_names = [f"g{i}" for i in range(group_count)] + [
            f"agg{i}" for i in range(len(aggrefs))
        ]
        agg_plan: PlanNode = HashAggregate(
            joined.plan,
            group_fns,
            agg_factories,
            agg_args,
            output_names,
            arg_slots=arg_slots,
            unique_args=unique_arg_fns,
            batch_group_exprs=self._batch_compile_all(
                input_compiler, list(query.group_clause)
            ),
            batch_unique_args=self._batch_compile_all(
                input_compiler, unique_arg_exprs
            ),
        )
        if not all(
            _expr_parallel_safe(e)
            for e in [*query.group_clause, *unique_arg_exprs]
        ):
            agg_plan.parallel_safe = False
        self._annotate_aggregate(agg_plan, query, joined)
        post_varmap: VarMap = {
            (_POST_AGG_VARNO, slot): slot for slot in range(group_count + len(aggrefs))
        }

        # Rewrite post-aggregation expressions: whole-group-expr matches and
        # Aggrefs become Vars over the aggregate output.
        group_slots = list(enumerate(query.group_clause))

        def replace(expr: ex.Expr) -> ex.Expr:
            for slot, group_expr in group_slots:
                if expr == group_expr:
                    return ex.Var(
                        varno=_POST_AGG_VARNO,
                        varattno=slot,
                        type=expr.type,
                        name=f"g{slot}",
                    )
            if isinstance(expr, ex.Aggref):
                slot = group_count + aggrefs.index(expr)
                return ex.Var(
                    varno=_POST_AGG_VARNO, varattno=slot, type=expr.type, name=f"agg{slot}"
                )
            children = expr.children()
            if not children:
                return expr
            from repro.analyzer.expressions import rebuild_with_children

            return rebuild_with_children(expr, [replace(c) for c in children])

        target_exprs = [replace(t.expr) for t in query.target_list]
        if query.having is not None:
            agg_plan = self._filter_node(
                agg_plan, self._compiler(post_varmap), replace(query.having)
            )
        return agg_plan, post_varmap, target_exprs

    # -- set operations ---------------------------------------------------------------------

    def _plan_setop_query(self, query: Query) -> PlanNode:
        plan = self._plan_setop_tree(query.set_operations, query)
        plan = self._rename_output(plan, [t.name for t in query.target_list])
        return plan

    def _plan_setop_tree(self, node: SetOpTreeNode, query: Query) -> PlanNode:
        if isinstance(node, SetOpRangeRef):
            rte = query.range_table[node.rtindex]
            # Leaf subqueries are analyzed against the same outer scopes as
            # the set-operation node (no extra level), so the enclosing
            # layouts pass through unchanged — a correlated sublink whose
            # body is a set operation reads the same outer-row stack.
            return self._spawn(self.outer_varmaps).plan(rte.subquery)
        left = self._plan_setop_tree(node.left, query)
        right = self._plan_setop_tree(node.right, query)
        return SetOpPlanNode(node.op, node.all, left, right)

    @staticmethod
    def _rename_output(plan: PlanNode, names: list[str]) -> PlanNode:
        plan.output_names = list(names)
        return plan

    # -- sort / limit / junk removal -------------------------------------------------------------

    def _apply_sort(self, query: Query, plan: PlanNode) -> PlanNode:
        if query.sort_clause:
            specs = [
                (clause.tlist_index, clause.descending, clause.nulls_first)
                for clause in query.sort_clause
            ]
            plan = SortNode(plan, specs)
        return plan

    def _apply_limit(self, query: Query, plan: PlanNode) -> PlanNode:
        if query.limit_count is not None or query.limit_offset is not None:
            count = self._const_int(query.limit_count)
            offset = self._const_int(query.limit_offset) or 0
            plan = LimitNode(plan, count, offset)
        return plan

    @staticmethod
    def _const_int(expr: Optional[ex.Expr]) -> Optional[int]:
        if expr is None:
            return None
        if not isinstance(expr, ex.Const):
            raise PlanError("LIMIT/OFFSET must be constants")
        return int(expr.value)

    def _slice_junk(self, query: Query, plan: PlanNode) -> PlanNode:
        if not any(t.resjunk for t in query.target_list):
            return plan
        keep = [i for i, t in enumerate(query.target_list) if not t.resjunk]
        names = [query.target_list[i].name for i in keep]
        return self._make_slice(plan, keep, names)

    def _make_slice(
        self, plan: PlanNode, keep: list[int], names: list[str]
    ) -> PlanNode:
        """A SliceNode, pushed through unconditional nested loops.

        Slicing commutes with a condition-free cross product (the output
        is left columns followed by right columns) as long as the
        requested order keeps the sides contiguous, so the rearrangement
        runs on the operands — typically orders of magnitude fewer rows
        than the product.  :class:`CostBasedPlanner` extends this with
        late-materialization pushdown through hash joins.
        """
        left_width = plan.left.width() if isinstance(plan, NestedLoopJoin) else 0
        if (
            isinstance(plan, NestedLoopJoin)
            and plan.condition is None
            # Every left-side slot must precede every right-side slot.
            and all(
                not (a >= left_width and b < left_width)
                for a, b in zip(keep, keep[1:])
            )
        ):
            keep_left = [i for i in keep if i < left_width]
            keep_right = [i - left_width for i in keep if i >= left_width]
            left = plan.left
            right = plan.right
            if keep_left != list(range(left_width)):
                left = self._make_slice(
                    left, keep_left, [plan.left.output_names[i] for i in keep_left]
                )
            if keep_right != list(range(plan.right.width())):
                right = self._make_slice(
                    right,
                    keep_right,
                    [plan.right.output_names[i] for i in keep_right],
                )
            pushed = NestedLoopJoin(left, right, plan.join_type, None)
            pushed.output_names = list(names)
            pushed.estimate = plan.estimate
            return pushed
        return SliceNode(plan, keep, names)


class CostBasedPlanner(PlannerBase):
    """Statistics-driven physical planning (the default).

    Decisions and the estimates behind them:

    * **Join order** — greedy operator ordering (GOO): repeatedly merge
      the pair of join operands with the smallest estimated output
      (connected pairs first), yielding bushy trees where they pay off.
      This is what routes TPC-H Q9's provenance core through the
      selective ``part`` filter before touching ``lineitem``, and joins
      Q7's two ``nation`` scans on their OR-of-name-pairs condition
      first (25×25 pairs, ~2 survivors) instead of last.
    * **Build side** — inner hash joins build on the smaller estimated
      input.
    * **Late materialization** — projections push through hash joins
      (key slots remapped onto the narrowed inputs), so dropped columns
      never ride through the join.
    * **Output backing** — narrow inner hash joins feeding an
      aggregation emit column-backed chunks; wide provenance joins keep
      the row-backed concatenation path.
    * **Batch size** — bounded by the largest estimated intermediate,
      so a fanning-out join streams bounded chunks instead of
      table-sized ones.
    """

    #: Column-backed join output pays off only while the per-column
    #: gather loops stay cheaper than one row concatenation per match.
    COLUMNAR_OUTPUT_MAX_WIDTH = 8
    #: Floor for cost-bounded batch sizes.
    MIN_BATCH_SIZE = 4096

    def __init__(
        self,
        catalog: Catalog,
        outer_varmaps: Optional[list[VarMap]] = None,
        shared: Optional[_SharedSubplans] = None,
        vectorize: bool = False,
    ) -> None:
        super().__init__(catalog, outer_varmaps, shared, vectorize=vectorize)
        from repro.planner.cost import CostModel

        self._cost = CostModel(catalog)

    def plan(self, query: Query, joined: Optional[_Unit] = None) -> PlanNode:
        plan = super().plan(query, joined)
        if self._root and self.parallel_workers > 1 and self.vectorize:
            # Statement-level parallelization: wrap parallel-safe
            # scan→filter→project(→partial-aggregate) pipelines in
            # exchange nodes.  Root planners only — the pass reaches
            # subquery plans through the finished tree, and vectorized
            # kernels are a precondition for morsel workers.
            from repro.parallel.planning import insert_exchanges

            plan = insert_exchanges(
                plan,
                self.parallel_workers,
                self.morsel_size,
                strategy=self.parallel_executor,
            )
        return plan

    # -- estimate/statistics annotations -------------------------------------

    def _annotate_scan(self, unit: _Unit, rte: RangeTableEntry) -> None:
        if rte.kind is RTEKind.RELATION:
            table = self.catalog.table(rte.relation_name)
            unit.plan.estimate = float(max(table.row_count(), 1))
            stats = self.catalog.stats_for(rte.relation_name)
            if stats is not None:
                rtindex = next(iter(unit.rtindexes))
                names = (
                    rte.schema.column_names
                    if rte.schema is not None
                    else rte.column_names
                )
                unit.scope = {
                    (rtindex, attno): stats.column(name)
                    for attno, name in enumerate(names)
                }
            self.shared.max_scan_rows = max(
                self.shared.max_scan_rows, unit.plan.estimate
            )
            return
        # Subquery scan: the child planner already estimated the plan;
        # thread its per-output-column statistics into this scope.
        stats_list = getattr(unit.plan, "output_stats", None)
        if stats_list:
            rtindex = next(iter(unit.rtindexes))
            unit.scope = {
                (rtindex, position): column_stats
                for position, column_stats in enumerate(stats_list)
                if column_stats is not None
            }

    def _push_conjunct(self, unit: _Unit, conjunct: ex.Expr) -> None:
        before = max(unit.plan.estimate, 1.0)
        super()._push_conjunct(unit, conjunct)
        sel = self._cost.conjunct_selectivity(conjunct, unit.scope)
        bound = self._cost.range_bound(conjunct, unit.scope)
        if bound is not None:
            # Re-derive this column's combined selectivity from the
            # tightest bounds seen so far and apply only the delta, so
            # ``col >= lo AND col < hi`` contributes the interval mass
            # rather than the product of two large marginals.
            key, kind, bound_sel = bound
            if unit.range_bounds is None:
                unit.range_bounds = {}
            bucket = unit.range_bounds.setdefault(key, {"applied": 1.0})
            bucket[kind] = min(bound_sel, bucket.get(kind, 1.0))
            lo, hi = bucket.get("lo"), bucket.get("hi")
            if lo is not None and hi is not None:
                desired = self._cost.combine_range_bounds(lo, hi)
            else:
                desired = lo if lo is not None else hi
            sel = desired / bucket["applied"]
            bucket["applied"] = desired
        unit.plan.estimate = max(before * sel, 1.0)

    def _annotate_join(
        self,
        unit: _Unit,
        left: _Unit,
        right: _Unit,
        join_type: str,
        conjuncts: list[ex.Expr],
    ) -> None:
        estimate = self._cost.join_estimate(left, right, conjuncts, join_type)
        unit.plan.estimate = estimate
        scope: dict = {}
        if left.scope:
            scope.update(left.scope)
        if right.scope:
            scope.update(right.scope)
        unit.scope = scope or None
        self.shared.max_intermediate_rows = max(
            self.shared.max_intermediate_rows, estimate
        )

    def _annotate_aggregate(
        self, node: PlanNode, query: Query, joined: _Unit
    ) -> None:
        node.estimate = self._cost.group_estimate(
            query.group_clause, joined.scope, max(joined.plan.estimate, 1.0)
        )
        # Width-driven backing choice: a narrow residual-free inner hash
        # join feeding an aggregation emits column-backed chunks — the
        # aggregate reads whole columns anyway, so skipping the row
        # concatenation saves one materialization per match.
        child = joined.plan
        if (
            self.vectorize
            and isinstance(child, HashJoin)
            and child.join_type == "inner"
            and child.residual is None
            and child.width() <= self.COLUMNAR_OUTPUT_MAX_WIDTH
        ):
            child.columnar_output = True

    # -- cost-based decisions -------------------------------------------------

    def _choose_sides(
        self, left: _Unit, right: _Unit, join_type: str, conjuncts: list[ex.Expr]
    ) -> tuple[_Unit, _Unit]:
        # The right input builds the hash table (and is spooled by
        # nested loops): put the smaller estimated input there.  Only
        # inner joins may swap — outer join types encode sidedness —
        # and only on a clear margin: near-tie estimates are noise, and
        # honoring the incoming order keeps plans stable.
        if (
            join_type == "inner"
            and left.plan.estimate * 1.5 < right.plan.estimate
        ):
            return right, left
        return left, right

    #: Largest free inner-join set ordered by exact dynamic programming;
    #: larger sets fall back to greedy operator ordering.  3^12 split
    #: enumerations is the classic practical ceiling for DPsub.
    DP_MAX_RELATIONS = 12

    def _order_joins(self, units: list[_Unit], pool: list[ex.Expr]) -> _Unit:
        """Join ordering: exact DP over subsets, GOO above the cutoff.

        Up to :data:`DP_MAX_RELATIONS` operands the order is chosen by
        dynamic programming over operand subsets (DPsub), minimizing the
        summed per-join score of the whole tree — the same
        :meth:`CostModel.pair_score` GOO minimizes one merge at a time,
        so the two planners agree whenever greedy happens to be optimal
        and differ exactly where greediness loses.  Larger sets keep the
        O(n³)-per-round greedy ordering.
        """
        if 2 <= len(units) <= self.DP_MAX_RELATIONS:
            return self._order_joins_dp(units, pool)
        return self._order_joins_goo(units, pool)

    def _order_joins_dp(self, units: list[_Unit], pool: list[ex.Expr]) -> _Unit:
        """Exact bushy join ordering by dynamic programming over subsets.

        Enumeration is estimate-only: each subset's entry carries a
        cost-model stand-in (estimate, rtindexes, statistics scope)
        rather than a built plan, and the winning tree is reconstructed
        through :meth:`_join_units` afterwards so plan emission stays on
        the single shared path.  A pool conjunct is consumed at the
        unique join where its referenced operands first land in one
        subtree; conjuncts referencing a single operand are filtered
        onto it up front, var-free leftovers wrap the final plan — the
        same placement rules GOO applies incrementally.  Cost entries
        are ``(cartesian joins, summed pair score)`` so connected splits
        beat cross products lexicographically, mirroring GOO's
        connected-first rule; when any connected split exists for a
        subset, cartesian splits are not even scored.
        """
        n = len(units)
        bit_of = {}
        for i, unit in enumerate(units):
            for rtindex in unit.rtindexes:
                bit_of[rtindex] = i

        # Partition the pool: per-conjunct operand masks for join-level
        # placement, single-operand conjuncts pushed as filters now,
        # var-free conjuncts saved for a final wrapping filter.
        conjunct_masks: list[tuple[ex.Expr, int]] = []
        stragglers: list[ex.Expr] = []
        for conjunct in pool:
            mask = 0
            for var in ex.collect_vars(conjunct):
                bit = bit_of.get(var.varno)
                if bit is None:
                    # References something outside the free join set
                    # (GOO never consumes these either): final filter.
                    mask = 0
                    break
                mask |= 1 << bit
            if mask == 0:
                stragglers.append(conjunct)
            elif mask & (mask - 1) == 0:
                unit = units[mask.bit_length() - 1]
                before = max(unit.plan.estimate, 1.0)
                unit.plan = self._filter_node(
                    unit.plan, self._compiler(unit.varmap), conjunct
                )
                sel = self._cost.conjunct_selectivity(conjunct, unit.scope)
                unit.plan.estimate = max(before * sel, 1.0)
            else:
                conjunct_masks.append((conjunct, mask))

        def conds_for(mask: int, sub: int, other: int) -> list[ex.Expr]:
            return [
                c
                for c, bits in conjunct_masks
                if bits & ~mask == 0 and bits & ~sub and bits & ~other
            ]

        # best[mask] -> (cost, split submask or 0, conds, est stand-in)
        best: dict[int, tuple[tuple[int, float], int, list, _EstUnit]] = {}
        for i, unit in enumerate(units):
            best[1 << i] = (
                (0, 0.0),
                0,
                [],
                _EstUnit(unit.plan.estimate, unit.rtindexes, unit.scope),
            )
        for mask in range(1, 1 << n):
            if mask & (mask - 1) == 0 or mask in best:
                continue
            low = mask & -mask
            splits: list[tuple[int, int, list[ex.Expr]]] = []
            connected_only = False
            sub = (mask - 1) & mask
            while sub:
                # Canonical halves: the lowest operand stays in ``sub``.
                if sub & low and (mask ^ sub) in best and sub in best:
                    other = mask ^ sub
                    conds = conds_for(mask, sub, other)
                    if conds and not connected_only:
                        connected_only = True
                        splits = []
                    if bool(conds) == connected_only:
                        splits.append((sub, other, conds))
                sub = (sub - 1) & mask
            choice = None
            for sub, other, conds in splits:
                (cart_a, score_a), _, _, est_a = best[sub]
                (cart_b, score_b), _, _, est_b = best[other]
                score = self._cost.pair_score(est_a, est_b, conds)
                cost = (
                    cart_a + cart_b + (0 if conds else 1),
                    score_a + score_b + score,
                )
                if choice is None or cost < choice[0]:
                    estimate = self._cost.join_estimate(
                        est_a, est_b, conds, "inner"
                    )
                    scope = {**(est_a.scope or {}), **(est_b.scope or {})}
                    merged = _EstUnit(
                        estimate,
                        est_a.rtindexes | est_b.rtindexes,
                        scope or None,
                    )
                    choice = (cost, sub, conds, merged)
            assert choice is not None
            best[mask] = choice

        def build(mask: int) -> _Unit:
            cost, sub, conds, _est = best[mask]
            if sub == 0:
                return units[mask.bit_length() - 1]
            return self._join_units(build(sub), build(mask ^ sub), "inner", conds)

        current = build((1 << n) - 1)
        for conjunct in stragglers:
            current.plan = self._filter_node(
                current.plan, self._compiler(current.varmap), conjunct
            )
        return current

    def _order_joins_goo(self, units: list[_Unit], pool: list[ex.Expr]) -> _Unit:
        """Greedy operator ordering by estimated output cardinality.

        Each round scores every operand pair — connected pairs (some
        pool conjunct touches both sides) strictly before cartesian
        ones — and merges the cheapest, consuming the pool conjuncts
        that became fully covered.  O(n³) pair scoring is irrelevant at
        SQL join counts; the payoff is bushy orders the left-deep
        heuristic cannot express.
        """
        remaining = list(units)
        pool = list(pool)
        while len(remaining) > 1:
            best_key: Optional[tuple] = None
            best_merge: Optional[tuple[int, int, list[ex.Expr]]] = None
            for j in range(1, len(remaining)):
                for i in range(j):
                    a, b = remaining[i], remaining[j]
                    combined = a.rtindexes | b.rtindexes
                    conds: list[ex.Expr] = []
                    connected = False
                    for conjunct in pool:
                        vars_used = ex.collect_vars(conjunct)
                        if vars_used and all(
                            v.varno in combined for v in vars_used
                        ):
                            conds.append(conjunct)
                            if not connected and conjunct_touches(
                                conjunct, a.rtindexes, b.rtindexes
                            ):
                                connected = True
                    score = self._cost.pair_score(a, b, conds)
                    key = (not connected, score, i, j)
                    if best_key is None or key < best_key:
                        best_key = key
                        best_merge = (i, j, conds)
            assert best_merge is not None
            i, j, conds = best_merge
            merged = self._join_units(remaining[i], remaining[j], "inner", conds)
            consumed = {id(c) for c in conds}
            pool = [c for c in pool if id(c) not in consumed]
            remaining[i] = merged
            del remaining[j]
        current = remaining[0]
        for conjunct in pool:
            # Conjuncts referencing no vars (constants) or left over.
            current.plan = self._filter_node(
                current.plan, self._compiler(current.varmap), conjunct
            )
        return current

    # -- late-materialization slice pushdown ----------------------------------

    def _make_slice(
        self, plan: PlanNode, keep: list[int], names: list[str]
    ) -> PlanNode:
        pushed = self._push_slice_through_hash_join(plan, keep, names)
        if pushed is not None:
            return pushed
        return super()._make_slice(plan, keep, names)

    def _push_slice_through_hash_join(
        self, plan: PlanNode, keep: list[int], names: list[str]
    ) -> Optional[PlanNode]:
        """Push a column selection below a hash join, remapping key slots.

        Requires Var-only keys (slot metadata present), no residual
        condition (its compiled closure reads the merged layout), and a
        side-contiguous ``keep`` order.  Key slots missing from ``keep``
        ride along in the narrowed inputs and are dropped by a thin
        slice above the rebuilt join — the join itself then concatenates
        only surviving payload columns (late materialization).
        """
        if not isinstance(plan, HashJoin) or plan.residual is not None:
            return None
        left_slots = getattr(plan, "left_key_slots", None)
        right_slots = getattr(plan, "right_key_slots", None)
        if left_slots is None or right_slots is None:
            return None
        left_width = plan.left.width()
        right_width = plan.right.width()
        if any(a >= left_width and b < left_width for a, b in zip(keep, keep[1:])):
            return None
        keep_left = [i for i in keep if i < left_width]
        keep_right = [i - left_width for i in keep if i >= left_width]
        need_left = keep_left + [s for s in left_slots if s not in keep_left]
        need_right = keep_right + [s for s in right_slots if s not in keep_right]
        # Only narrow when the pushdown drops a substantial share of the
        # join's columns: the narrowed side costs one extra gather pass,
        # which a marginal width win (a junk column or two) never repays.
        total_width = left_width + right_width
        dropped = total_width - len(need_left) - len(need_right)
        if dropped < 3 or dropped * 4 < total_width:
            return None
        left_child = plan.left
        right_child = plan.right
        if need_left != list(range(left_width)):
            left_child = self._make_slice(
                left_child,
                need_left,
                [plan.left.output_names[i] for i in need_left],
            )
        if need_right != list(range(right_width)):
            right_child = self._make_slice(
                right_child,
                need_right,
                [plan.right.output_names[i] for i in need_right],
            )
        new_left_slots = [need_left.index(s) for s in left_slots]
        new_right_slots = [need_right.index(s) for s in right_slots]
        join = HashJoin(
            left_child,
            right_child,
            plan.join_type,
            [_slot_reader(s) for s in new_left_slots],
            [_slot_reader(s) for s in new_right_slots],
            None,
            list(plan.null_safe),
            batch_left_keys=(
                [_slot_column(s) for s in new_left_slots]
                if plan.batch_left_keys is not None
                else None
            ),
            batch_right_keys=(
                [_slot_column(s) for s in new_right_slots]
                if plan.batch_right_keys is not None
                else None
            ),
        )
        join.left_key_slots = new_left_slots
        join.right_key_slots = new_right_slots
        join.estimate = plan.estimate
        if need_left == keep_left and need_right == keep_right:
            join.output_names = list(names)
            return join
        # Key slots rode along: drop them with a thin slice on top.
        positions = [
            keep_left.index(i)
            if i < left_width
            else len(need_left) + keep_right.index(i - left_width)
            for i in keep
        ]
        return SliceNode(join, positions, names)

    # -- batch-size bounding ---------------------------------------------------

    def _finalize_plan(self, plan: PlanNode) -> PlanNode:
        plan.batch_size_hint = self._batch_size_hint()
        return plan

    def _batch_size_hint(self) -> int:
        """Batch size bounded by the estimated intermediate blow-up.

        When joins fan out beyond the largest scan, scan chunks shrink
        proportionally so a single probe chunk's output stays near
        :data:`DEFAULT_BATCH_SIZE` rows instead of scaling with the
        whole table.
        """
        scans = self.shared.max_scan_rows
        intermediate = self.shared.max_intermediate_rows
        if intermediate <= max(scans, float(DEFAULT_BATCH_SIZE)):
            return DEFAULT_BATCH_SIZE
        fanout = intermediate / max(scans, 1.0)
        bounded = int(DEFAULT_BATCH_SIZE / fanout)
        bounded = max(self.MIN_BATCH_SIZE, min(DEFAULT_BATCH_SIZE, bounded))
        # Round to the next power of two for stable chunk shapes.
        return 1 << (bounded - 1).bit_length()
