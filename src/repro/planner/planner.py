"""The planner: analyzed query trees -> physical plans.

The plan output layout always equals the query's *full* target list
(including resjunk sort entries); junk columns are sliced away at the very
end.  Planning steps for an (A)SPJ node:

1. build one *unit* (subplan + varmap) per base relation / subquery /
   outer-join subtree,
2. push single-unit WHERE conjuncts down onto their unit,
3. greedily join units, preferring hash joins on extracted equi-conjuncts
   and smaller estimated inputs (crude but enough for TPC-H shapes),
4. apply remaining conjuncts, aggregation + HAVING, projection, DISTINCT,
   ORDER BY, LIMIT.

Set-operation nodes plan each leaf subquery and fold the set-operation
tree into SetOpPlanNode instances.

Sublinks are planned through a callback handed to the expression
compiler; correlated sublinks receive the stack of enclosing layouts so
their free Vars compile into reads of the executor's outer-row stack.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.catalog.catalog import Catalog
from repro.datatypes import SQLType
from repro.errors import PlanError
from repro.analyzer import expressions as ex
from repro.analyzer.query_tree import (
    FromExpr,
    JoinTreeExpr,
    JoinTreeNode,
    Query,
    RangeTableEntry,
    RangeTableRef,
    RTEKind,
    SetOpNode,
    SetOpRangeRef,
    SetOpTreeNode,
)
from repro.executor.expr_eval import ExprCompiler, VarMap
from repro.executor.nodes import (
    DistinctNode,
    FilterNode,
    HashAggregate,
    HashJoin,
    LimitNode,
    NestedLoopJoin,
    OneRow,
    PlanNode,
    ProjectNode,
    SetOpPlanNode,
    SliceNode,
    SortNode,
)

# Synthetic varno for post-aggregation slots (group keys + agg results).
_POST_AGG_VARNO = -1


class _Unit:
    """A placed or placeable join operand: subplan + var layout."""

    __slots__ = ("plan", "varmap", "rtindexes")

    def __init__(self, plan: PlanNode, varmap: VarMap, rtindexes: set[int]) -> None:
        self.plan = plan
        self.varmap = varmap
        self.rtindexes = rtindexes


class Planner:
    def __init__(self, catalog: Catalog, outer_varmaps: Optional[list[VarMap]] = None) -> None:
        self.catalog = catalog
        self.outer_varmaps = list(outer_varmaps or [])

    # -- public API -----------------------------------------------------------

    def plan(self, query: Query) -> PlanNode:
        """Plan a query; output columns = visible target entries."""
        if query.set_operations is not None:
            plan = self._plan_setop_query(query)
        else:
            plan = self._plan_plain_query(query)
        plan = self._apply_sort_limit(query, plan)
        plan = self._slice_junk(query, plan)
        return plan

    # -- helpers shared with the expression compiler ----------------------------

    def _plan_sublink(self, query: Query, outer_varmaps: list[VarMap]) -> PlanNode:
        return Planner(self.catalog, outer_varmaps).plan(query)

    def _compiler(self, varmap: VarMap) -> ExprCompiler:
        return ExprCompiler(varmap, self.outer_varmaps, plan_subquery=self._plan_sublink)

    # -- RTE plans ------------------------------------------------------------------

    def _plan_rte(self, rtindex: int, rte: RangeTableEntry) -> _Unit:
        if rte.kind is RTEKind.RELATION:
            table = self.catalog.table(rte.relation_name)
            from repro.executor.nodes import SeqScan

            plan: PlanNode = SeqScan(table, list(rte.column_names))
        else:
            # FROM subqueries are uncorrelated (no LATERAL), so they plan
            # with an empty enclosing-layout stack.
            plan = Planner(self.catalog).plan(rte.subquery)
        varmap = {(rtindex, attno): attno for attno in range(rte.width())}
        return _Unit(plan, varmap, {rtindex})

    # -- plain (A)SPJ queries -----------------------------------------------------------

    def _plan_plain_query(self, query: Query) -> PlanNode:
        joined = self._plan_from_where(query)
        if query.has_aggs or query.group_clause:
            plan, varmap, target_exprs = self._plan_aggregation(query, joined)
        else:
            plan, varmap = joined.plan, joined.varmap
            target_exprs = [t.expr for t in query.target_list]
        # Project the full target list (visible + junk).
        compiler = self._compiler(varmap)
        exprs = [compiler.compile(e) for e in target_exprs]
        names = [t.name for t in query.target_list]
        plan = ProjectNode(plan, exprs, names)
        if query.distinct:
            if any(t.resjunk for t in query.target_list):
                raise PlanError(
                    "SELECT DISTINCT with ORDER BY expressions not in the "
                    "select list is not supported"
                )
            plan = DistinctNode(plan)
        return plan

    def _plan_from_where(self, query: Query) -> _Unit:
        # WHERE conjuncts are collected *first* so that conjuncts referencing
        # only the preserved side of an outer join can be pushed below it --
        # essential for the rewriter's sublink left-join chains, where the
        # whole FROM clause sits under a LEFT JOIN.
        where_conjuncts: list[ex.Expr] = []
        if query.jointree.quals is not None:
            where_conjuncts = split_conjuncts(query.jointree.quals)
        pushable = [
            c
            for c in where_conjuncts
            if not ex.contains_sublink(c) and ex.collect_vars(c)
        ]
        non_pushable = [c for c in where_conjuncts if c not in pushable]
        units: list[_Unit] = []
        conjuncts: list[ex.Expr] = []
        for item in query.jointree.items:
            self._flatten_inner(item, query, units, conjuncts, pushable)
        # Outer-join pushdown consumed some of ``pushable``; the rest (and
        # the sublink/no-var conjuncts) apply at this level.
        conjuncts.extend(pushable)
        conjuncts.extend(non_pushable)

        if not units:
            base: PlanNode = OneRow()
            unit = _Unit(base, {}, set())
            for conjunct in conjuncts:
                predicate = self._compiler({}).compile(conjunct)
                unit = _Unit(FilterNode(unit.plan, predicate), {}, set())
            return unit

        # Classify conjuncts: single-unit filters are pushed down; sublink
        # conjuncts run after all joins; the rest participate in joins.
        join_pool: list[ex.Expr] = []
        late: list[ex.Expr] = []
        for conjunct in conjuncts:
            if ex.contains_sublink(conjunct):
                late.append(conjunct)
                continue
            vars_used = ex.collect_vars(conjunct)
            owners = {self._unit_of(units, var.varno) for var in vars_used}
            if len(owners) == 1:
                unit = owners.pop()
                predicate = self._compiler(unit.varmap).compile(conjunct)
                self._push_filter(unit, predicate)
            elif len(owners) == 0:
                late.append(conjunct)
            else:
                join_pool.append(conjunct)

        joined = self._greedy_join(units, join_pool)
        for conjunct in late:
            predicate = self._compiler(joined.varmap).compile(conjunct)
            joined.plan = FilterNode(joined.plan, predicate)
        return joined

    @staticmethod
    def _push_filter(unit: _Unit, predicate) -> None:
        """Attach a single-unit filter, merging into a bare scan if possible."""
        from repro.executor.nodes import SeqScan

        plan = unit.plan
        if isinstance(plan, SeqScan) and plan.predicate is None:
            plan.predicate = predicate
            plan.estimate = max(plan.estimate * 0.25, 1.0)
            return
        unit.plan = FilterNode(plan, predicate)

    @staticmethod
    def _unit_of(units: list[_Unit], rtindex: int) -> _Unit:
        for unit in units:
            if rtindex in unit.rtindexes:
                return unit
        raise PlanError(f"range table index {rtindex} not found in any join unit")

    def _flatten_inner(
        self,
        node: JoinTreeNode,
        query: Query,
        units: list[_Unit],
        conjuncts: list[ex.Expr],
        pushable: Optional[list[ex.Expr]] = None,
    ) -> None:
        if isinstance(node, RangeTableRef):
            units.append(self._plan_rte(node.rtindex, query.range_table[node.rtindex]))
            return
        if node.join_type == "inner":
            self._flatten_inner(node.left, query, units, conjuncts, pushable)
            self._flatten_inner(node.right, query, units, conjuncts, pushable)
            if node.quals is not None:
                conjuncts.extend(split_conjuncts(node.quals))
            return
        units.append(self._plan_outer_join(node, query, pushable))

    def _plan_join_operand(
        self,
        node: JoinTreeNode,
        query: Query,
        extra_conjuncts: Optional[list[ex.Expr]] = None,
        pushable: Optional[list[ex.Expr]] = None,
    ) -> _Unit:
        """Plan a join subtree standalone (used under outer joins)."""
        units: list[_Unit] = []
        conjuncts: list[ex.Expr] = list(extra_conjuncts or [])
        self._flatten_inner(node, query, units, conjuncts, pushable)
        if len(units) == 1 and not conjuncts:
            return units[0]
        late = [c for c in conjuncts if ex.contains_sublink(c)]
        pool = [c for c in conjuncts if not ex.contains_sublink(c)]
        joined = self._greedy_join(units, pool)
        for conjunct in late:
            predicate = self._compiler(joined.varmap).compile(conjunct)
            joined.plan = FilterNode(joined.plan, predicate)
        return joined

    def _plan_outer_join(
        self,
        node: JoinTreeExpr,
        query: Query,
        pushable: Optional[list[ex.Expr]] = None,
    ) -> _Unit:
        from repro.analyzer.query_tree import jointree_rtindexes

        # WHERE conjuncts referencing only the preserved side can move
        # below the outer join (they filter preserved rows identically
        # before or after null extension of the other side).
        left_extra: list[ex.Expr] = []
        right_extra: list[ex.Expr] = []
        if pushable:
            if node.join_type == "left":
                preserved, extras = set(jointree_rtindexes(node.left)), left_extra
            elif node.join_type == "right":
                preserved, extras = set(jointree_rtindexes(node.right)), right_extra
            else:
                preserved, extras = set(), []
            if preserved:
                for conjunct in list(pushable):
                    vars_used = ex.collect_vars(conjunct)
                    if vars_used and all(v.varno in preserved for v in vars_used):
                        extras.append(conjunct)
                        pushable.remove(conjunct)
        # The pool may only flow into the preserved side: pushing WHERE
        # conjuncts below the null-producing side would let null-extended
        # rows survive that the original WHERE eliminates.
        left_pool = pushable if node.join_type == "left" else None
        right_pool = pushable if node.join_type == "right" else None
        left = self._plan_join_operand(node.left, query, left_extra, left_pool)
        right = self._plan_join_operand(node.right, query, right_extra, right_pool)
        merged_map = dict(left.varmap)
        offset = left.plan.width()
        for key, slot in right.varmap.items():
            merged_map[key] = slot + offset
        condition_conjuncts = (
            split_conjuncts(node.quals) if node.quals is not None else []
        )
        plan = self._make_join(
            left, right, merged_map, node.join_type, condition_conjuncts
        )
        return _Unit(plan, merged_map, left.rtindexes | right.rtindexes)

    def _make_join(
        self,
        left: _Unit,
        right: _Unit,
        merged_map: VarMap,
        join_type: str,
        conjuncts: list[ex.Expr],
    ) -> PlanNode:
        left_keys, right_keys, null_safe, residual = extract_equi_keys(
            conjuncts, left, right
        )
        compiler = self._compiler(merged_map)
        if left_keys:
            left_compiler = self._compiler(left.varmap)
            right_compiler = self._compiler(right.varmap)
            residual_fn = (
                compiler.compile(conjoin(residual)) if residual else None
            )
            return HashJoin(
                left.plan,
                right.plan,
                join_type,
                [left_compiler.compile(k) for k in left_keys],
                [right_compiler.compile(k) for k in right_keys],
                residual_fn,
                null_safe,
            )
        condition_fn = compiler.compile(conjoin(conjuncts)) if conjuncts else None
        return NestedLoopJoin(left.plan, right.plan, join_type, condition_fn)

    def _greedy_join(self, units: list[_Unit], pool: list[ex.Expr]) -> _Unit:
        """Left-deep greedy join ordering over inner-join units."""
        remaining = list(units)
        pool = list(pool)
        # Start from the smallest estimated unit.
        remaining.sort(key=lambda u: u.plan.estimate)
        current = remaining.pop(0)
        while remaining:
            connected = [
                (i, unit)
                for i, unit in enumerate(remaining)
                if any(self._connects(c, current, unit) for c in pool)
            ]
            candidates = connected or list(enumerate(remaining))
            best_index = min(candidates, key=lambda pair: pair[1].plan.estimate)[0]
            next_unit = remaining.pop(best_index)
            applicable: list[ex.Expr] = []
            still_pooled: list[ex.Expr] = []
            combined_rts = current.rtindexes | next_unit.rtindexes
            for conjunct in pool:
                vars_used = ex.collect_vars(conjunct)
                if vars_used and all(v.varno in combined_rts for v in vars_used):
                    applicable.append(conjunct)
                else:
                    still_pooled.append(conjunct)
            pool = still_pooled
            merged_map = dict(current.varmap)
            offset = current.plan.width()
            for key, slot in next_unit.varmap.items():
                merged_map[key] = slot + offset
            plan = self._make_join(current, next_unit, merged_map, "inner", applicable)
            current = _Unit(plan, merged_map, combined_rts)
        for conjunct in pool:
            # Conjuncts referencing no vars (constants) or left over.
            predicate = self._compiler(current.varmap).compile(conjunct)
            current.plan = FilterNode(current.plan, predicate)
        return current

    @staticmethod
    def _connects(conjunct: ex.Expr, left: _Unit, right: _Unit) -> bool:
        if not (isinstance(conjunct, ex.OpExpr) and conjunct.op in ("=", "<=>")):
            return False
        vars_used = ex.collect_vars(conjunct)
        touches_left = any(v.varno in left.rtindexes for v in vars_used)
        touches_right = any(v.varno in right.rtindexes for v in vars_used)
        return touches_left and touches_right

    # -- aggregation ---------------------------------------------------------------------

    def _plan_aggregation(
        self, query: Query, joined: _Unit
    ) -> tuple[PlanNode, VarMap, list[ex.Expr]]:
        from repro.executor.aggregates import make_aggregate_factory

        aggrefs: list[ex.Aggref] = []

        def collect(expr: ex.Expr) -> None:
            for node in ex.walk(expr):
                if isinstance(node, ex.Aggref) and node not in aggrefs:
                    aggrefs.append(node)

        for target in query.target_list:
            collect(target.expr)
        if query.having is not None:
            collect(query.having)

        input_compiler = self._compiler(joined.varmap)
        group_fns = [input_compiler.compile(g) for g in query.group_clause]
        agg_factories = []
        agg_args = []
        for aggref in aggrefs:
            agg_factories.append(
                make_aggregate_factory(aggref.aggname, aggref.star, aggref.distinct)
            )
            agg_args.append(
                input_compiler.compile(aggref.arg) if aggref.arg is not None else None
            )
        group_count = len(query.group_clause)
        output_names = [f"g{i}" for i in range(group_count)] + [
            f"agg{i}" for i in range(len(aggrefs))
        ]
        agg_plan: PlanNode = HashAggregate(
            joined.plan, group_fns, agg_factories, agg_args, output_names
        )
        post_varmap: VarMap = {
            (_POST_AGG_VARNO, slot): slot for slot in range(group_count + len(aggrefs))
        }

        # Rewrite post-aggregation expressions: whole-group-expr matches and
        # Aggrefs become Vars over the aggregate output.
        group_slots = list(enumerate(query.group_clause))

        def replace(expr: ex.Expr) -> ex.Expr:
            for slot, group_expr in group_slots:
                if expr == group_expr:
                    return ex.Var(
                        varno=_POST_AGG_VARNO,
                        varattno=slot,
                        type=expr.type,
                        name=f"g{slot}",
                    )
            if isinstance(expr, ex.Aggref):
                slot = group_count + aggrefs.index(expr)
                return ex.Var(
                    varno=_POST_AGG_VARNO, varattno=slot, type=expr.type, name=f"agg{slot}"
                )
            children = expr.children()
            if not children:
                return expr
            from repro.analyzer.expressions import rebuild_with_children

            return rebuild_with_children(expr, [replace(c) for c in children])

        target_exprs = [replace(t.expr) for t in query.target_list]
        if query.having is not None:
            having_fn = self._compiler(post_varmap).compile(replace(query.having))
            agg_plan = FilterNode(agg_plan, having_fn)
        return agg_plan, post_varmap, target_exprs

    # -- set operations ---------------------------------------------------------------------

    def _plan_setop_query(self, query: Query) -> PlanNode:
        plan = self._plan_setop_tree(query.set_operations, query)
        plan = self._rename_output(plan, [t.name for t in query.target_list])
        return plan

    def _plan_setop_tree(self, node: SetOpTreeNode, query: Query) -> PlanNode:
        if isinstance(node, SetOpRangeRef):
            rte = query.range_table[node.rtindex]
            # Leaf subqueries are analyzed against the same outer scopes as
            # the set-operation node (no extra level), so the enclosing
            # layouts pass through unchanged — a correlated sublink whose
            # body is a set operation reads the same outer-row stack.
            return Planner(self.catalog, self.outer_varmaps).plan(rte.subquery)
        left = self._plan_setop_tree(node.left, query)
        right = self._plan_setop_tree(node.right, query)
        return SetOpPlanNode(node.op, node.all, left, right)

    @staticmethod
    def _rename_output(plan: PlanNode, names: list[str]) -> PlanNode:
        plan.output_names = list(names)
        return plan

    # -- sort / limit / junk removal -------------------------------------------------------------

    def _apply_sort_limit(self, query: Query, plan: PlanNode) -> PlanNode:
        if query.sort_clause:
            specs = [
                (clause.tlist_index, clause.descending, clause.nulls_first)
                for clause in query.sort_clause
            ]
            plan = SortNode(plan, specs)
        if query.limit_count is not None or query.limit_offset is not None:
            count = self._const_int(query.limit_count)
            offset = self._const_int(query.limit_offset) or 0
            plan = LimitNode(plan, count, offset)
        return plan

    @staticmethod
    def _const_int(expr: Optional[ex.Expr]) -> Optional[int]:
        if expr is None:
            return None
        if not isinstance(expr, ex.Const):
            raise PlanError("LIMIT/OFFSET must be constants")
        return int(expr.value)

    @staticmethod
    def _slice_junk(query: Query, plan: PlanNode) -> PlanNode:
        if not any(t.resjunk for t in query.target_list):
            return plan
        keep = [i for i, t in enumerate(query.target_list) if not t.resjunk]
        names = [query.target_list[i].name for i in keep]
        return SliceNode(plan, keep, names)


# ---------------------------------------------------------------------------
# Conjunct utilities
# ---------------------------------------------------------------------------


def split_conjuncts(expr: ex.Expr) -> list[ex.Expr]:
    """Flatten nested AND chains into a conjunct list.

    OR nodes whose every arm shares common conjuncts are factored
    (``(a AND x) OR (a AND y)`` -> ``a AND (x OR y)``), which recovers the
    join predicate hidden inside TPC-H Q19's disjunction.
    """
    if isinstance(expr, ex.BoolOpExpr) and expr.op == "and":
        result: list[ex.Expr] = []
        for arg in expr.args:
            result.extend(split_conjuncts(arg))
        return result
    if isinstance(expr, ex.BoolOpExpr) and expr.op == "or":
        factored = _factor_or(expr)
        if factored is not None:
            return factored
    return [expr]


def _factor_or(expr: ex.BoolOpExpr) -> Optional[list[ex.Expr]]:
    """Extract conjuncts common to every arm of an OR, if any."""
    arms = [split_conjuncts(arg) for arg in expr.args]
    common = [c for c in arms[0] if all(any(c == d for d in arm) for arm in arms[1:])]
    if not common:
        return None
    remainders: list[ex.Expr] = []
    for arm in arms:
        rest = [c for c in arm if not any(c == k for k in common)]
        if not rest:
            # One arm is exactly the common part: the OR adds nothing more.
            return common
        remainders.append(conjoin(rest))
    return common + [ex.BoolOpExpr("or", tuple(remainders))]


def conjoin(conjuncts: list[ex.Expr]) -> ex.Expr:
    if len(conjuncts) == 1:
        return conjuncts[0]
    return ex.BoolOpExpr("and", tuple(conjuncts))


def extract_equi_keys(
    conjuncts: list[ex.Expr], left: _Unit, right: _Unit
) -> tuple[list[ex.Expr], list[ex.Expr], list[bool], list[ex.Expr]]:
    """Split conjuncts into hash-joinable equi keys and a residual list.

    Both plain ``=`` and the rewriter's null-safe ``<=>`` qualify; the
    returned flag list marks the null-safe keys.
    """
    left_keys: list[ex.Expr] = []
    right_keys: list[ex.Expr] = []
    null_safe: list[bool] = []
    residual: list[ex.Expr] = []
    for conjunct in conjuncts:
        if (
            isinstance(conjunct, ex.OpExpr)
            and conjunct.op in ("=", "<=>")
            and not ex.contains_sublink(conjunct)
        ):
            a, b = conjunct.args
            vars_a = ex.collect_vars(a)
            vars_b = ex.collect_vars(b)
            if vars_a and vars_b:
                a_in_left = all(v.varno in left.rtindexes for v in vars_a)
                a_in_right = all(v.varno in right.rtindexes for v in vars_a)
                b_in_left = all(v.varno in left.rtindexes for v in vars_b)
                b_in_right = all(v.varno in right.rtindexes for v in vars_b)
                if a_in_left and b_in_right:
                    left_keys.append(a)
                    right_keys.append(b)
                    null_safe.append(conjunct.op == "<=>")
                    continue
                if a_in_right and b_in_left:
                    left_keys.append(b)
                    right_keys.append(a)
                    null_safe.append(conjunct.op == "<=>")
                    continue
        residual.append(conjunct)
    return left_keys, right_keys, null_safe, residual
