"""The planner: analyzed query trees -> physical plans.

The plan output layout always equals the query's *full* target list
(including resjunk sort entries); junk columns are sliced away at the very
end.  Planning steps for an (A)SPJ node:

1. build one *unit* (subplan + varmap) per base relation / subquery /
   outer-join subtree,
2. push single-unit WHERE conjuncts down onto their unit,
3. greedily join units, preferring hash joins on extracted equi-conjuncts
   and smaller estimated inputs (crude but enough for TPC-H shapes),
4. apply remaining conjuncts, aggregation + HAVING, projection, DISTINCT,
   ORDER BY, LIMIT.

Set-operation nodes plan each leaf subquery and fold the set-operation
tree into SetOpPlanNode instances.

Sublinks are planned through a callback handed to the expression
compiler; correlated sublinks receive the stack of enclosing layouts so
their free Vars compile into reads of the executor's outer-row stack.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.catalog.catalog import Catalog
from repro.datatypes import SQLType
from repro.errors import PlanError
from repro.analyzer import expressions as ex
from repro.analyzer.query_tree import (
    FromExpr,
    JoinTreeExpr,
    JoinTreeNode,
    Query,
    RangeTableEntry,
    RangeTableRef,
    RTEKind,
    SetOpNode,
    SetOpRangeRef,
    SetOpTreeNode,
)
from repro.executor.expr_eval import ExprCompiler, VarMap
from repro.executor.nodes import (
    DistinctNode,
    FilterNode,
    HashAggregate,
    HashJoin,
    LimitNode,
    NestedLoopJoin,
    OneRow,
    PlanNode,
    ProjectNode,
    SetOpPlanNode,
    SliceNode,
    SortNode,
)

# Synthetic varno for post-aggregation slots (group keys + agg results).
_POST_AGG_VARNO = -1


def _slot_reader(slot: int):
    """A compiled expression that reads one input slot."""
    return lambda row, ctx: row[slot]


def _slot_column(slot: int):
    """The batch-mode twin of :func:`_slot_reader`: one chunk column."""
    return lambda chunk, ctx: chunk.column(slot)


def _conjoin_predicates(first, second):
    """Combine two compiled predicates into one three-valued AND.

    Filter semantics only keep rows where the predicate is exactly True,
    so short-circuiting on ``is not True`` preserves NULL handling.
    """

    def combined(row, ctx):
        verdict = first(row, ctx)
        if verdict is not True:
            return verdict
        return second(row, ctx)

    return combined


class _Unit:
    """A placed or placeable join operand: subplan + var layout.

    ``from_subquery`` marks units derived from subquery RTEs (directly or
    inside an outer-join subtree).  The greedy join order prefers base
    scans among connected candidates: a small aggregate result joined
    early fans out through the remaining chain (its group keys are far
    less selective than the base tables' foreign keys), so aggregate-ish
    units attach last — the shape the provenance rewrite intends.
    """

    __slots__ = ("plan", "varmap", "rtindexes", "from_subquery")

    def __init__(
        self,
        plan: PlanNode,
        varmap: VarMap,
        rtindexes: set[int],
        from_subquery: bool = False,
    ) -> None:
        self.plan = plan
        self.varmap = varmap
        self.rtindexes = rtindexes
        self.from_subquery = from_subquery


class _SharedSubplans:
    """Statement-scoped registry for common-subplan deduplication.

    The provenance rewrite duplicates whole subqueries (the original
    sublink and its rewritten copy, q_agg's inputs inside d, TPC-H Q15's
    twice-inlined revenue view).  Structurally identical, uncorrelated
    subqueries plan once and share a materialized result — the spool/CTE
    sharing a cost-based DBMS applies to common subexpressions.
    """

    __slots__ = ("entries",)

    def __init__(self) -> None:
        # (cheap signature, query tree, shared materialized plan)
        self.entries: list[tuple[tuple, Query, PlanNode]] = []

    @staticmethod
    def signature(query: Query) -> tuple:
        return (
            query.node_class().value,
            len(query.target_list),
            len(query.range_table),
            tuple(query.output_columns()),
        )

    def lookup(self, query: Query) -> Optional[PlanNode]:
        from repro.optimizer.treeutils import queries_structurally_equal

        signature = self.signature(query)
        for entry_signature, entry_query, node in self.entries:
            if entry_signature != signature:
                continue
            if entry_query is query or queries_structurally_equal(
                query, entry_query
            ):
                return node
        return None

    def remember(self, query: Query, plan: PlanNode) -> PlanNode:
        from repro.executor.nodes import MaterializeNode

        node = MaterializeNode(plan)
        self.entries.append((self.signature(query), query, node))
        return node


class Planner:
    def __init__(
        self,
        catalog: Catalog,
        outer_varmaps: Optional[list[VarMap]] = None,
        shared: Optional[_SharedSubplans] = None,
        vectorize: bool = False,
    ) -> None:
        self.catalog = catalog
        self.outer_varmaps = list(outer_varmaps or [])
        self.shared = shared if shared is not None else _SharedSubplans()
        # When set, every expression is additionally compiled to a batch
        # kernel and attached to the plan nodes, enabling the vectorized
        # ``run_batches`` protocol on the whole tree.  Subtrees whose
        # expressions resist vectorization degrade per-expression (the
        # kernel falls back to the row closure internally) or per-node
        # (conditional nested loops bridge to the row protocol).
        self.vectorize = vectorize

    # -- public API -----------------------------------------------------------

    def plan(self, query: Query, joined: Optional["_Unit"] = None) -> PlanNode:
        """Plan a query; output columns = visible target entries.

        ``joined`` (internal, aggregation-join fusion) substitutes an
        already-planned FROM/WHERE unit: the query's own join tree and
        quals are skipped and its aggregation/projection/sort pipeline is
        planned on top of the given subplan.
        """
        if query.set_operations is not None:
            plan = self._plan_setop_query(query)
            plan = self._apply_sort(query, plan)
            plan = self._apply_limit(query, plan)
            return self._slice_junk(query, plan)
        # SELECT DISTINCT with ORDER BY expressions outside the select
        # list: sort the junk-extended projection first, slice the junk,
        # then deduplicate — DistinctNode keeps first occurrences, so the
        # output is ordered by each distinct row's first sort position.
        defer_distinct = query.distinct and any(
            t.resjunk for t in query.target_list
        )
        plan = self._plan_plain_query(
            query, skip_distinct=defer_distinct, joined=joined
        )
        if defer_distinct:
            plan = self._apply_sort(query, plan)
            plan = self._slice_junk(query, plan)
            plan = DistinctNode(plan)
            return self._apply_limit(query, plan)
        plan = self._apply_sort(query, plan)
        plan = self._apply_limit(query, plan)
        return self._slice_junk(query, plan)

    # -- helpers shared with the expression compiler ----------------------------

    def _plan_sublink(self, query: Query, outer_varmaps: list[VarMap]) -> PlanNode:
        if query.share_candidate:
            return self._plan_shared_subquery(query)
        return Planner(
            self.catalog, outer_varmaps, self.shared, vectorize=self.vectorize
        ).plan(query)

    def _sub_planner(self) -> "Planner":
        """A child planner for closed subqueries (no enclosing layouts)."""
        return Planner(self.catalog, shared=self.shared, vectorize=self.vectorize)

    def _plan_shared_subquery(self, query: Query) -> PlanNode:
        """Plan a closed subquery; optimizer-marked duplicates share one
        materialized plan (``share_candidate`` implies the query is
        closed and occurs structurally repeated in the statement)."""
        if not query.share_candidate:
            return self._sub_planner().plan(query)
        cached = self.shared.lookup(query)
        if cached is not None:
            return cached
        plan = self._sub_planner().plan(query)
        return self.shared.remember(query, plan)

    def _compiler(self, varmap: VarMap) -> ExprCompiler:
        return ExprCompiler(varmap, self.outer_varmaps, plan_subquery=self._plan_sublink)

    # -- batch-kernel compilation helpers --------------------------------------

    def _batch_compile(self, compiler: ExprCompiler, expr: ex.Expr):
        """The expression's batch kernel, or None when not vectorizing."""
        return compiler.compile_batch(expr) if self.vectorize else None

    def _batch_compile_all(
        self, compiler: ExprCompiler, exprs: list[ex.Expr]
    ) -> Optional[list]:
        if not self.vectorize:
            return None
        return [compiler.compile_batch(e) for e in exprs]

    def _batch_target_exprs(
        self,
        compiler: ExprCompiler,
        exprs: list[ex.Expr],
        slots: list[Optional[int]],
    ) -> Optional[list]:
        """Projection kernels; slot-covered positions pass through as None."""
        if not self.vectorize:
            return None
        return [
            None if slot is not None else compiler.compile_batch(expr)
            for expr, slot in zip(exprs, slots)
        ]

    def _filter_node(
        self, plan: PlanNode, compiler: ExprCompiler, conjunct: ex.Expr
    ) -> FilterNode:
        """A FilterNode with both row and (when vectorizing) batch forms."""
        batch = self._batch_compile(compiler, conjunct)
        return FilterNode(
            plan,
            compiler.compile(conjunct),
            [batch] if batch is not None else None,
        )

    def _push_conjunct(self, unit: "_Unit", conjunct: ex.Expr) -> None:
        """Compile a conjunct against a unit's layout and push it down."""
        compiler = self._compiler(unit.varmap)
        self._push_filter(
            unit,
            compiler.compile(conjunct),
            self._batch_compile(compiler, conjunct),
        )

    # -- RTE plans ------------------------------------------------------------------

    def _plan_rte(self, rtindex: int, rte: RangeTableEntry) -> _Unit:
        if rte.kind is RTEKind.RELATION:
            table = self.catalog.table(rte.relation_name)
            from repro.executor.nodes import SeqScan

            if rte.used_attnos is not None and len(rte.used_attnos) < rte.width():
                # Optimizer projection-pruning hint: emit only the columns
                # this query references, so joins concatenate short tuples.
                keep = sorted(rte.used_attnos)
                plan: PlanNode = SeqScan(
                    table, [rte.column_names[i] for i in keep], columns=keep
                )
                varmap = {
                    (rtindex, attno): slot for slot, attno in enumerate(keep)
                }
                return _Unit(plan, varmap, {rtindex})
            plan = SeqScan(table, list(rte.column_names))
        else:
            # FROM subqueries are uncorrelated (no LATERAL), so they plan
            # with an empty enclosing-layout stack — and being closed,
            # structurally identical ones share one materialized plan.
            plan = self._plan_shared_subquery(rte.subquery)
        varmap = {(rtindex, attno): attno for attno in range(rte.width())}
        return _Unit(
            plan, varmap, {rtindex}, from_subquery=rte.kind is RTEKind.SUBQUERY
        )

    # -- plain (A)SPJ queries -----------------------------------------------------------

    def _plan_plain_query(
        self,
        query: Query,
        skip_distinct: bool = False,
        joined: Optional[_Unit] = None,
    ) -> PlanNode:
        if joined is None:
            joined = self._plan_from_where(query)
        if query.has_aggs or query.group_clause:
            plan, varmap, target_exprs = self._plan_aggregation(query, joined)
        else:
            plan, varmap = joined.plan, joined.varmap
            target_exprs = [t.expr for t in query.target_list]
        # Project the full target list (visible + junk).  A target list of
        # plain column references — the dominant shape in provenance
        # rewrites — becomes a SliceNode (C-level row rearrangement)
        # instead of per-expression closure calls.
        names = [t.name for t in query.target_list]
        slots = self._var_only_slots(target_exprs, varmap)
        if slots is not None:
            plan = _make_slice(plan, slots, names)
        else:
            compiler = self._compiler(varmap)
            exprs = [compiler.compile(e) for e in target_exprs]
            slot_hints = self._slot_hints(target_exprs, varmap)
            plan = ProjectNode(
                plan, exprs, names,
                slots=slot_hints,
                batch_exprs=self._batch_target_exprs(
                    compiler, target_exprs, slot_hints
                ),
            )
        if query.distinct and not skip_distinct:
            plan = DistinctNode(plan)
        return plan

    @staticmethod
    def _var_only_slots(
        target_exprs: list[ex.Expr], varmap: VarMap
    ) -> Optional[list[int]]:
        """Input slots when every target is a local Var; None otherwise."""
        slots: list[int] = []
        for expr in target_exprs:
            if not isinstance(expr, ex.Var) or expr.levelsup != 0:
                return None
            slot = varmap.get((expr.varno, expr.varattno))
            if slot is None:
                return None
            slots.append(slot)
        return slots

    @staticmethod
    def _slot_hints(
        target_exprs: list[ex.Expr], varmap: VarMap
    ) -> list[Optional[int]]:
        """Per-position input slots for plain-Var targets (mixed lists)."""
        return [
            varmap.get((expr.varno, expr.varattno))
            if isinstance(expr, ex.Var) and expr.levelsup == 0
            else None
            for expr in target_exprs
        ]

    def _plan_from_where(self, query: Query) -> _Unit:
        # WHERE conjuncts are collected *first* so that conjuncts referencing
        # only the preserved side of an outer join can be pushed below it --
        # essential for the rewriter's sublink left-join chains, where the
        # whole FROM clause sits under a LEFT JOIN.
        where_conjuncts: list[ex.Expr] = []
        if query.jointree.quals is not None:
            where_conjuncts = split_conjuncts(query.jointree.quals)
        # Uncorrelated-sublink conjuncts may sink too: their subplans read
        # nothing from the enclosing layout, and filtering the preserved
        # side before an outer join is where the provenance rewrite's
        # original WHERE evaluated them.
        pushable = [
            c
            for c in where_conjuncts
            if ex.collect_vars(c)
            and not any(s.correlated for s in ex.collect_sublinks(c))
        ]
        non_pushable = [c for c in where_conjuncts if c not in pushable]
        units: list[_Unit] = []
        conjuncts: list[ex.Expr] = []
        for item in query.jointree.items:
            self._flatten_inner(item, query, units, conjuncts, pushable)
        # Outer-join pushdown consumed some of ``pushable``; the rest (and
        # the sublink/no-var conjuncts) apply at this level.
        conjuncts.extend(pushable)
        conjuncts.extend(non_pushable)

        if not units:
            base: PlanNode = OneRow()
            unit = _Unit(base, {}, set())
            for conjunct in conjuncts:
                unit = _Unit(
                    self._filter_node(unit.plan, self._compiler({}), conjunct),
                    {},
                    set(),
                )
            return unit

        # Classify conjuncts: single-unit filters are pushed down
        # (sublink conjuncts too — the subplan compiles against the
        # unit's layout, and filtering before the joins is where a
        # pulled-up subquery evaluated it); multi-unit sublink conjuncts
        # run after all joins; the rest participate in joins.
        join_pool: list[ex.Expr] = []
        late: list[ex.Expr] = []
        for conjunct in conjuncts:
            if any(s.correlated for s in ex.collect_sublinks(conjunct)):
                # A correlated sublink body may reference any unit; it
                # must see the full joined layout.
                late.append(conjunct)
                continue
            vars_used = ex.collect_vars(conjunct)
            owners = {self._unit_of(units, var.varno) for var in vars_used}
            if len(owners) == 1:
                unit = owners.pop()
                self._push_conjunct(unit, conjunct)
            elif ex.contains_sublink(conjunct) or len(owners) == 0:
                late.append(conjunct)
            else:
                join_pool.append(conjunct)

        joined = self._greedy_join(units, join_pool)
        for conjunct in late:
            joined.plan = self._filter_node(
                joined.plan, self._compiler(joined.varmap), conjunct
            )
        return joined

    @staticmethod
    def _push_filter(unit: _Unit, predicate, batch_predicate=None) -> None:
        """Attach a single-unit filter, merging into an existing scan
        predicate or filter node — conjuncts arrive one at a time and a
        stack of generator frames costs more than one combined check.

        Batch kernels accumulate as a list (applied in order over
        selection vectors); a conjunct without a batch form poisons the
        node's batch predicate so execution falls back to the row bridge
        rather than silently dropping the conjunct.
        """
        from repro.executor.nodes import SeqScan

        plan = unit.plan
        if isinstance(plan, SeqScan):
            had_predicate = plan.predicate is not None
            if not had_predicate:
                plan.predicate = predicate
            else:
                plan.predicate = _conjoin_predicates(plan.predicate, predicate)
            if batch_predicate is None:
                plan.batch_predicates = None
            elif had_predicate and plan.batch_predicates is None:
                pass  # earlier row-only conjunct already poisoned batch mode
            else:
                if plan.batch_predicates is None:
                    plan.batch_predicates = []
                plan.batch_predicates.append(batch_predicate)
            plan.estimate = max(plan.estimate * 0.25, 1.0)
            return
        if isinstance(plan, FilterNode):
            plan.predicate = _conjoin_predicates(plan.predicate, predicate)
            if batch_predicate is None or plan.batch_predicates is None:
                plan.batch_predicates = None
            else:
                plan.batch_predicates.append(batch_predicate)
            plan.estimate = max(plan.estimate * 0.25, 1.0)
            return
        unit.plan = FilterNode(
            plan,
            predicate,
            [batch_predicate] if batch_predicate is not None else None,
        )

    @staticmethod
    def _unit_of(units: list[_Unit], rtindex: int) -> _Unit:
        for unit in units:
            if rtindex in unit.rtindexes:
                return unit
        raise PlanError(f"range table index {rtindex} not found in any join unit")

    def _flatten_inner(
        self,
        node: JoinTreeNode,
        query: Query,
        units: list[_Unit],
        conjuncts: list[ex.Expr],
        pushable: Optional[list[ex.Expr]] = None,
    ) -> None:
        if isinstance(node, RangeTableRef):
            units.append(self._plan_rte(node.rtindex, query.range_table[node.rtindex]))
            return
        pair = self._fused_pair(query, node)
        if pair is not None:
            # Aggregation-join fusion: the pair's group-key quals are
            # enforced by the fused hash join itself.
            units.append(self._plan_fused_unit(query, pair))
            return
        if node.join_type == "inner":
            self._flatten_inner(node.left, query, units, conjuncts, pushable)
            self._flatten_inner(node.right, query, units, conjuncts, pushable)
            if node.quals is not None:
                conjuncts.extend(split_conjuncts(node.quals))
            return
        units.append(self._plan_outer_join(node, query, pushable))

    # -- aggregation-join fusion (Query.agg_share) -----------------------------

    @staticmethod
    def _fused_pair(
        query: Query, node: JoinTreeNode
    ) -> Optional[tuple[int, int, tuple[int, ...]]]:
        if (
            not query.agg_shares
            or not isinstance(node, JoinTreeExpr)
            or node.join_type not in ("inner", "cross")
            or not isinstance(node.left, RangeTableRef)
            or not isinstance(node.right, RangeTableRef)
        ):
            return None
        indexes = {node.left.rtindex, node.right.rtindex}
        for pair in query.agg_shares:
            if set(pair[:2]) == indexes:
                return pair
        return None

    def _plan_fused_unit(
        self, query: Query, pair: tuple[int, int, tuple[int, ...]]
    ) -> _Unit:
        """Plan the ``q_agg ⋈ d+`` pair over one shared, materialized core.

        The optimizer verified that both subqueries' FROM/WHERE produce
        the same bag of rows and that their range tables are numbered
        isomorphically (the provenance side only appends output columns),
        so the aggregate side's expressions compile directly against the
        core's variable layout.  The core runs once: the aggregation
        consumes the materialization, then the provenance projection
        re-reads it while hash-joining the aggregate rows back on the
        (null-safe) group keys.
        """
        from repro.executor.nodes import MaterializeNode

        agg_index, prov_index, positions = pair
        agg = query.range_table[agg_index].subquery
        prov = query.range_table[prov_index].subquery
        assert agg is not None and prov is not None

        inner = self._sub_planner()
        core = inner._plan_from_where(prov)
        mat = MaterializeNode(core.plan)

        # Provenance-side projection over the core.  When every output is
        # a plain column reference (the rewriter's usual shape) no
        # projection runs at all — the parent's Vars map straight onto
        # core slots and the join emits raw core rows.
        names = [t.name for t in prov.target_list]
        target_exprs = [t.expr for t in prov.target_list]
        slots = self._var_only_slots(target_exprs, core.varmap)
        if slots is not None:
            left: PlanNode = mat
            b_slots = slots
        else:
            compiler = inner._compiler(core.varmap)
            slot_hints = self._slot_hints(target_exprs, core.varmap)
            left = ProjectNode(
                mat,
                [compiler.compile(e) for e in target_exprs],
                names,
                slots=slot_hints,
                batch_exprs=self._batch_target_exprs(
                    compiler, target_exprs, slot_hints
                ),
            )
            b_slots = list(range(len(target_exprs)))

        # Aggregate-side pipeline (agg + having + targets + sort/limit)
        # over the same materialization.  A structurally shared twin
        # elsewhere in the statement (Q13's inner aggregate, a HAVING
        # sublink's body) reuses one plan through the subplan registry.
        agg_plan: Optional[PlanNode] = None
        if agg.share_candidate:
            agg_plan = self.shared.lookup(agg)
        if agg_plan is None:
            agg_plan = self._sub_planner().plan(
                agg, joined=_Unit(mat, dict(core.varmap), set(core.rtindexes))
            )
            if agg.share_candidate:
                agg_plan = self.shared.remember(agg, agg_plan)

        if positions:
            left_keys = [_slot_reader(b_slots[i]) for i in range(len(positions))]
            right_keys = [_slot_reader(p) for p in positions]
            join: PlanNode = HashJoin(
                left,
                agg_plan,
                "inner",
                left_keys,
                right_keys,
                None,
                [True] * len(positions),
                batch_left_keys=(
                    [_slot_column(b_slots[i]) for i in range(len(positions))]
                    if self.vectorize
                    else None
                ),
                batch_right_keys=(
                    [_slot_column(p) for p in positions]
                    if self.vectorize
                    else None
                ),
            )
        else:
            # Grand aggregate: a single aggregate row attaches to every
            # core row (and none when the core is empty — footnote 4).
            join = NestedLoopJoin(left, agg_plan, "inner", None)

        b_width = left.width()
        varmap: VarMap = {
            (prov_index, p): b_slots[p] for p in range(len(target_exprs))
        }
        for slot in range(agg_plan.width()):
            varmap[(agg_index, slot)] = b_width + slot
        return _Unit(
            join, varmap, {agg_index, prov_index}, from_subquery=True
        )

    def _plan_join_operand(
        self,
        node: JoinTreeNode,
        query: Query,
        extra_conjuncts: Optional[list[ex.Expr]] = None,
        pushable: Optional[list[ex.Expr]] = None,
    ) -> _Unit:
        """Plan a join subtree standalone (used under outer joins)."""
        units: list[_Unit] = []
        conjuncts: list[ex.Expr] = list(extra_conjuncts or [])
        self._flatten_inner(node, query, units, conjuncts, pushable)
        if len(units) == 1 and not conjuncts:
            return units[0]
        late = [c for c in conjuncts if ex.contains_sublink(c)]
        pool = []
        for conjunct in conjuncts:
            if ex.contains_sublink(conjunct):
                continue
            # Single-unit conjuncts filter at the scan, exactly as in
            # _plan_from_where — without this, a filter that lived inside
            # a pulled-up subquery would run as a join residual.
            vars_used = ex.collect_vars(conjunct)
            owners = {self._unit_of(units, var.varno) for var in vars_used}
            if len(owners) == 1:
                unit = owners.pop()
                self._push_conjunct(unit, conjunct)
            else:
                pool.append(conjunct)
        joined = self._greedy_join(units, pool)
        for conjunct in late:
            joined.plan = self._filter_node(
                joined.plan, self._compiler(joined.varmap), conjunct
            )
        return joined

    def _plan_outer_join(
        self,
        node: JoinTreeExpr,
        query: Query,
        pushable: Optional[list[ex.Expr]] = None,
    ) -> _Unit:
        from repro.analyzer.query_tree import jointree_rtindexes

        # WHERE conjuncts referencing only the preserved side can move
        # below the outer join (they filter preserved rows identically
        # before or after null extension of the other side).
        left_extra: list[ex.Expr] = []
        right_extra: list[ex.Expr] = []
        if pushable:
            if node.join_type == "left":
                preserved, extras = set(jointree_rtindexes(node.left)), left_extra
            elif node.join_type == "right":
                preserved, extras = set(jointree_rtindexes(node.right)), right_extra
            else:
                preserved, extras = set(), []
            if preserved:
                for conjunct in list(pushable):
                    vars_used = ex.collect_vars(conjunct)
                    if vars_used and all(v.varno in preserved for v in vars_used):
                        extras.append(conjunct)
                        pushable.remove(conjunct)
        # The pool may only flow into the preserved side: pushing WHERE
        # conjuncts below the null-producing side would let null-extended
        # rows survive that the original WHERE eliminates.
        left_pool = pushable if node.join_type == "left" else None
        right_pool = pushable if node.join_type == "right" else None
        left = self._plan_join_operand(node.left, query, left_extra, left_pool)
        right = self._plan_join_operand(node.right, query, right_extra, right_pool)
        merged_map = dict(left.varmap)
        offset = left.plan.width()
        for key, slot in right.varmap.items():
            merged_map[key] = slot + offset
        condition_conjuncts = (
            split_conjuncts(node.quals) if node.quals is not None else []
        )
        # ON-condition conjuncts over the null-producing side alone
        # pre-filter that input: ``L LEFT JOIN R ON (c AND w(R))`` is
        # ``L LEFT JOIN (σ_w R) ON c``.  (Preserved-side conjuncts must
        # stay in the condition — they decide null extension, not row
        # survival.)
        if node.join_type in ("left", "right"):
            nullable = right if node.join_type == "left" else left
            kept: list[ex.Expr] = []
            for conjunct in condition_conjuncts:
                vars_used = ex.collect_vars(conjunct)
                if (
                    vars_used
                    and not ex.contains_sublink(conjunct)
                    and all(v.varno in nullable.rtindexes for v in vars_used)
                ):
                    self._push_conjunct(nullable, conjunct)
                else:
                    kept.append(conjunct)
            condition_conjuncts = kept
        plan = self._make_join(
            left, right, merged_map, node.join_type, condition_conjuncts
        )
        return _Unit(
            plan,
            merged_map,
            left.rtindexes | right.rtindexes,
            from_subquery=left.from_subquery or right.from_subquery,
        )

    def _make_join(
        self,
        left: _Unit,
        right: _Unit,
        merged_map: VarMap,
        join_type: str,
        conjuncts: list[ex.Expr],
    ) -> PlanNode:
        # ``ON TRUE`` (the rewriter's unconditional join marker) adds
        # nothing: dropping it turns the join into the condition-free
        # nested loop, which has the cheap vectorized cross-product path.
        conjuncts = [
            c
            for c in conjuncts
            if not (isinstance(c, ex.Const) and c.value is True)
        ]
        left_keys, right_keys, null_safe, residual = extract_equi_keys(
            conjuncts, left, right
        )
        compiler = self._compiler(merged_map)
        if left_keys:
            left_compiler = self._compiler(left.varmap)
            right_compiler = self._compiler(right.varmap)
            residual_fn = (
                compiler.compile(conjoin(residual)) if residual else None
            )
            return HashJoin(
                left.plan,
                right.plan,
                join_type,
                [left_compiler.compile(k) for k in left_keys],
                [right_compiler.compile(k) for k in right_keys],
                residual_fn,
                null_safe,
                batch_left_keys=self._batch_compile_all(left_compiler, left_keys),
                batch_right_keys=self._batch_compile_all(
                    right_compiler, right_keys
                ),
                batch_residual=(
                    self._batch_compile(compiler, conjoin(residual))
                    if residual
                    else None
                ),
            )
        condition_fn = compiler.compile(conjoin(conjuncts)) if conjuncts else None
        return NestedLoopJoin(
            left.plan,
            right.plan,
            join_type,
            condition_fn,
            batch_condition=(
                self._batch_compile(compiler, conjoin(conjuncts))
                if conjuncts
                else None
            ),
        )

    def _greedy_join(self, units: list[_Unit], pool: list[ex.Expr]) -> _Unit:
        """Left-deep greedy join ordering over inner-join units."""
        remaining = list(units)
        pool = list(pool)
        # Start from the smallest estimated *base* unit; subquery-derived
        # units (aggregates re-attached by the provenance rewrite) join
        # last, after the base join chain narrowed the row stream.
        remaining.sort(key=lambda u: (u.from_subquery, u.plan.estimate))
        current = remaining.pop(0)
        while remaining:
            connected = [
                (i, unit)
                for i, unit in enumerate(remaining)
                if any(self._connects(c, current, unit) for c in pool)
            ]
            candidates = connected or list(enumerate(remaining))
            best_index = min(
                candidates,
                key=lambda pair: (pair[1].from_subquery, pair[1].plan.estimate),
            )[0]
            next_unit = remaining.pop(best_index)
            applicable: list[ex.Expr] = []
            still_pooled: list[ex.Expr] = []
            combined_rts = current.rtindexes | next_unit.rtindexes
            for conjunct in pool:
                vars_used = ex.collect_vars(conjunct)
                if vars_used and all(v.varno in combined_rts for v in vars_used):
                    applicable.append(conjunct)
                else:
                    still_pooled.append(conjunct)
            pool = still_pooled
            merged_map = dict(current.varmap)
            offset = current.plan.width()
            for key, slot in next_unit.varmap.items():
                merged_map[key] = slot + offset
            plan = self._make_join(current, next_unit, merged_map, "inner", applicable)
            current = _Unit(plan, merged_map, combined_rts)
        for conjunct in pool:
            # Conjuncts referencing no vars (constants) or left over.
            current.plan = self._filter_node(
                current.plan, self._compiler(current.varmap), conjunct
            )
        return current

    @staticmethod
    def _connects(conjunct: ex.Expr, left: _Unit, right: _Unit) -> bool:
        if not (isinstance(conjunct, ex.OpExpr) and conjunct.op in ("=", "<=>")):
            return False
        vars_used = ex.collect_vars(conjunct)
        touches_left = any(v.varno in left.rtindexes for v in vars_used)
        touches_right = any(v.varno in right.rtindexes for v in vars_used)
        return touches_left and touches_right

    # -- aggregation ---------------------------------------------------------------------

    def _plan_aggregation(
        self, query: Query, joined: _Unit
    ) -> tuple[PlanNode, VarMap, list[ex.Expr]]:
        from repro.executor.aggregates import make_aggregate_factory

        aggrefs: list[ex.Aggref] = []

        def collect(expr: ex.Expr) -> None:
            for node in ex.walk(expr):
                if isinstance(node, ex.Aggref) and node not in aggrefs:
                    aggrefs.append(node)

        for target in query.target_list:
            collect(target.expr)
        if query.having is not None:
            collect(query.having)

        input_compiler = self._compiler(joined.varmap)
        group_fns = [input_compiler.compile(g) for g in query.group_clause]
        agg_factories = []
        agg_args: list[Optional[Callable]] = []
        # Distinct argument expressions are compiled (and evaluated) once;
        # sum(x) and avg(x) share one evaluation of x per input row.
        arg_slots: list[Optional[int]] = []
        unique_arg_exprs: list[ex.Expr] = []
        unique_arg_fns: list[Callable] = []
        for aggref in aggrefs:
            agg_factories.append(
                make_aggregate_factory(aggref.aggname, aggref.star, aggref.distinct)
            )
            if aggref.arg is None:
                agg_args.append(None)
                arg_slots.append(None)
                continue
            try:
                slot = unique_arg_exprs.index(aggref.arg)
            except ValueError:
                slot = len(unique_arg_exprs)
                unique_arg_exprs.append(aggref.arg)
                unique_arg_fns.append(input_compiler.compile(aggref.arg))
            agg_args.append(unique_arg_fns[slot])
            arg_slots.append(slot)
        group_count = len(query.group_clause)
        output_names = [f"g{i}" for i in range(group_count)] + [
            f"agg{i}" for i in range(len(aggrefs))
        ]
        agg_plan: PlanNode = HashAggregate(
            joined.plan,
            group_fns,
            agg_factories,
            agg_args,
            output_names,
            arg_slots=arg_slots,
            unique_args=unique_arg_fns,
            batch_group_exprs=self._batch_compile_all(
                input_compiler, list(query.group_clause)
            ),
            batch_unique_args=self._batch_compile_all(
                input_compiler, unique_arg_exprs
            ),
        )
        post_varmap: VarMap = {
            (_POST_AGG_VARNO, slot): slot for slot in range(group_count + len(aggrefs))
        }

        # Rewrite post-aggregation expressions: whole-group-expr matches and
        # Aggrefs become Vars over the aggregate output.
        group_slots = list(enumerate(query.group_clause))

        def replace(expr: ex.Expr) -> ex.Expr:
            for slot, group_expr in group_slots:
                if expr == group_expr:
                    return ex.Var(
                        varno=_POST_AGG_VARNO,
                        varattno=slot,
                        type=expr.type,
                        name=f"g{slot}",
                    )
            if isinstance(expr, ex.Aggref):
                slot = group_count + aggrefs.index(expr)
                return ex.Var(
                    varno=_POST_AGG_VARNO, varattno=slot, type=expr.type, name=f"agg{slot}"
                )
            children = expr.children()
            if not children:
                return expr
            from repro.analyzer.expressions import rebuild_with_children

            return rebuild_with_children(expr, [replace(c) for c in children])

        target_exprs = [replace(t.expr) for t in query.target_list]
        if query.having is not None:
            agg_plan = self._filter_node(
                agg_plan, self._compiler(post_varmap), replace(query.having)
            )
        return agg_plan, post_varmap, target_exprs

    # -- set operations ---------------------------------------------------------------------

    def _plan_setop_query(self, query: Query) -> PlanNode:
        plan = self._plan_setop_tree(query.set_operations, query)
        plan = self._rename_output(plan, [t.name for t in query.target_list])
        return plan

    def _plan_setop_tree(self, node: SetOpTreeNode, query: Query) -> PlanNode:
        if isinstance(node, SetOpRangeRef):
            rte = query.range_table[node.rtindex]
            # Leaf subqueries are analyzed against the same outer scopes as
            # the set-operation node (no extra level), so the enclosing
            # layouts pass through unchanged — a correlated sublink whose
            # body is a set operation reads the same outer-row stack.
            return Planner(
                self.catalog,
                self.outer_varmaps,
                self.shared,
                vectorize=self.vectorize,
            ).plan(rte.subquery)
        left = self._plan_setop_tree(node.left, query)
        right = self._plan_setop_tree(node.right, query)
        return SetOpPlanNode(node.op, node.all, left, right)

    @staticmethod
    def _rename_output(plan: PlanNode, names: list[str]) -> PlanNode:
        plan.output_names = list(names)
        return plan

    # -- sort / limit / junk removal -------------------------------------------------------------

    def _apply_sort(self, query: Query, plan: PlanNode) -> PlanNode:
        if query.sort_clause:
            specs = [
                (clause.tlist_index, clause.descending, clause.nulls_first)
                for clause in query.sort_clause
            ]
            plan = SortNode(plan, specs)
        return plan

    def _apply_limit(self, query: Query, plan: PlanNode) -> PlanNode:
        if query.limit_count is not None or query.limit_offset is not None:
            count = self._const_int(query.limit_count)
            offset = self._const_int(query.limit_offset) or 0
            plan = LimitNode(plan, count, offset)
        return plan

    @staticmethod
    def _const_int(expr: Optional[ex.Expr]) -> Optional[int]:
        if expr is None:
            return None
        if not isinstance(expr, ex.Const):
            raise PlanError("LIMIT/OFFSET must be constants")
        return int(expr.value)

    @staticmethod
    def _slice_junk(query: Query, plan: PlanNode) -> PlanNode:
        if not any(t.resjunk for t in query.target_list):
            return plan
        keep = [i for i, t in enumerate(query.target_list) if not t.resjunk]
        names = [query.target_list[i].name for i in keep]
        return _make_slice(plan, keep, names)


def _make_slice(plan: PlanNode, keep: list[int], names: list[str]) -> PlanNode:
    """A SliceNode, pushed through unconditional nested loops.

    Slicing commutes with a condition-free cross product (the output is
    left columns followed by right columns) as long as the requested
    order keeps the sides contiguous, so the rearrangement runs on the
    operands — typically orders of magnitude fewer rows than the
    product.
    """
    from repro.executor.nodes import NestedLoopJoin

    left_width = plan.left.width() if isinstance(plan, NestedLoopJoin) else 0
    if (
        isinstance(plan, NestedLoopJoin)
        and plan.condition is None
        # Every left-side slot must precede every right-side slot.
        and all(
            not (a >= left_width and b < left_width)
            for a, b in zip(keep, keep[1:])
        )
    ):
        keep_left = [i for i in keep if i < left_width]
        keep_right = [i - left_width for i in keep if i >= left_width]
        left = plan.left
        right = plan.right
        if keep_left != list(range(left_width)):
            left = _make_slice(
                left, keep_left, [plan.left.output_names[i] for i in keep_left]
            )
        if keep_right != list(range(plan.right.width())):
            right = _make_slice(
                right,
                keep_right,
                [plan.right.output_names[i] for i in keep_right],
            )
        pushed = NestedLoopJoin(left, right, plan.join_type, None)
        pushed.output_names = list(names)
        return pushed
    return SliceNode(plan, keep, names)


# ---------------------------------------------------------------------------
# Conjunct utilities
# ---------------------------------------------------------------------------


def split_conjuncts(expr: ex.Expr) -> list[ex.Expr]:
    """Flatten nested AND chains into a conjunct list.

    OR nodes whose every arm shares common conjuncts are factored
    (``(a AND x) OR (a AND y)`` -> ``a AND (x OR y)``), which recovers the
    join predicate hidden inside TPC-H Q19's disjunction.
    """
    if isinstance(expr, ex.BoolOpExpr) and expr.op == "and":
        result: list[ex.Expr] = []
        for arg in expr.args:
            result.extend(split_conjuncts(arg))
        return result
    if isinstance(expr, ex.BoolOpExpr) and expr.op == "or":
        factored = _factor_or(expr)
        if factored is not None:
            return factored
    return [expr]


def _factor_or(expr: ex.BoolOpExpr) -> Optional[list[ex.Expr]]:
    """Extract conjuncts common to every arm of an OR, if any."""
    arms = [split_conjuncts(arg) for arg in expr.args]
    common = [c for c in arms[0] if all(any(c == d for d in arm) for arm in arms[1:])]
    if not common:
        return None
    remainders: list[ex.Expr] = []
    for arm in arms:
        rest = [c for c in arm if not any(c == k for k in common)]
        if not rest:
            # One arm is exactly the common part: the OR adds nothing more.
            return common
        remainders.append(conjoin(rest))
    return common + [ex.BoolOpExpr("or", tuple(remainders))]


def conjoin(conjuncts: list[ex.Expr]) -> ex.Expr:
    if len(conjuncts) == 1:
        return conjuncts[0]
    return ex.BoolOpExpr("and", tuple(conjuncts))


def extract_equi_keys(
    conjuncts: list[ex.Expr], left: _Unit, right: _Unit
) -> tuple[list[ex.Expr], list[ex.Expr], list[bool], list[ex.Expr]]:
    """Split conjuncts into hash-joinable equi keys and a residual list.

    Both plain ``=`` and the rewriter's null-safe ``<=>`` qualify; the
    returned flag list marks the null-safe keys.
    """
    left_keys: list[ex.Expr] = []
    right_keys: list[ex.Expr] = []
    null_safe: list[bool] = []
    residual: list[ex.Expr] = []
    for conjunct in conjuncts:
        if (
            isinstance(conjunct, ex.OpExpr)
            and conjunct.op in ("=", "<=>")
            and not ex.contains_sublink(conjunct)
        ):
            a, b = conjunct.args
            vars_a = ex.collect_vars(a)
            vars_b = ex.collect_vars(b)
            if vars_a and vars_b:
                a_in_left = all(v.varno in left.rtindexes for v in vars_a)
                a_in_right = all(v.varno in right.rtindexes for v in vars_a)
                b_in_left = all(v.varno in left.rtindexes for v in vars_b)
                b_in_right = all(v.varno in right.rtindexes for v in vars_b)
                if a_in_left and b_in_right:
                    left_keys.append(a)
                    right_keys.append(b)
                    null_safe.append(conjunct.op == "<=>")
                    continue
                if a_in_right and b_in_left:
                    left_keys.append(b)
                    right_keys.append(a)
                    null_safe.append(conjunct.op == "<=>")
                    continue
        residual.append(conjunct)
    return left_keys, right_keys, null_safe, residual
