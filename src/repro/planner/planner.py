"""Compatibility shim for the pre-split planner module.

The 1,100-line monolith that lived here was split into the pipeline
stages ``logical.py`` (query-tree decomposition, conjunct utilities),
``stats.py`` + ``cost.py`` (ANALYZE statistics and estimation) and
``physical.py`` / ``heuristic.py`` (plan emission and the two decision
strategies).  Existing imports keep working: ``Planner`` is the default
(cost-based) planner.
"""

from repro.planner.heuristic import HeuristicPlanner
from repro.planner.logical import (
    conjoin,
    extract_equi_keys,
    split_conjuncts,
)
from repro.planner.physical import (
    CostBasedPlanner,
    PlannerBase,
    _SharedSubplans,
    _Unit,
)

Planner = CostBasedPlanner

__all__ = [
    "CostBasedPlanner",
    "HeuristicPlanner",
    "Planner",
    "PlannerBase",
    "conjoin",
    "extract_equi_keys",
    "split_conjuncts",
]
