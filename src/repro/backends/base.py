"""The execution-backend protocol.

The paper's deployment model is that the provenance-rewritten query
``q+`` is *ordinary SQL* the host DBMS executes like any other query.
An :class:`ExecutionBackend` is one such host: it receives the analyzed
(and possibly provenance-rewritten) query tree after the Perm module ran
and returns the result rows.  The frontend pipeline — parser, analyzer,
view unfolding, provenance rewriter — is backend-independent, exactly as
in the DBMS-independent rewriting approach of Pintor et al.

Backends must be *faithful or loud*: a construct a backend cannot
execute with the engine's exact semantics raises
:class:`~repro.errors.BackendUnsupportedError` naming the feature.
Silently divergent results are never acceptable (the differential test
suite enforces this).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Iterator

from repro.analyzer import expressions as ex
from repro.analyzer.query_tree import JoinTreeExpr, Query, RTEKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.catalog.catalog import Catalog
    from repro.database import QueryResult


class ExecutionBackend(ABC):
    """Executes analyzed/rewritten query trees against catalog data."""

    #: Registry name; subclasses override.
    name = "abstract"

    #: Whether ``run_select`` accepts engine-level execution controls
    #: (``snapshot=``/``timeout=`` keyword arguments).  Only in-process
    #: backends that interpret plans themselves can honor these.
    supports_execution_controls = False

    def __init__(self, catalog: "Catalog") -> None:
        self.catalog = catalog

    @abstractmethod
    def run_select(self, query: Query) -> "QueryResult":
        """Execute one analyzed (and provenance-rewritten) query tree."""

    def close(self) -> None:
        """Release backend resources (connections, mirrored data)."""

    def describe(self) -> str:
        """One-line human description for the CLI."""
        return self.name


# ---------------------------------------------------------------------------
# Query-tree inspection shared by data-shipping backends
# ---------------------------------------------------------------------------


def _query_expressions(query: Query) -> Iterator[ex.Expr]:
    for target in query.target_list:
        yield target.expr
    if query.jointree.quals is not None:
        yield query.jointree.quals
    stack = list(query.jointree.items)
    while stack:
        node = stack.pop()
        if isinstance(node, JoinTreeExpr):
            if node.quals is not None:
                yield node.quals
            stack.append(node.left)
            stack.append(node.right)
    yield from query.group_clause
    if query.having is not None:
        yield query.having
    if query.limit_count is not None:
        yield query.limit_count
    if query.limit_offset is not None:
        yield query.limit_offset


def collect_base_relations(query: Query) -> set[str]:
    """Names of all base relations a query tree reads, transitively.

    Descends into subquery range-table entries and into sublink
    subqueries inside expressions — everything a backend must have data
    for before it can execute the deparsed SQL.
    """
    found: set[str] = set()
    _collect(query, found)
    return found


def _collect(query: Query, found: set[str]) -> None:
    for rte in query.range_table:
        if rte.kind is RTEKind.RELATION and rte.relation_name:
            found.add(rte.relation_name)
        elif rte.subquery is not None:
            _collect(rte.subquery, found)
    for expr in _query_expressions(query):
        for node in ex.walk(expr):
            if isinstance(node, ex.SubLink):
                _collect(node.subquery, found)
