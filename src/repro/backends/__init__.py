"""Pluggable execution backends.

The compile pipeline (parse → analyze → provenance-rewrite) is shared;
*where the rewritten query runs* is a backend choice:

* ``python`` — the built-in planner/executor (reference semantics),
* ``sqlite`` — deparse to SQLite SQL and execute on an embedded
  ``sqlite3`` database, the paper's "q+ is an ordinary SQL query the
  DBMS executes" deployment model.
* ``sharded`` — hash-partitioned scatter-gather over N child backends
  with a semiring-native gather merge (``docs/sharding.md``); usually
  constructed through ``repro.connect(shards=N, shard_keys={...})``.

Select a backend with ``PermDatabase(backend="sqlite")``, switch at
runtime with ``PermDatabase.set_backend``, or register your own::

    from repro.backends import ExecutionBackend, register_backend

    class MyBackend(ExecutionBackend):
        name = "mydbms"
        def run_select(self, query): ...

    register_backend(MyBackend)

See ``docs/backends.md`` for the architecture and dialect caveats.
"""

from __future__ import annotations

from typing import Callable, Union

from repro.errors import PermError
from repro.backends.base import ExecutionBackend, collect_base_relations
from repro.backends.python_backend import PythonBackend
from repro.backends.sqlite_backend import SqliteBackend

#: A backend is selected by registry name or constructed from a factory
#: (any callable taking the catalog — typically the backend class itself).
BackendSpec = Union[str, Callable[..., ExecutionBackend]]

_REGISTRY: dict[str, Callable[..., ExecutionBackend]] = {}


def register_backend(factory: Callable[..., ExecutionBackend], name: str | None = None) -> None:
    """Register a backend factory under ``name`` (default: its ``name``)."""
    key = (name or getattr(factory, "name", "")).lower()
    if not key:
        raise PermError("backend factory needs a name")
    _REGISTRY[key] = factory


def backend_names() -> list[str]:
    """Registered backend names, sorted."""
    return sorted(_REGISTRY)


def create_backend(spec: BackendSpec, catalog) -> ExecutionBackend:
    """Instantiate a backend from a registry name or factory."""
    if isinstance(spec, str):
        key = spec.lower()
        if key not in _REGISTRY:
            known = ", ".join(backend_names())
            raise PermError(f"unknown backend {spec!r} (known: {known})")
        return _REGISTRY[key](catalog)
    backend = spec(catalog)
    if not isinstance(backend, ExecutionBackend):
        raise PermError(f"backend factory {spec!r} did not produce an ExecutionBackend")
    return backend


register_backend(PythonBackend)
register_backend(SqliteBackend)

# Imported after the registry exists: the sharded backend builds its
# children through create_backend.
from repro.sharding.backend import ShardedBackend  # noqa: E402

register_backend(ShardedBackend)

__all__ = [
    "ExecutionBackend",
    "PythonBackend",
    "ShardedBackend",
    "SqliteBackend",
    "BackendSpec",
    "backend_names",
    "collect_base_relations",
    "create_backend",
    "register_backend",
]
