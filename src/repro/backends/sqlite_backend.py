"""The SQLite execution backend: rewritten queries on a real DBMS.

Reproduces the paper's actual deployment model — the provenance-rewritten
query ``q+`` is handed to a host DBMS as ordinary SQL.  Here the host is
an embedded ``sqlite3`` database:

* catalog tables are mirrored into SQLite with **incremental sync**:
  each table's ``(uid, epoch, synced row count)`` is remembered, so after
  DML only the appended row suffix is shipped (a truncate or a
  drop-and-recreate bumps epoch/uid and triggers a full reload);
* the analyzed/rewritten query tree is deparsed with the
  :class:`~repro.sql.deparse.SqliteDialect`, which either translates a
  construct faithfully or raises
  :class:`~repro.errors.BackendUnsupportedError`;
* the ``perm_poly_*`` scalar/aggregate primitives are registered via
  ``create_function`` / ``create_aggregate``, with ``N[X]`` polynomials
  travelling through SQLite as canonical wire strings
  (:meth:`~repro.semiring.polynomial.Polynomial.to_wire`), so both
  witness-list *and* polynomial provenance semantics run natively;
* result rows are mapped back to engine values (ISO text → ``date``,
  0/1 → ``bool``, wire strings → :class:`Polynomial`) using the query
  tree's output types, preserving column naming and the annotation-column
  plumbing of :class:`~repro.database.QueryResult`.
"""

from __future__ import annotations

import datetime
import sqlite3
from typing import TYPE_CHECKING, Any, Iterable

from repro.datatypes import Interval, SQLType, parse_date
from repro.errors import BackendUnsupportedError, ExecutionError
from repro.analyzer.query_tree import Query
from repro.backends.base import ExecutionBackend, collect_base_relations
from repro.semiring.minting import mint_variable
from repro.semiring.polynomial import Polynomial
from repro.sql.deparse import SqliteDialect, deparse_query, get_dialect

if TYPE_CHECKING:  # pragma: no cover
    from repro.database import QueryResult
    from repro.storage.table import Table

#: Catalog column types → SQLite column affinities.
_AFFINITY = {
    SQLType.INTEGER: "INTEGER",
    SQLType.FLOAT: "REAL",
    SQLType.TEXT: "TEXT",
    SQLType.BOOLEAN: "INTEGER",
    SQLType.DATE: "TEXT",
    SQLType.POLYNOMIAL: "TEXT",
}


def _quote(name: str) -> str:
    return '"' + name.replace('"', '""') + '"'


def to_sqlite_value(value: Any) -> Any:
    """Engine value → SQLite storage value."""
    if isinstance(value, bool):  # before int: bool is an int subclass
        return int(value)
    if value is None or isinstance(value, (int, float, str)):
        return value
    if isinstance(value, datetime.date):
        return value.isoformat()
    if isinstance(value, Polynomial):
        return value.to_wire()
    if isinstance(value, Interval):
        raise BackendUnsupportedError("INTERVAL values in table data", "sqlite")
    raise ExecutionError(f"cannot ship value {value!r} to SQLite")


def from_sqlite_value(value: Any, sql_type: SQLType) -> Any:
    """SQLite result value → engine value, guided by the analyzed type."""
    if value is None:
        return None
    if sql_type is SQLType.DATE and isinstance(value, str):
        return parse_date(value)
    if sql_type is SQLType.BOOLEAN:
        return bool(value)
    if sql_type is SQLType.POLYNOMIAL and isinstance(value, str):
        return Polynomial.from_wire(value)
    if sql_type is SQLType.FLOAT and isinstance(value, int):
        return float(value)
    return value


# -- user functions ----------------------------------------------------------


def _udf(fn):
    """Wrap an engine scalar function as a SQLite user function."""

    def wrapped(*args):
        return to_sqlite_value(fn(*args))

    return wrapped


def _poly_token(relation, *identity):
    return Polynomial.variable(mint_variable(relation, identity)).to_wire()


def _poly_mul(*factors):
    product = Polynomial.one()
    for factor in factors:
        if factor is None:
            return None
        product = product * Polynomial.from_wire(factor)
    return product.to_wire()


def _poly_one():
    return Polynomial.one().to_wire()


def _poly_monus(left, right):
    # NULL subtrahend = nothing to remove (LEFT JOIN miss), as in the
    # Python engine's perm_poly_monus.
    if left is None:
        return None
    if right is None:
        return left
    return Polynomial.from_wire(left).monus(Polynomial.from_wire(right)).to_wire()


class _PolySum:
    """``create_aggregate`` adapter for the semiring sum of polynomials."""

    def __init__(self) -> None:
        self.total = Polynomial.zero()

    def step(self, value) -> None:
        if value is not None:
            self.total = self.total + Polynomial.from_wire(value)

    def finalize(self) -> str:
        return self.total.to_wire()


class SqliteBackend(ExecutionBackend):
    """Ship catalog data into SQLite and execute deparsed query trees."""

    name = "sqlite"

    def __init__(self, catalog) -> None:
        super().__init__(catalog)
        self.dialect: SqliteDialect = get_dialect("sqlite")
        # check_same_thread off: the sharded backend scatters per-shard
        # queries on pool threads.  The stdlib module is compiled in
        # serialized mode (sqlite3.threadsafety == 3), so cross-thread
        # use of one connection is locked inside SQLite itself.
        self._con = sqlite3.connect(":memory:", check_same_thread=False)
        # The engine's LIKE is case-sensitive (PostgreSQL semantics).
        self._con.execute("PRAGMA case_sensitive_like = ON")
        # Mirror state: table name -> (uid, epoch, rows synced).
        self._mirror: dict[str, tuple[int, int, int]] = {}
        self._statements = 0
        self._rows_shipped = 0
        self._register_functions()

    # -- protocol ----------------------------------------------------------

    def run_select(self, query: Query) -> "QueryResult":
        from repro.database import QueryResult

        sql = deparse_query(query, dialect=self.dialect)
        self.sync_tables(collect_base_relations(query))
        try:
            cursor = self._con.execute(sql)
            raw = cursor.fetchall()
        except sqlite3.Error as exc:
            raise ExecutionError(
                f"SQLite backend error: {exc}\n-- translated SQL --\n{sql}"
            ) from exc
        self._statements += 1
        types = query.output_types()
        rows = [
            tuple(from_sqlite_value(v, t) for v, t in zip(row, types))
            for row in raw
        ]
        return QueryResult(
            columns=query.output_columns(),
            rows=rows,
            annotation_column=query.annotation_column,
        )

    def close(self) -> None:
        self._con.close()
        self._mirror.clear()

    def describe(self) -> str:
        return (
            f"embedded SQLite {sqlite3.sqlite_version} "
            f"({self._statements} statements, {self._rows_shipped} rows shipped)"
        )

    # -- catalog mirroring -------------------------------------------------

    def sync_tables(self, names: Iterable[str]) -> None:
        """Bring the SQLite mirror of ``names`` up to date.

        Incremental: within one table epoch the heap only grows, so a
        clean mirror ships nothing and DML ships just the new suffix.
        """
        for name in sorted(names):
            self._sync_table(self.catalog.table(name))

    def _sync_table(self, table: "Table") -> None:
        key = table.name.lower()
        state = self._mirror.get(key)
        rows = table.raw_rows()
        if state is not None and state[0] == table.uid and state[1] == table.epoch:
            synced = state[2]
            if len(rows) > synced:
                self._insert_rows(table, rows[synced:])
                self._mirror[key] = (table.uid, table.epoch, len(rows))
            return
        # New, recreated or truncated table: full reload.
        self._con.execute(f"DROP TABLE IF EXISTS {_quote(key)}")
        columns = ", ".join(
            f"{_quote(col.name)} {self._affinity(table, col.type)}"
            for col in table.schema.columns
        )
        self._con.execute(f"CREATE TABLE {_quote(key)} ({columns})")
        if rows:
            self._insert_rows(table, rows)
        self._mirror[key] = (table.uid, table.epoch, len(rows))

    @staticmethod
    def _affinity(table: "Table", sql_type: SQLType) -> str:
        try:
            return _AFFINITY[sql_type]
        except KeyError:
            raise BackendUnsupportedError(
                f"{sql_type.value}-typed column in table {table.name!r}",
                "sqlite",
            ) from None

    def _insert_rows(self, table: "Table", rows: list[tuple]) -> None:
        width = len(table.schema.columns)
        placeholders = ", ".join("?" * width)
        statement = (
            f"INSERT INTO {_quote(table.name.lower())} VALUES ({placeholders})"
        )
        converted = [tuple(to_sqlite_value(v) for v in row) for row in rows]
        self._con.executemany(statement, converted)
        self._rows_shipped += len(rows)

    # -- function registration ---------------------------------------------

    def _register_functions(self) -> None:
        from repro.executor.expr_eval import SCALAR_FUNCTIONS

        con = self._con
        # Engine scalar functions whose SQLite builtin differs or is
        # missing; the dialect renames call sites to perm_<name>.
        for name in sorted(self.dialect.UDF_RENAMES):
            con.create_function(
                f"perm_{name}", -1, _udf(SCALAR_FUNCTIONS[name]), deterministic=True
            )
        # Provenance-polynomial primitives (wire-string domain).
        con.create_function("perm_poly_token", -1, _poly_token, deterministic=True)
        con.create_function("perm_poly_mul", -1, _poly_mul, deterministic=True)
        con.create_function("perm_poly_one", 0, _poly_one, deterministic=True)
        con.create_function("perm_poly_monus", 2, _poly_monus, deterministic=True)
        con.create_aggregate("perm_poly_sum", 1, _PolySum)
