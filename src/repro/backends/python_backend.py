"""The in-process Python backend: the repro's own physical layer.

This wraps the planner plus executor behind the
:class:`ExecutionBackend` protocol.  It is the default backend and the
semantic reference the other backends are differentially tested against.

Execution runs **vectorized** by default: the planner attaches batch
kernels to the plan and the engine pulls columnar
:class:`~repro.storage.chunk.Chunk` batches through ``run_batches``.
``vectorize=False`` (or ``PermDatabase(vectorize=False)``) switches to
the original tuple-at-a-time row engine — same plan shapes, same
semantics, differentially tested against each other.

Planning is **cost-based** by default: the statistics-driven
:class:`~repro.planner.physical.CostBasedPlanner` picks join orders and
operator strategies from ANALYZE statistics.  ``cost_based=False``
selects the legacy heuristic planner, kept as the differential baseline.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Optional

from repro.analyzer.query_tree import Query
from repro.backends.base import ExecutionBackend

if TYPE_CHECKING:  # pragma: no cover
    from repro.catalog.catalog import Catalog
    from repro.database import QueryResult


class PythonBackend(ExecutionBackend):
    """Plan and interpret query trees with the built-in executor."""

    name = "python"

    #: The in-process engine honors snapshot/timeout execution controls.
    supports_execution_controls = True

    #: Bound on the number of cached physical plans.
    PLAN_CACHE_SIZE = 64

    def __init__(
        self,
        catalog: "Catalog",
        vectorize: bool = True,
        cost_based: bool = True,
        parallel_workers: int = 1,
        morsel_size: Optional[int] = None,
        fuse_pipelines: bool = True,
        parallel_executor: str = "thread",
    ) -> None:
        super().__init__(catalog)
        self.vectorize = vectorize
        self.cost_based = cost_based
        #: Pipeline-fusion toggle (vectorized plans only); differential
        #: tests run fused vs. unfused engines against each other.
        self.fuse_pipelines = fuse_pipelines
        #: Fan-out for morsel-driven parallel scans (1 = serial).
        #: ``None`` resolves to the host CPU count at plan time.  Only
        #: the vectorized cost-based path parallelizes.
        self.parallel_workers = parallel_workers
        #: Morsel granularity override (None = repro.parallel default).
        self.morsel_size = morsel_size
        #: Worker-pool strategy for exchange dispatch: ``thread``
        #: (default), ``process`` (fork-based, GIL-free), ``serial``.
        self.parallel_executor = parallel_executor
        # Physical plans keyed by query-tree identity.  Plans are
        # re-runnable because all per-execution state (materialized
        # spools, sublink memos) lives in the ExecContext; the cached
        # Query reference keeps the id() key from being recycled.  DDL
        # invalidates via the catalog epoch, fresh statistics via the
        # stats epoch; vectorize/cost-based/parallel toggles via the key.
        self._plan_cache: dict[tuple, tuple[Query, object]] = {}
        self._plan_cache_epochs: tuple = (-1, -1)
        # Server sessions share one backend across handler threads, so
        # cache maintenance (epoch flush, LRU eviction) is serialized.
        self._plan_cache_lock = threading.Lock()

    def _resolved_workers(self) -> int:
        from repro.parallel import resolve_worker_count

        return resolve_worker_count(self.parallel_workers)

    def _plan(self, query: Query):
        from repro.planner import make_planner

        workers = self._resolved_workers() if self.vectorize else 1
        epochs = (
            getattr(self.catalog, "epoch", None),
            getattr(self.catalog, "stats_epoch", None),
        )
        key = (
            id(query),
            self.vectorize,
            self.cost_based,
            workers,
            self.morsel_size,
            self.fuse_pipelines,
            self.parallel_executor,
        )
        with self._plan_cache_lock:
            if epochs != self._plan_cache_epochs:
                self._plan_cache.clear()
                self._plan_cache_epochs = epochs
            entry = self._plan_cache.get(key)
        if entry is not None:
            return entry[1]
        plan = make_planner(
            self.catalog,
            cost_based=self.cost_based,
            vectorize=self.vectorize,
            parallel_workers=workers,
            morsel_size=self.morsel_size,
            fuse_pipelines=self.fuse_pipelines,
            parallel_executor=self.parallel_executor,
        ).plan(query)
        with self._plan_cache_lock:
            if len(self._plan_cache) >= self.PLAN_CACHE_SIZE:
                self._plan_cache.pop(next(iter(self._plan_cache)))
            self._plan_cache[key] = (query, plan)
        return plan

    def run_select(
        self,
        query: Query,
        snapshot: Optional[dict] = None,
        timeout: Optional[float] = None,
    ) -> "QueryResult":
        from repro.database import QueryResult
        from repro.executor.context import ExecContext
        from repro.executor.nodes import run_plan_rows
        from repro.storage.chunk import DEFAULT_BATCH_SIZE

        plan = self._plan(query)
        ctx = ExecContext(
            batch_size=plan.batch_size_hint or DEFAULT_BATCH_SIZE,
            vectorized=self.vectorize,
            snapshot=snapshot,
            deadline=None if timeout is None else time.monotonic() + timeout,
        )
        rows = run_plan_rows(plan, ctx)
        return QueryResult(
            columns=list(plan.output_names),
            rows=rows,
            annotation_column=query.annotation_column,
        )

    def describe(self) -> str:
        mode = "vectorized" if self.vectorize else "row-at-a-time"
        planner = "cost-based" if self.cost_based else "heuristic"
        return (
            f"in-process Python planner/executor ({mode}, {planner} planner, "
            "reference semantics)"
        )
