"""The in-process Python backend: the repro's own physical layer.

This wraps the planner plus executor behind the
:class:`ExecutionBackend` protocol.  It is the default backend and the
semantic reference the other backends are differentially tested against.

Execution runs **vectorized** by default: the planner attaches batch
kernels to the plan and the engine pulls columnar
:class:`~repro.storage.chunk.Chunk` batches through ``run_batches``.
``vectorize=False`` (or ``PermDatabase(vectorize=False)``) switches to
the original tuple-at-a-time row engine — same plan shapes, same
semantics, differentially tested against each other.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analyzer.query_tree import Query
from repro.backends.base import ExecutionBackend

if TYPE_CHECKING:  # pragma: no cover
    from repro.catalog.catalog import Catalog
    from repro.database import QueryResult


class PythonBackend(ExecutionBackend):
    """Plan and interpret query trees with the built-in executor."""

    name = "python"

    #: Bound on the number of cached physical plans.
    PLAN_CACHE_SIZE = 64

    def __init__(self, catalog: "Catalog", vectorize: bool = True) -> None:
        super().__init__(catalog)
        self.vectorize = vectorize
        # Physical plans keyed by query-tree identity.  Plans are
        # re-runnable because all per-execution state (materialized
        # spools, sublink memos) lives in the ExecContext; the cached
        # Query reference keeps the id() key from being recycled.  DDL
        # invalidates via the catalog epoch; a vectorize toggle via the
        # mode in the key.
        self._plan_cache: dict[tuple[int, bool], tuple[Query, object]] = {}
        self._plan_cache_epoch = -1

    def _plan(self, query: Query):
        from repro.planner.planner import Planner

        epoch = getattr(self.catalog, "epoch", None)
        if epoch != self._plan_cache_epoch:
            self._plan_cache.clear()
            self._plan_cache_epoch = epoch
        key = (id(query), self.vectorize)
        entry = self._plan_cache.get(key)
        if entry is not None:
            return entry[1]
        plan = Planner(self.catalog, vectorize=self.vectorize).plan(query)
        if len(self._plan_cache) >= self.PLAN_CACHE_SIZE:
            self._plan_cache.pop(next(iter(self._plan_cache)))
        self._plan_cache[key] = (query, plan)
        return plan

    def run_select(self, query: Query) -> "QueryResult":
        from repro.database import QueryResult
        from repro.executor.context import ExecContext
        from repro.executor.nodes import run_plan_rows

        plan = self._plan(query)
        rows = run_plan_rows(plan, ExecContext(vectorized=self.vectorize))
        return QueryResult(
            columns=list(plan.output_names),
            rows=rows,
            annotation_column=query.annotation_column,
        )

    def describe(self) -> str:
        mode = "vectorized" if self.vectorize else "row-at-a-time"
        return f"in-process Python planner/executor ({mode}, reference semantics)"
