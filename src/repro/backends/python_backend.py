"""The in-process Python backend: the original planner/executor pipeline.

This wraps the repro's own physical layer (``repro.planner`` +
``repro.executor``) behind the :class:`ExecutionBackend` protocol with
zero behavior change — it is the default backend and the semantic
reference the other backends are differentially tested against.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analyzer.query_tree import Query
from repro.backends.base import ExecutionBackend

if TYPE_CHECKING:  # pragma: no cover
    from repro.database import QueryResult


class PythonBackend(ExecutionBackend):
    """Plan and interpret query trees with the built-in executor."""

    name = "python"

    def run_select(self, query: Query) -> "QueryResult":
        from repro.database import QueryResult
        from repro.executor.context import ExecContext
        from repro.planner.planner import Planner

        plan = Planner(self.catalog).plan(query)
        rows = list(plan.run(ExecContext()))
        return QueryResult(
            columns=list(plan.output_names),
            rows=rows,
            annotation_column=query.annotation_column,
        )

    def describe(self) -> str:
        return "in-process Python planner/executor (reference semantics)"
