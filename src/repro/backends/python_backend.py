"""The in-process Python backend: the repro's own physical layer.

This wraps the planner plus executor behind the
:class:`ExecutionBackend` protocol.  It is the default backend and the
semantic reference the other backends are differentially tested against.

Execution runs **vectorized** by default: the planner attaches batch
kernels to the plan and the engine pulls columnar
:class:`~repro.storage.chunk.Chunk` batches through ``run_batches``.
``vectorize=False`` (or ``PermDatabase(vectorize=False)``) switches to
the original tuple-at-a-time row engine — same plan shapes, same
semantics, differentially tested against each other.

Planning is **cost-based** by default: the statistics-driven
:class:`~repro.planner.physical.CostBasedPlanner` picks join orders and
operator strategies from ANALYZE statistics.  ``cost_based=False``
selects the legacy heuristic planner, kept as the differential baseline.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analyzer.query_tree import Query
from repro.backends.base import ExecutionBackend

if TYPE_CHECKING:  # pragma: no cover
    from repro.catalog.catalog import Catalog
    from repro.database import QueryResult


class PythonBackend(ExecutionBackend):
    """Plan and interpret query trees with the built-in executor."""

    name = "python"

    #: Bound on the number of cached physical plans.
    PLAN_CACHE_SIZE = 64

    def __init__(
        self,
        catalog: "Catalog",
        vectorize: bool = True,
        cost_based: bool = True,
    ) -> None:
        super().__init__(catalog)
        self.vectorize = vectorize
        self.cost_based = cost_based
        # Physical plans keyed by query-tree identity.  Plans are
        # re-runnable because all per-execution state (materialized
        # spools, sublink memos) lives in the ExecContext; the cached
        # Query reference keeps the id() key from being recycled.  DDL
        # invalidates via the catalog epoch, fresh statistics via the
        # stats epoch; vectorize/cost-based toggles via the key.
        self._plan_cache: dict[tuple[int, bool, bool], tuple[Query, object]] = {}
        self._plan_cache_epochs: tuple = (-1, -1)

    def _plan(self, query: Query):
        from repro.planner import make_planner

        epochs = (
            getattr(self.catalog, "epoch", None),
            getattr(self.catalog, "stats_epoch", None),
        )
        if epochs != self._plan_cache_epochs:
            self._plan_cache.clear()
            self._plan_cache_epochs = epochs
        key = (id(query), self.vectorize, self.cost_based)
        entry = self._plan_cache.get(key)
        if entry is not None:
            return entry[1]
        plan = make_planner(
            self.catalog, cost_based=self.cost_based, vectorize=self.vectorize
        ).plan(query)
        if len(self._plan_cache) >= self.PLAN_CACHE_SIZE:
            self._plan_cache.pop(next(iter(self._plan_cache)))
        self._plan_cache[key] = (query, plan)
        return plan

    def run_select(self, query: Query) -> "QueryResult":
        from repro.database import QueryResult
        from repro.executor.context import ExecContext
        from repro.executor.nodes import run_plan_rows
        from repro.storage.chunk import DEFAULT_BATCH_SIZE

        plan = self._plan(query)
        ctx = ExecContext(
            batch_size=plan.batch_size_hint or DEFAULT_BATCH_SIZE,
            vectorized=self.vectorize,
        )
        rows = run_plan_rows(plan, ctx)
        return QueryResult(
            columns=list(plan.output_names),
            rows=rows,
            annotation_column=query.annotation_column,
        )

    def describe(self) -> str:
        mode = "vectorized" if self.vectorize else "row-at-a-time"
        planner = "cost-based" if self.cost_based else "heuristic"
        return (
            f"in-process Python planner/executor ({mode}, {planner} planner, "
            "reference semantics)"
        )
