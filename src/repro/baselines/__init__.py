"""Baseline provenance systems the paper compares against.

* :mod:`repro.baselines.cui_widom` -- lineage tracing via query inversion
  (Cui & Widom, ICDE'00): the correctness reference of section III-E and
  the representative of the list-of-relations representation whose
  drawbacks section III-B discusses.
* :mod:`repro.baselines.trio` -- a Trio-style eager lineage system used
  in the Fig. 15 performance comparison.
"""

from repro.baselines.cui_widom import lineage, lineage_of
from repro.baselines.trio import TrioSystem

__all__ = ["lineage", "lineage_of", "TrioSystem"]
