"""A Trio-style eager lineage system (the paper's Fig. 15 comparator).

Trio [Agrawal et al., 2006] computes provenance *eagerly*: every derived
table materializes together with *lineage relations* mapping each result
tuple id to the ids of its immediate input tuples.  Querying provenance
then traverses the lineage relations iteratively, step by step, joining
back to the base tables.

Faithful scope limitations (paper section II): only SPJ queries and
single-level set operations are supported -- "it does support neither
aggregation nor subqueries, and supports only single set operations".
Outer joins and sublinks raise :class:`TrioUnsupportedError`.

The measured quantities for the Fig. 15 reproduction:

* ``execute`` -- eager derivation with lineage materialization (done
  "beforehand" in the paper's setup),
* ``provenance`` -- querying the stored provenance by iterative lineage
  traversal (the time the paper reports for Trio).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.database import PermDatabase
from repro.errors import PermError
from repro.executor.context import ExecContext
from repro.executor.expr_eval import ExprCompiler
from repro.analyzer.analyzer import Analyzer
from repro.analyzer.query_tree import (
    Query,
    RangeTableRef,
    RTEKind,
    SetOpNode,
    SetOpRangeRef,
)
from repro.analyzer import expressions as ex
from repro.planner.logical import split_conjuncts


class TrioUnsupportedError(PermError):
    """Raised for query features outside Trio's supported subset."""


@dataclass
class DerivedTable:
    """A materialized derivation step with its lineage relation.

    ``lineage[i]`` lists the immediate parents of row ``i`` as
    ``(parent_table, parent_row_index)`` pairs; parent_table None means a
    base table named in ``base_parent``.
    """

    name: str
    columns: list[str]
    rows: list[tuple] = field(default_factory=list)
    lineage: list[list[tuple[Optional["DerivedTable"], str, int]]] = field(
        default_factory=list
    )


@dataclass
class TrioResult:
    """Handle to an eagerly derived result."""

    table: DerivedTable

    @property
    def rows(self) -> list[tuple]:
        return self.table.rows

    @property
    def columns(self) -> list[str]:
        return self.table.columns


class TrioSystem:
    """Eager-lineage PMS sharing a PermDatabase's base tables.

    Derived tables and their lineage relations are stored as ordinary
    relations in the database (Trio's ULDB encoding on top of
    PostgreSQL); provenance queries run tuple-at-a-time as SQL over the
    stored lineage relations, matching Trio's iterative tracing model.
    """

    def __init__(self, db: PermDatabase) -> None:
        self.db = db
        self._counter = 0
        self._base_copies: set[str] = set()

    # -- ULDB-style storage ---------------------------------------------------

    def _ensure_base_copy(self, name: str) -> str:
        """Materialize a base table copy with explicit tuple ids."""
        copy_name = f"trio_base_{name}"
        if name in self._base_copies:
            return copy_name
        from repro.catalog.schema import Column, TableSchema
        from repro.datatypes import SQLType

        table = self.db.catalog.table(name)
        columns = [Column("trio_id", SQLType.INTEGER)] + list(table.schema.columns)
        self.db.catalog.create_table(TableSchema(copy_name, columns))
        self.db.load_table(
            copy_name, [(i,) + tuple(row) for i, row in enumerate(table.raw_rows())]
        )
        self._base_copies.add(name)
        return copy_name

    def _store_lineage_relation(self, stage: DerivedTable) -> None:
        """Write one stage's lineage relation into the database."""
        from repro.catalog.schema import Column, TableSchema
        from repro.datatypes import SQLType

        schema = TableSchema(
            f"{stage.name}_lineage",
            [
                Column("out_id", SQLType.INTEGER),
                Column("parent_name", SQLType.TEXT),
                Column("parent_id", SQLType.INTEGER),
            ],
        )
        self.db.catalog.create_table(schema)
        rows = []
        for out_id, parents in enumerate(stage.lineage):
            for parent, name, parent_id in parents:
                stored_name = name if parent is not None else f"trio_base_{name}"
                rows.append((out_id, stored_name, parent_id))
        self.db.load_table(schema.name, rows)

    # -- derivation ----------------------------------------------------------

    def execute(self, sql: str) -> TrioResult:
        """Run a query eagerly, materializing lineage relations."""
        from repro.sql.parser import parse_statement
        from repro.sql import ast

        stmt = parse_statement(sql)
        if not isinstance(stmt, (ast.SelectStmt, ast.SetOpSelect)):
            raise TrioUnsupportedError("Trio baseline only executes SELECT")
        query = Analyzer(self.db.catalog).analyze(stmt)
        return TrioResult(self._derive(query))

    def _fresh_name(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}_{self._counter}"

    def _derive(self, query: Query) -> DerivedTable:
        if query.set_operations is not None:
            return self._derive_setop(query)
        return self._derive_spj(query)

    def _check_supported(self, query: Query) -> None:
        if query.has_aggs or query.group_clause or query.having is not None:
            raise TrioUnsupportedError("Trio does not support aggregation")
        for target in query.target_list:
            if ex.contains_sublink(target.expr):
                raise TrioUnsupportedError("Trio does not support subqueries")
        if query.jointree.quals is not None and ex.contains_sublink(
            query.jointree.quals
        ):
            raise TrioUnsupportedError("Trio does not support subqueries")
        for item in query.jointree.items:
            if not isinstance(item, RangeTableRef):
                raise TrioUnsupportedError("Trio does not support outer joins")

    # -- SPJ derivation ----------------------------------------------------------

    def _derive_spj(self, query: Query) -> DerivedTable:
        self._check_supported(query)
        ctx = ExecContext()

        # Stage 1: one filtered scan per range table entry.
        conjuncts = (
            split_conjuncts(query.jointree.quals)
            if query.jointree.quals is not None
            else []
        )
        scans: list[DerivedTable] = []
        remaining: list[ex.Expr] = []
        per_rte: dict[int, list[ex.Expr]] = {}
        for conjunct in conjuncts:
            owners = {v.varno for v in ex.collect_vars(conjunct)}
            if len(owners) == 1:
                per_rte.setdefault(owners.pop(), []).append(conjunct)
            else:
                remaining.append(conjunct)

        for rtindex, rte in enumerate(query.range_table):
            if rte.kind is RTEKind.SUBQUERY:
                source = self._derive(rte.subquery)
                source_rows = source.rows
                parent: Optional[DerivedTable] = source
                base_name = source.name
            else:
                source_rows = self.db.catalog.table(rte.relation_name).raw_rows()
                parent = None
                base_name = rte.relation_name
                self._ensure_base_copy(rte.relation_name)
            stage = DerivedTable(
                name=self._fresh_name(f"sigma_{rte.alias}"),
                columns=list(rte.column_names),
            )
            filters = per_rte.get(rtindex, [])
            varmap = {(rtindex, attno): attno for attno in range(rte.width())}
            compiled = [
                ExprCompiler(varmap).compile(f) for f in filters
            ]
            for index, row in enumerate(source_rows):
                if all(fn(row, ctx) is True for fn in compiled):
                    stage.rows.append(row)
                    stage.lineage.append([(parent, base_name, index)])
            self._store_lineage_relation(stage)
            scans.append(stage)

        # Stage 2: joins in FROM order (nested loop with applicable quals),
        # materializing a lineage pair per joined row.
        joined = scans[0]
        joined_map = {
            (0, attno): attno for attno in range(len(scans[0].columns))
        }
        placed = {0}
        for rtindex in range(1, len(scans)):
            next_stage = scans[rtindex]
            width = len(joined.columns)
            merged_map = dict(joined_map)
            for attno in range(len(next_stage.columns)):
                merged_map[(rtindex, attno)] = width + attno
            placed.add(rtindex)
            applicable = [
                c
                for c in remaining
                if {v.varno for v in ex.collect_vars(c)} <= placed
            ]
            remaining = [c for c in remaining if c not in applicable]
            compiled = [ExprCompiler(merged_map).compile(c) for c in applicable]
            out = DerivedTable(
                name=self._fresh_name("join"),
                columns=joined.columns + next_stage.columns,
            )
            for li, lrow in enumerate(joined.rows):
                for ri, rrow in enumerate(next_stage.rows):
                    combined = lrow + rrow
                    if all(fn(combined, ctx) is True for fn in compiled):
                        out.rows.append(combined)
                        out.lineage.append(
                            [(joined, joined.name, li), (next_stage, next_stage.name, ri)]
                        )
            self._store_lineage_relation(out)
            joined = out
            joined_map = merged_map

        if remaining:
            compiled = [ExprCompiler(joined_map).compile(c) for c in remaining]
            filtered = DerivedTable(
                name=self._fresh_name("filter"), columns=list(joined.columns)
            )
            for index, row in enumerate(joined.rows):
                if all(fn(row, ctx) is True for fn in compiled):
                    filtered.rows.append(row)
                    filtered.lineage.append([(joined, joined.name, index)])
            self._store_lineage_relation(filtered)
            joined = filtered

        # Stage 3: projection (1:1 lineage).
        compiler = ExprCompiler(joined_map)
        exprs = [compiler.compile(t.expr) for t in query.visible_targets]
        out = DerivedTable(
            name=self._fresh_name("project"),
            columns=[t.name for t in query.visible_targets],
        )
        seen: dict[tuple, int] = {}
        for index, row in enumerate(joined.rows):
            projected = tuple(fn(row, ctx) for fn in exprs)
            if query.distinct:
                if projected in seen:
                    out.lineage[seen[projected]].append((joined, joined.name, index))
                    continue
                seen[projected] = len(out.rows)
            out.rows.append(projected)
            out.lineage.append([(joined, joined.name, index)])
        self._store_lineage_relation(out)
        return out

    # -- set operation derivation ---------------------------------------------------

    def _derive_setop(self, query: Query) -> DerivedTable:
        node = query.set_operations
        if not isinstance(node, SetOpNode) or not (
            isinstance(node.left, SetOpRangeRef)
            and isinstance(node.right, SetOpRangeRef)
        ):
            raise TrioUnsupportedError("Trio supports only single set operations")
        left = self._derive(query.range_table[node.left.rtindex].subquery)
        right = self._derive(query.range_table[node.right.rtindex].subquery)
        out = DerivedTable(
            name=self._fresh_name(node.op), columns=list(left.columns)
        )

        left_index: dict[tuple, list[int]] = {}
        for i, row in enumerate(left.rows):
            left_index.setdefault(row, []).append(i)
        right_index: dict[tuple, list[int]] = {}
        for i, row in enumerate(right.rows):
            right_index.setdefault(row, []).append(i)

        def parents(row: tuple) -> list:
            found = [(left, left.name, i) for i in left_index.get(row, [])]
            found += [(right, right.name, i) for i in right_index.get(row, [])]
            return found

        if node.op == "union":
            if node.all:
                for i, row in enumerate(left.rows):
                    out.rows.append(row)
                    out.lineage.append([(left, left.name, i)])
                for i, row in enumerate(right.rows):
                    out.rows.append(row)
                    out.lineage.append([(right, right.name, i)])
            else:
                for row in dict.fromkeys(left.rows + right.rows):
                    out.rows.append(row)
                    out.lineage.append(parents(row))
        elif node.op == "intersect":
            emitted = set()
            for row in left.rows:
                if row in right_index and row not in emitted:
                    emitted.add(row)
                    out.rows.append(row)
                    out.lineage.append(parents(row))
        elif node.op == "except":
            emitted = set()
            for row in left.rows:
                if row not in right_index and row not in emitted:
                    emitted.add(row)
                    out.rows.append(row)
                    out.lineage.append(
                        [(left, left.name, i) for i in left_index[row]]
                        + [(right, right.name, i) for i in range(len(right.rows))]
                    )
        else:  # pragma: no cover
            raise TrioUnsupportedError(f"unsupported set operation {node.op!r}")
        self._store_lineage_relation(out)
        return out

    # -- provenance queries --------------------------------------------------------

    def provenance(self, result: TrioResult) -> list[tuple[tuple, dict[str, list[int]]]]:
        """Trace every result tuple back to base tuple ids.

        Iteratively resolves each derivation step's lineage relation, as
        Trio's provenance queries do, producing per result tuple the
        contributing row ids grouped by base table.
        """
        out: list[tuple[tuple, dict[str, list[int]]]] = []
        for index, row in enumerate(result.table.rows):
            base: dict[str, list[int]] = {}
            stack: list[tuple[Optional[DerivedTable], str, int]] = list(
                result.table.lineage[index]
            )
            while stack:
                parent, name, parent_index = stack.pop()
                if parent is None:
                    base.setdefault(name, []).append(parent_index)
                else:
                    stack.extend(parent.lineage[parent_index])
            out.append((row, base))
        return out

    def query_stored_provenance(self, result: TrioResult) -> list[tuple]:
        """Trace provenance through the *stored* lineage relations via SQL.

        This is the configuration the paper measures for Trio in Fig. 15:
        provenance was computed eagerly beforehand; the reported time is
        the time to query the stored provenance.  Tracing is
        tuple-at-a-time and step-at-a-time -- one SQL query per lineage
        hop, plus one per fetched base tuple -- which is Trio's iterative
        evaluation model for lineage queries.
        """
        rows: list[tuple] = []
        for out_id, row in enumerate(result.table.rows):
            base_rows: dict[str, set[tuple]] = {}
            stack: list[tuple[str, int]] = [(result.table.name, out_id)]
            while stack:
                stage_name, tid = stack.pop()
                parents = self.db.execute(
                    f"SELECT parent_name, parent_id FROM {stage_name}_lineage "
                    f"WHERE out_id = {tid}"
                )
                for parent_name, parent_id in parents.rows:
                    if parent_name.startswith("trio_base_"):
                        fetched = self.db.execute(
                            f"SELECT * FROM {parent_name} WHERE trio_id = {parent_id}"
                        )
                        base_rows.setdefault(parent_name, set()).add(
                            tuple(fetched.rows[0][1:])
                        )
                    else:
                        stack.append((parent_name, parent_id))
            combos: list[tuple] = [()]
            for name in sorted(base_rows):
                piece = sorted(base_rows[name], key=repr)
                combos = [existing + c for existing in combos for c in piece]
            for combo in combos:
                rows.append(row + combo)
        return rows

    def provenance_rows(self, result: TrioResult) -> list[tuple]:
        """Provenance in Perm's extended-tuple format, for comparisons."""
        rows: list[tuple] = []
        for row, base in self.provenance(result):
            pieces: list[list[tuple]] = []
            for table_name in sorted(base):
                table = self.db.catalog.table(table_name)
                pieces.append([tuple(table.raw_rows()[i]) for i in sorted(set(base[table_name]))])
            combos: list[tuple] = [()]
            for piece in pieces:
                combos = [existing + candidate for existing in combos for candidate in piece]
            for combo in combos:
                rows.append(row + combo)
        return rows
