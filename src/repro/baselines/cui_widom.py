"""Lineage tracing via query inversion (Cui & Widom, ICDE 2000).

The approach the paper uses both as related work and as the semantic
reference for its correctness proof (section III-E).  For a query (an
algebra expression) and one result tuple, the lineage is *a list of
subsets of the base relations* -- precisely the representation whose two
drawbacks motivate Perm's single-relation format (section III-B):

1. a list of relations is not expressible as a single algebra result, and
2. the association between result tuples and their contributors is lost
   when tracing sets of tuples.

The implementation materializes every intermediate result (as the paper
notes Cui's approach must) and walks the operator tree top-down, mapping
each result tuple to its direct contributors per the operator's
contribution semantics, recursing until base relations are reached.
"""

from __future__ import annotations

from collections import Counter

from repro.algebra.evaluate import AlgebraError, evaluate
from repro.algebra.operators import (
    Aggregate,
    AlgebraOp,
    BagDifference,
    BagIntersection,
    BagProject,
    BagUnion,
    BaseRelation,
    Cross,
    Join,
    Select,
    SetDifference,
    SetIntersection,
    SetProject,
    SetUnion,
)
from repro.storage.relation import Relation

# Lineage: base-relation reference id -> set of contributing rows.
Lineage = dict[int, frozenset[tuple]]


def lineage_of(
    op: AlgebraOp,
    db: dict[str, Relation],
    result_tuple: tuple,
    strict_fig1: bool = False,
) -> Lineage:
    """The lineage of one result tuple of ``op`` over ``db``."""
    result = evaluate(op, db, strict_fig1)
    if result.multiplicity(result_tuple) == 0:
        raise AlgebraError(f"tuple {result_tuple!r} is not in the result")
    return _merge([_trace(op, db, result_tuple, strict_fig1)])


def lineage(
    op: AlgebraOp, db: dict[str, Relation], strict_fig1: bool = False
) -> dict[tuple, Lineage]:
    """Lineage of every distinct result tuple of ``op``."""
    result = evaluate(op, db, strict_fig1)
    return {
        t: _trace(op, db, t, strict_fig1) for t in result.distinct_rows()
    }


def _empty(op: AlgebraOp) -> Lineage:
    return {ref.ref_id: frozenset() for ref in op.base_references()}


def _merge(parts: list[Lineage]) -> Lineage:
    merged: dict[int, set[tuple]] = {}
    for part in parts:
        for ref_id, rows in part.items():
            merged.setdefault(ref_id, set()).update(rows)
    return {ref_id: frozenset(rows) for ref_id, rows in merged.items()}


def _named(schema: list[str], row: tuple) -> dict:
    return dict(zip(schema, row))


def _trace(
    op: AlgebraOp, db: dict[str, Relation], t: tuple, strict: bool = False
) -> Lineage:
    if isinstance(op, BaseRelation):
        return {op.ref_id: frozenset([t])}

    if isinstance(op, Select):
        # σ: the tuple itself (it passed the filter unchanged).
        return _trace(op.input, db, t, strict)

    if isinstance(op, (SetProject, BagProject)):
        # Π: every input tuple projecting onto t contributes.
        source = evaluate(op.input, db, strict)
        schema = list(source.columns)
        contributors = [
            row
            for row in source.distinct_rows()
            if tuple(expr.eval(_named(schema, row)) for expr, _ in op.items) == t
        ]
        if not contributors:
            return _empty(op)
        return _merge([_trace(op.input, db, row, strict) for row in contributors])

    if isinstance(op, (Cross, Join)):
        return _trace_join(op, db, t, strict)

    if isinstance(op, Aggregate):
        # α: every tuple of t's group contributes (influence semantics).
        source = evaluate(op.input, db, strict)
        schema = list(source.columns)
        group_values = t[: len(op.group_by)]
        members = [
            row
            for row in source.distinct_rows()
            if tuple(_named(schema, row)[g] for g in op.group_by) == group_values
        ]
        if not members:
            return _empty(op)
        return _merge([_trace(op.input, db, row, strict) for row in members])

    if isinstance(op, (SetUnion, BagUnion, SetIntersection, BagIntersection)):
        # ∪/∩: equal tuples from either input contribute.
        parts: list[Lineage] = [_empty(op)]
        left = evaluate(op.left, db, strict)
        right = evaluate(op.right, db, strict).rename(list(left.columns))
        if left.multiplicity(t):
            parts.append(_trace(op.left, db, t, strict))
        if right.multiplicity(t):
            right_t = t  # same values; the right subtree resolves names itself
            parts.append(_trace(op.right, db, right_t, strict))
        return _merge(parts)

    if isinstance(op, (SetDifference, BagDifference)):
        # − (paper section III-C): T1 contributes t itself; from T2, the set
        # version contributes every tuple, the bag version every tuple
        # different from t.
        parts = [_empty(op), _trace(op.left, db, t, strict)]
        right = evaluate(op.right, db, strict)
        for row in right.distinct_rows():
            if isinstance(op, SetDifference) or row != t:
                parts.append(_trace(op.right, db, row, strict))
        return _merge(parts)

    raise AlgebraError(f"no contribution semantics for {op!r}")


def _trace_join(op, db: dict[str, Relation], t: tuple, strict: bool = False) -> Lineage:
    left = evaluate(op.left, db, strict)
    right = evaluate(op.right, db, strict)
    left_width = len(left.columns)
    left_part = t[:left_width]
    right_part = t[left_width:]
    schema = list(left.columns) + list(right.columns)
    condition = op.condition if isinstance(op, Join) else None
    kind = op.kind if isinstance(op, Join) else "inner"

    parts: list[Lineage] = [_empty(op)]
    matched = False
    if left.multiplicity(left_part) and right.multiplicity(right_part):
        combined = left_part + right_part
        if condition is None or condition.eval(_named(schema, combined)) is True:
            matched = True
            parts.append(_trace(op.left, db, left_part, strict))
            parts.append(_trace(op.right, db, right_part, strict))
    if not matched:
        # Null-extended outer-join tuples: only the non-null side counts.
        if kind in ("left", "full") and all(v is None for v in right_part):
            if left.multiplicity(left_part):
                parts.append(_trace(op.left, db, left_part, strict))
        if kind in ("right", "full") and all(v is None for v in left_part):
            if right.multiplicity(right_part):
                parts.append(_trace(op.right, db, right_part, strict))
    return _merge(parts)


def format_lineage(op: AlgebraOp, result: Lineage) -> str:
    """Render lineage in the paper's list-of-relations notation."""
    pieces = []
    for ref in op.base_references():
        rows = sorted(result.get(ref.ref_id, frozenset()), key=repr)
        inner = ", ".join(repr(row) for row in rows)
        pieces.append(f"{ref.name}: {{{inner}}}")
    return "(" + "; ".join(pieces) + ")"
