"""``N[X]`` provenance polynomials (how-provenance).

A provenance polynomial annotates a result tuple with *how* it was derived
from base tuples: each base tuple contributes an abstract variable, joins
multiply annotations and alternative derivations add them (Green et al.,
"Provenance Semirings").  ``N[X]`` -- polynomials with natural-number
coefficients over tuple variables -- is the most general such annotation
domain: evaluating a polynomial under a valuation into any commutative
semiring specializes it to that semiring's notion of provenance (bag
multiplicity, lineage, minimal cost, ...).

Polynomials are kept in a canonical normal form (a sorted sum of monomials
with collected coefficients), so structurally different derivations of the
same polynomial compare and hash equal.  Instances are immutable and
usable as SQL values: they flow through plan nodes, group keys and set
operations like any other cell value.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.semiring.semirings import Semiring

# A monomial maps variables to positive exponents; canonically a tuple of
# (variable, exponent) pairs sorted by variable name.
Monomial = tuple[tuple[str, int], ...]

_CONSTANT_MONOMIAL: Monomial = ()


class Polynomial:
    """An immutable, normalized ``N[X]`` polynomial."""

    __slots__ = ("_terms", "_hash")

    def __init__(self, terms: Optional[Mapping[Monomial, int]] = None) -> None:
        normalized: dict[Monomial, int] = {}
        if terms:
            for monomial, coefficient in terms.items():
                if coefficient < 0:
                    raise ValueError(
                        f"N[X] coefficients are natural numbers, got {coefficient}"
                    )
                if coefficient:
                    key = _normalize_monomial(monomial)
                    normalized[key] = normalized.get(key, 0) + coefficient
        self._terms: tuple[tuple[Monomial, int], ...] = tuple(
            sorted(normalized.items())
        )
        self._hash = hash(self._terms)

    # -- constructors -------------------------------------------------------

    @classmethod
    def zero(cls) -> "Polynomial":
        """The additive identity (annotation of an absent tuple)."""
        return _ZERO

    @classmethod
    def one(cls) -> "Polynomial":
        """The multiplicative identity (annotation of an unconditional fact)."""
        return _ONE

    @classmethod
    def variable(cls, name: str) -> "Polynomial":
        """The polynomial consisting of one tuple variable."""
        return cls({((name, 1),): 1})

    @classmethod
    def constant(cls, value: int) -> "Polynomial":
        return cls({_CONSTANT_MONOMIAL: value}) if value else _ZERO

    # -- semiring operations ------------------------------------------------

    def __add__(self, other: "Polynomial") -> "Polynomial":
        if not isinstance(other, Polynomial):
            return NotImplemented
        terms = dict(self._terms)
        for monomial, coefficient in other._terms:
            terms[monomial] = terms.get(monomial, 0) + coefficient
        return Polynomial(terms)

    @classmethod
    def sum_all(cls, polynomials: Iterable["Polynomial"]) -> "Polynomial":
        """The semiring sum of many polynomials in one normalization pass.

        Equivalent to folding ``+`` (addition is associative and
        commutative, and the result is canonical either way) but O(total
        terms) instead of re-normalizing the growing partial sum at every
        step — the accumulation pattern of the vectorized
        ``perm_poly_sum`` aggregate over a whole column.
        """
        terms: dict[Monomial, int] = {}
        get = terms.get
        for polynomial in polynomials:
            for monomial, coefficient in polynomial._terms:
                terms[monomial] = get(monomial, 0) + coefficient
        return cls(terms)

    def __mul__(self, other: "Polynomial") -> "Polynomial":
        if not isinstance(other, Polynomial):
            return NotImplemented
        terms: dict[Monomial, int] = {}
        for left_monomial, left_coeff in self._terms:
            for right_monomial, right_coeff in other._terms:
                merged = _multiply_monomials(left_monomial, right_monomial)
                terms[merged] = terms.get(merged, 0) + left_coeff * right_coeff
        return Polynomial(terms)

    def monus(self, other: "Polynomial") -> "Polynomial":
        """The m-semiring difference ``self ⊖ other`` on ``N[X]``.

        ``N[X]`` is naturally ordered coefficient-wise, and the monus
        induced by that order subtracts per monomial, truncating at zero:
        ``(a ⊖ b)[m] = max(0, a[m] - b[m])`` (Geerts & Poggi, "On database
        query languages for K-relations").  This makes ``⊖`` the smallest
        ``c`` with ``self ≤ other + c``, which is exactly what EXCEPT and
        deletion-delta maintenance need.

        Caveat: unlike ``+``/``*``, the structural monus does not commute
        with semiring evaluation in general (Amsterdamer et al.) — e.g.
        under the tropical semiring there is no compatible monus at all.
        Use :meth:`covers` to know when the subtraction was exact.
        """
        if not isinstance(other, Polynomial):
            raise TypeError(f"cannot monus {type(other).__name__} from Polynomial")
        if not other._terms:
            return self
        terms = dict(self._terms)
        for monomial, coefficient in other._terms:
            remaining = terms.get(monomial, 0) - coefficient
            if remaining > 0:
                terms[monomial] = remaining
            else:
                terms.pop(monomial, None)
        return Polynomial(terms)

    def covers(self, other: "Polynomial") -> bool:
        """True iff ``other ≤ self`` in the natural order (coefficient-wise).

        When this holds, ``self.monus(other) + other == self`` — the monus
        is an exact inverse of addition and incremental deletion
        maintenance loses no information.  When it does not, the monus
        truncated at zero somewhere and callers should fall back to a full
        recomputation.
        """
        if not isinstance(other, Polynomial):
            raise TypeError(f"cannot compare Polynomial with {type(other).__name__}")
        mine = dict(self._terms)
        return all(
            coefficient <= mine.get(monomial, 0)
            for monomial, coefficient in other._terms
        )

    # -- inspection ---------------------------------------------------------

    def terms(self) -> tuple[tuple[Monomial, int], ...]:
        """The canonical (monomial, coefficient) pairs."""
        return self._terms

    def variables(self) -> set[str]:
        """All tuple variables occurring in the polynomial."""
        return {
            variable
            for monomial, _ in self._terms
            for variable, _ in monomial
        }

    def degree(self) -> int:
        """The maximal total degree over all monomials (0 for constants)."""
        if not self._terms:
            return 0
        return max(
            sum(exponent for _, exponent in monomial) for monomial, _ in self._terms
        )

    def is_zero(self) -> bool:
        return not self._terms

    def is_one(self) -> bool:
        return self._terms == ((_CONSTANT_MONOMIAL, 1),)

    # -- wire format --------------------------------------------------------

    def to_wire(self) -> str:
        """Serialize to a canonical JSON string.

        Used to ship polynomials through systems that only move scalar
        values (the SQLite execution backend): the encoding is a pure
        function of the normal form, so equal polynomials have equal wire
        strings and GROUP BY / DISTINCT over wire values behaves exactly
        like GROUP BY / DISTINCT over the polynomials themselves.
        """
        import json

        payload = [
            [[[variable, exponent] for variable, exponent in monomial], coefficient]
            for monomial, coefficient in self._terms
        ]
        return json.dumps(payload, separators=(",", ":"))

    @classmethod
    def from_wire(cls, text: str) -> "Polynomial":
        """Parse a string produced by :meth:`to_wire`."""
        import json

        try:
            payload = json.loads(text)
            terms = {
                tuple((str(v), int(e)) for v, e in monomial): int(coefficient)
                for monomial, coefficient in payload
            }
        except (ValueError, TypeError) as exc:
            raise ValueError(f"invalid polynomial wire value {text!r}: {exc}") from None
        return cls(terms)

    # -- evaluation ---------------------------------------------------------

    def evaluate(
        self,
        valuation: Optional[Mapping[str, Any] | Callable[[str], Any]] = None,
        semiring: Optional["Semiring"] = None,
    ) -> Any:
        """Evaluate under ``valuation`` in ``semiring``.

        ``valuation`` maps tuple variables to semiring elements; it may be
        a mapping (missing variables default to ``semiring.one``) or a
        callable.  With no valuation, every variable evaluates to
        ``semiring.one`` -- in the counting semiring this yields the bag
        multiplicity contributed by the polynomial's derivations.
        ``semiring`` defaults to the counting semiring.
        """
        from repro.semiring.semirings import get_semiring

        if semiring is None:
            semiring = get_semiring("counting")
        if valuation is None:
            lookup: Callable[[str], Any] = lambda name: semiring.one
        elif callable(valuation):
            lookup = valuation
        else:
            mapping = valuation
            lookup = lambda name: mapping.get(name, semiring.one)

        total = semiring.zero
        for monomial, coefficient in self._terms:
            value = semiring.one
            for variable, exponent in monomial:
                base = lookup(variable)
                for _ in range(exponent):
                    value = semiring.times(value, base)
            total = semiring.plus(total, _scale(coefficient, value, semiring))
        return total

    # -- dunder plumbing ----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Polynomial) and self._terms == other._terms

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "Polynomial") -> bool:
        # A deterministic total order so polynomials survive ORDER BY.
        if not isinstance(other, Polynomial):
            return NotImplemented
        return self._terms < other._terms

    def __bool__(self) -> bool:
        return bool(self._terms)

    def __str__(self) -> str:
        if not self._terms:
            return "0"
        rendered = [
            _render_term(monomial, coefficient)
            for monomial, coefficient in self._terms
        ]
        return " + ".join(rendered)

    def __repr__(self) -> str:
        return f"Polynomial({self})"


def _normalize_monomial(monomial: Iterable[tuple[str, int]]) -> Monomial:
    exponents: dict[str, int] = {}
    for variable, exponent in monomial:
        if exponent < 0:
            raise ValueError(f"negative exponent for {variable!r}")
        if exponent:
            exponents[variable] = exponents.get(variable, 0) + exponent
    return tuple(sorted(exponents.items()))


def _multiply_monomials(left: Monomial, right: Monomial) -> Monomial:
    exponents = dict(left)
    for variable, exponent in right:
        exponents[variable] = exponents.get(variable, 0) + exponent
    return tuple(sorted(exponents.items()))


def _scale(count: int, value: Any, semiring: "Semiring") -> Any:
    """``count``-fold semiring sum of ``value`` (coefficient application)."""
    total = semiring.zero
    for _ in range(count):
        total = semiring.plus(total, value)
    return total


def _render_term(monomial: Monomial, coefficient: int) -> str:
    if not monomial:
        return str(coefficient)
    factors = [
        variable if exponent == 1 else f"{variable}^{exponent}"
        for variable, exponent in monomial
    ]
    body = "*".join(factors)
    return body if coefficient == 1 else f"{coefficient}*{body}"


_ZERO = Polynomial()
_ONE = Polynomial({_CONSTANT_MONOMIAL: 1})
