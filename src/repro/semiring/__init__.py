"""Semiring provenance: ``N[X]`` polynomials through query rewriting.

This package adds a second contribution semantics next to the paper's
witness lists: provenance polynomials over abstract commutative
semirings.  ``SELECT PROVENANCE (polynomial) ...`` rewrites a query into
an ordinary query whose result carries one ``prov_polynomial`` column;
evaluating that polynomial in a registered semiring specializes it to bag
multiplicities (counting), lineage (boolean), minimal derivation cost
(tropical) or any custom domain.

Intentionally lightweight: importing this package pulls only the value
types and the semiring registry.  The rewrite strategy itself
(``repro.semiring.rewriter``) loads on demand through the rewrite
strategy registry in ``repro.core.registry``.
"""

from repro.semiring.minting import TupleVariableMinter, mint_variable
from repro.semiring.polynomial import Polynomial
from repro.semiring.semirings import (
    BOOLEAN,
    COUNTING,
    POLYNOMIAL,
    TROPICAL,
    Semiring,
    get_semiring,
    register_semiring,
    semiring_names,
)

__all__ = [
    "Polynomial",
    "Semiring",
    "COUNTING",
    "BOOLEAN",
    "TROPICAL",
    "POLYNOMIAL",
    "get_semiring",
    "register_semiring",
    "semiring_names",
    "TupleVariableMinter",
    "mint_variable",
]
