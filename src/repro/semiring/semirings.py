"""Commutative semirings and the semiring registry.

A commutative semiring ``(K, +, ·, 0, 1)`` is the annotation domain of a
K-relation (Green et al.).  The engine computes annotations symbolically
as ``N[X]`` polynomials (:mod:`repro.semiring.polynomial`) -- the free
and therefore most informative semiring -- and specializes them to any
registered concrete semiring via :meth:`Polynomial.evaluate`:

* ``counting`` -- natural numbers: bag multiplicities,
* ``boolean`` -- two-valued logic: lineage / "does this tuple exist",
* ``tropical`` -- (min, +): minimal derivation cost,
* ``polynomial`` -- ``N[X]`` itself (the identity specialization).

Custom semirings plug in through :func:`register_semiring`; anything with
associative-commutative ``plus``/``times`` and matching identities works
(access-control lattices, fuzzy memberships, why-provenance sets, ...).
"""

from __future__ import annotations

import math
import operator
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.semiring.polynomial import Polynomial


@dataclass(frozen=True)
class Semiring:
    """A commutative semiring ``(K, plus, times, zero, one)``.

    ``zero`` must be neutral for ``plus`` and annihilating for ``times``;
    ``one`` neutral for ``times``.  The engine relies on nothing else.

    ``monus`` is optional: when present it makes the semiring an
    *m-semiring* (Geerts & Poggi) — ``monus(a, b)`` is the smallest ``c``
    with ``a ≤ b + c`` under the natural order.  EXCEPT provenance and
    deletion-delta view maintenance require it; semirings without a
    compatible monus (e.g. tropical, whose natural order is not a partial
    order under min) leave it ``None`` and those operations raise.
    """

    name: str
    zero: Any
    one: Any
    plus: Callable[[Any, Any], Any]
    times: Callable[[Any, Any], Any]
    description: str = ""
    monus: Callable[[Any, Any], Any] | None = None

    def __repr__(self) -> str:
        return f"Semiring({self.name!r})"


COUNTING = Semiring(
    name="counting",
    zero=0,
    one=1,
    plus=operator.add,
    times=operator.mul,
    description="natural numbers (N, +, *, 0, 1): bag multiplicities",
    monus=lambda a, b: max(0, a - b),
)

BOOLEAN = Semiring(
    name="boolean",
    zero=False,
    one=True,
    plus=operator.or_,
    times=operator.and_,
    description="booleans (B, or, and, false, true): lineage / possibility",
    monus=lambda a, b: a and not b,
)

TROPICAL = Semiring(
    name="tropical",
    zero=math.inf,
    one=0.0,
    plus=min,
    times=operator.add,
    description="tropical (R u {inf}, min, +, inf, 0): minimal derivation cost",
    # min is idempotent but not cancellative: no monus satisfies
    # a <= b + (a monus b) minimally, so difference provenance is
    # undefined here and stays None on purpose.
)

POLYNOMIAL = Semiring(
    name="polynomial",
    zero=Polynomial.zero(),
    one=Polynomial.one(),
    plus=operator.add,
    times=operator.mul,
    description="N[X] provenance polynomials (the free semiring)",
    monus=Polynomial.monus,
)


_REGISTRY: dict[str, Semiring] = {}


def register_semiring(semiring: Semiring, replace: bool = False) -> Semiring:
    """Register ``semiring`` under its name for lookup by SQL/API users."""
    key = semiring.name.lower()
    if key in _REGISTRY and not replace:
        raise ValueError(f"semiring {semiring.name!r} is already registered")
    _REGISTRY[key] = semiring
    return semiring


def get_semiring(name: str) -> Semiring:
    """Look up a registered semiring by (case-insensitive) name."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown semiring {name!r} (registered: {known})") from None


def semiring_names() -> list[str]:
    return sorted(_REGISTRY)


for _semiring in (COUNTING, BOOLEAN, TROPICAL, POLYNOMIAL):
    register_semiring(_semiring)
