"""Tuple-variable minting: base tuples -> ``N[X]`` variables.

Every base tuple that can contribute to a query result is represented by
an abstract variable in the provenance polynomial.  Variables are minted
*by tuple identity*: the relation name plus the values of the tuple's
identity columns.  Identity is tied to the catalog -- a relation with a
declared primary key is identified by its key (short, stable variables
like ``part(42)``), everything else by its full value (matching the
witness-list rewriter's value-based tuple identity, so the two semantics
are directly comparable).

The rewriter chooses the identity columns at compile time
(:meth:`TupleVariableMinter.identity_attnos`); the executor mints the
actual variable names at run time (:func:`mint_variable`) from the values
flowing through the scan.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.datatypes import format_value


def mint_variable(relation: str, values: Sequence[Any]) -> str:
    """The variable name for one base tuple: ``relation(v1,v2,...)``."""
    rendered = ",".join(format_value(v) for v in values)
    return f"{relation}({rendered})"


class TupleVariableMinter:
    """Decides which columns identify a tuple of a range table entry."""

    @staticmethod
    def identity_attnos(rte) -> list[int]:
        """Column positions identifying a tuple of ``rte``.

        Base relations with a primary key in the catalog are identified by
        the key columns; key-less relations and ``BASERELATION``-marked
        subqueries by all (visible) columns.
        """
        schema = getattr(rte, "schema", None)
        if schema is not None and schema.primary_key:
            return [schema.column_index(name) for name in schema.primary_key]
        return list(range(len(rte.column_names)))

    @staticmethod
    def mint(relation: str, values: Sequence[Any]) -> str:
        return mint_variable(relation, values)
