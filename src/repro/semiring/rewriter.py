"""The polynomial rewrite strategy: ``SELECT PROVENANCE (polynomial)``.

Like the witness-list rewrite (``repro.core.rewriter``), this module
turns a marked query node into an *ordinary* query over the same data
model.  Instead of one column block per contributing base tuple, the
rewritten query carries a single annotation column ``prov_polynomial``
holding the tuple's ``N[X]`` provenance polynomial (Green et al.;
captured through query rewriting as in Pintor et al.).

The rewrite has two layers:

1. **Derivation layer** (:meth:`PolynomialRewriter.rewrite_node`): every
   query node is rewritten to emit one row per *derivation*, annotated
   with the product of its inputs' annotations:

   * base relations mint one tuple variable per row (R1-style, identity
     columns chosen from the catalog by :class:`TupleVariableMinter`),
   * joins/products multiply annotations,
   * aggregation uses the paper's two-level rewrite: the original
     aggregation joined with an annotated, aggregation-stripped duplicate
     on the grouping expressions,
   * ``UNION ALL`` concatenates derivations (``+``), ``INTERSECT``
     multiplies the annotations of matching tuples (``·``), ``EXCEPT``
     annotates surviving tuples with the *monus* ``P_left ⊖ P_right``
     (the natural-order difference on ``N[X]``, following Geerts &
     Poggi's m-semirings and Senellart et al.'s ``Diff`` rewrite);
     nested difference is rejected because monus does not compose
     through further sums and products,
   * duplicate elimination (DISTINCT / set-semantics set operations) sums
     the annotations of collapsed duplicates.

2. **Collapse layer** (:meth:`PolynomialRewriter.rewrite_root`): one
   final group-by over the visible columns sums the derivation
   polynomials, producing the K-relation view of the result -- each
   distinct original tuple once, annotated with its complete polynomial.

Uncorrelated and correlated sublinks are rejected (their semiring
semantics is not well-defined by the positive-algebra rules above);
witness-list provenance remains available for those queries.
"""

from __future__ import annotations

import copy
from typing import Optional

from repro.datatypes import SQLType
from repro.errors import RewriteError
from repro.analyzer import expressions as ex
from repro.analyzer.query_tree import (
    FromExpr,
    JoinTreeExpr,
    Query,
    RangeTableEntry,
    RangeTableRef,
    RTEKind,
    SetOpRangeRef,
    SetOpTreeNode,
    SortClause,
    TargetEntry,
    binary_setop_query,
    subquery_rte,
)
from repro.core.registry import RewriteStrategy, register_rewrite_strategy
from repro.semiring.minting import TupleVariableMinter

#: Name of the annotation column every polynomial-rewritten query exposes.
ANNOTATION_COLUMN = "prov_polynomial"

POLY = SQLType.POLYNOMIAL
BOOL = SQLType.BOOLEAN


class PolynomialRewriter:
    """One rewrite scope for the polynomial contribution semantics."""

    def __init__(self) -> None:
        self.minter = TupleVariableMinter()
        self._alias_counter = 0

    def _alias(self, prefix: str) -> str:
        alias = f"{prefix}_{self._alias_counter}"
        self._alias_counter += 1
        return alias

    # ------------------------------------------------------------------
    # Entry point: marked root node
    # ------------------------------------------------------------------

    def rewrite_root(self, query: Query) -> Query:
        """Rewrite a marked node into its annotated K-relation form."""
        into = query.into
        query.into = None
        promoted = self._promote_junk_sort_targets(query)
        sort_spec = self._visible_sort_spec(query)
        original_width = len(query.visible_targets)
        annotation_name = self._unique_annotation_name(query)
        if (
            query.limit_count is None
            and query.limit_offset is None
            and query.set_operations is None
        ):
            # Without LIMIT the inner ordering is unobservable after the
            # collapse; drop it (the top node re-sorts).
            query.sort_clause = []
        derivations = self.rewrite_node(query)
        top = self._collapse_derivations(
            derivations, original_width, output_name=annotation_name
        )
        for position, descending, nulls_first in sort_spec:
            top.sort_clause.append(
                SortClause(
                    tlist_index=position,
                    descending=descending,
                    nulls_first=nulls_first,
                )
            )
        # Promoted ordering columns stay grouped (they refine the collapse)
        # but are hidden from the visible result, like any resjunk entry.
        for position in promoted:
            top.target_list[position].resjunk = True
        top.into = into
        top.annotation_column = annotation_name
        return top

    @staticmethod
    def _promote_junk_sort_targets(query: Query) -> list[int]:
        """Make resjunk ORDER BY targets visible for the rewrite.

        The witness rewrite carries junk sort entries through untouched;
        the polynomial rewrite reuses that device by promoting each junk
        target to a named visible column so it survives the derivation
        layer and the collapse (which groups by it — ordering attributes
        refine the K-relation's tuple identity).  :meth:`rewrite_root`
        re-marks the promoted columns as resjunk on the top node, so the
        visible result schema is unchanged.

        Returns the visible output positions of the promoted targets.
        """
        promoted: list[int] = []
        for clause in query.sort_clause:
            target = query.target_list[clause.tlist_index]
            if not target.resjunk:
                continue
            target.resjunk = False
            position = sum(
                1
                for t in query.target_list[: clause.tlist_index]
                if not t.resjunk
            )
            target.name = f"perm_ord_{position}"
            promoted.append(position)
        return promoted

    @staticmethod
    def _unique_annotation_name(query: Query) -> str:
        """The output name of the annotation column, dodging collisions
        with visible result columns so ``QueryResult.annotations()`` can
        address it by name."""
        taken = {t.name.lower() for t in query.visible_targets}
        name = ANNOTATION_COLUMN
        suffix = 0
        while name in taken:
            suffix += 1
            name = f"{ANNOTATION_COLUMN}_{suffix}"
        return name

    def _visible_sort_spec(
        self, query: Query
    ) -> list[tuple[int, bool, Optional[bool]]]:
        """Capture ORDER BY as visible output positions (for the top node)."""
        spec: list[tuple[int, bool, Optional[bool]]] = []
        for clause in query.sort_clause:
            target = query.target_list[clause.tlist_index]
            if target.resjunk:
                raise RewriteError(
                    "ORDER BY expressions not in the select list are not "
                    "supported with PROVENANCE (polynomial)"
                )
            position = sum(
                1
                for t in query.target_list[: clause.tlist_index]
                if not t.resjunk
            )
            spec.append((position, clause.descending, clause.nulls_first))
        return spec

    # ------------------------------------------------------------------
    # Derivation layer
    # ------------------------------------------------------------------

    def rewrite_node(self, query: Query) -> Query:
        """Rewrite one node to emit (visible columns..., polynomial) rows,
        one row per derivation."""
        self._reject_sublinks(query)
        query.provenance = False
        query.provenance_type = None
        node_class = query.node_class().value
        if node_class == "setop":
            return self._rewrite_setop_node(query)
        if node_class == "aspj":
            return self._rewrite_aspj_node(query)
        return self._rewrite_spj_node(query)

    # -- SPJ ------------------------------------------------------------

    def _rewrite_spj_node(self, query: Query) -> Query:
        factors = [
            self._annotation_factor(rtindex, rte)
            for rtindex, rte in enumerate(query.range_table)
        ]
        distinct = query.distinct
        query.distinct = False
        query.target_list.append(
            TargetEntry(expr=self._product(factors), name=ANNOTATION_COLUMN)
        )
        if not distinct:
            return query
        # DISTINCT is duplicate elimination: collapse the derivations of
        # each duplicate group, summing their polynomials.  ORDER/LIMIT of
        # the original node apply after the elimination, so they move up.
        width = len(query.visible_targets) - 1
        sort_spec = self._visible_sort_spec(query)
        limit_count, query.limit_count = query.limit_count, None
        limit_offset, query.limit_offset = query.limit_offset, None
        query.sort_clause = []
        delta = self._collapse_derivations(query, width)
        for position, descending, nulls_first in sort_spec:
            delta.sort_clause.append(
                SortClause(
                    tlist_index=position,
                    descending=descending,
                    nulls_first=nulls_first,
                )
            )
        delta.limit_count = limit_count
        delta.limit_offset = limit_offset
        return delta

    def _annotation_factor(self, rtindex: int, rte: RangeTableEntry) -> ex.Expr:
        """The annotation contributed by one range table entry.

        Cases (in priority order, mirroring the witness rewriter):

        1. ``PROVENANCE (attr)`` annotation carrying a polynomial column
           -- already-computed provenance (incremental computation).
        2. base relation / ``BASERELATION`` -- mint one tuple variable
           from the entry's identity columns.
        3. subquery -- rewrite recursively; its annotation column becomes
           this entry's factor.
        """
        if rte.provenance_attrs is not None:
            if len(rte.provenance_attrs) == 1:
                attno = self._find_column(rte, rte.provenance_attrs[0])
                if rte.column_types[attno] is POLY:
                    return self._var(rtindex, attno, rte)
            raise RewriteError(
                f"from-item {rte.alias!r} exposes witness-list provenance "
                "attributes; the polynomial rewrite can only reuse a single "
                "polynomial annotation column"
            )
        if rte.base_relation or rte.kind is RTEKind.RELATION:
            relation_name = (
                rte.relation_name
                if rte.kind is RTEKind.RELATION and not rte.base_relation
                else rte.alias
            )
            attnos = self.minter.identity_attnos(rte)
            args: tuple[ex.Expr, ...] = (
                ex.Const(relation_name or rte.alias, SQLType.TEXT),
            ) + tuple(self._var(rtindex, attno, rte) for attno in attnos)
            return ex.FuncExpr("perm_poly_token", args, POLY)
        old_width = rte.width()
        rewritten = self.rewrite_node(rte.subquery)
        rte.subquery = rewritten
        rte.column_names = list(rte.column_names) + [ANNOTATION_COLUMN]
        rte.column_types = list(rte.column_types) + [POLY]
        return ex.Var(
            varno=rtindex, varattno=old_width, type=POLY, name=ANNOTATION_COLUMN
        )

    @staticmethod
    def _find_column(rte: RangeTableEntry, name: str) -> int:
        low = name.lower()
        for attno, column in enumerate(rte.column_names):
            if column.lower() == low:
                return attno
        raise RewriteError(
            f"PROVENANCE attribute {name!r} not found in from-item {rte.alias!r}"
        )

    @staticmethod
    def _var(rtindex: int, attno: int, rte: RangeTableEntry) -> ex.Var:
        return ex.Var(
            varno=rtindex,
            varattno=attno,
            type=rte.column_types[attno],
            name=rte.column_names[attno],
        )

    @staticmethod
    def _product(factors: list[ex.Expr]) -> ex.Expr:
        if not factors:
            return ex.FuncExpr("perm_poly_one", (), POLY)
        if len(factors) == 1:
            return factors[0]
        return ex.FuncExpr("perm_poly_mul", tuple(factors), POLY)

    # -- ASPJ (two-level rewrite, mirroring paper Fig. 6.2) --------------

    def _rewrite_aspj_node(self, query: Query) -> Query:
        group_count = len(query.group_clause)

        # q_agg: the original aggregation kept intact (semantics including
        # HAVING/ORDER/LIMIT preserved), extended with its grouping
        # expressions for the top-level join.
        q_agg = query
        original_width = len(q_agg.visible_targets)
        agg_group_slots: list[int] = []
        for i, group_expr in enumerate(query.group_clause):
            q_agg.target_list.append(
                TargetEntry(expr=group_expr, name=f"perm_g{i}")
            )
            agg_group_slots.append(original_width + i)

        # d: the aggregation-stripped duplicate, annotated per derivation.
        duplicate = Query(
            target_list=[
                TargetEntry(expr=g, name=f"perm_g{i}")
                for i, g in enumerate(query.group_clause)
            ],
            range_table=[copy.deepcopy(rte) for rte in query.range_table],
            jointree=copy.deepcopy(query.jointree),
        )
        d_ann = self.rewrite_node(duplicate)

        # Top: join q_agg with d+ on null-safe equality of the grouping
        # expressions; one output row per (group, derivation).
        top = Query()
        agg_rte = subquery_rte(q_agg, alias=self._alias("perm_agg"))
        agg_index = top.add_rte(agg_rte)
        prov_rte = subquery_rte(d_ann, alias=self._alias("perm_prov"))
        prov_index = top.add_rte(prov_rte)
        conjuncts: list[ex.Expr] = [
            ex.OpExpr(
                "<=>",
                (
                    ex.Var(
                        varno=agg_index,
                        varattno=agg_group_slots[i],
                        type=query.group_clause[i].type,
                        name=f"perm_g{i}",
                    ),
                    ex.Var(
                        varno=prov_index,
                        varattno=i,
                        type=query.group_clause[i].type,
                        name=f"perm_g{i}",
                    ),
                ),
                BOOL,
            )
            for i in range(group_count)
        ]
        top.jointree = FromExpr(
            items=[
                JoinTreeExpr(
                    join_type="inner",
                    left=RangeTableRef(agg_index),
                    right=RangeTableRef(prov_index),
                    quals=_conjoin(conjuncts),
                )
            ]
        )
        for attno in range(original_width):
            top.target_list.append(
                TargetEntry(
                    expr=ex.Var(
                        varno=agg_index,
                        varattno=attno,
                        type=agg_rte.column_types[attno],
                        name=agg_rte.column_names[attno],
                    ),
                    name=agg_rte.column_names[attno],
                )
            )
        top.target_list.append(
            TargetEntry(
                expr=ex.Var(
                    varno=prov_index,
                    varattno=group_count,
                    type=POLY,
                    name=ANNOTATION_COLUMN,
                ),
                name=ANNOTATION_COLUMN,
            )
        )
        return top

    # -- Set operations ---------------------------------------------------

    def _rewrite_setop_node(self, query: Query) -> Query:
        tree = query.set_operations
        assert tree is not None
        if isinstance(tree, SetOpRangeRef):  # degenerate single leaf
            return self.rewrite_node(query.range_table[tree.rtindex].subquery)
        has_tail = (
            bool(query.sort_clause)
            or query.limit_count is not None
            or query.limit_offset is not None
        )
        if not has_tail:
            left_query = self._subtree_query(query, tree.left)
            right_query = self._subtree_query(query, tree.right)
            return self._setop_derivations(tree.op, tree.all, left_query, right_query)
        # ORDER BY / LIMIT on the set operation select which tuples
        # survive; keep the original node and join the annotated
        # derivations against its result on tuple equality.
        left_query = self._subtree_query(query, tree.left).deep_copy()
        right_query = self._subtree_query(query, tree.right).deep_copy()
        annotated = self._setop_derivations(tree.op, tree.all, left_query, right_query)
        q_set = query
        width = len(q_set.visible_targets)
        return self._join_on_tuple_equality(
            keep=q_set,
            keep_alias=self._alias("perm_set"),
            annotated=annotated,
            width=width,
        )

    def _setop_derivations(
        self, op: str, all_flag: bool, left_query: Query, right_query: Query
    ) -> Query:
        if op == "union":
            # + : derivations of both inputs, concatenated.
            left_ann = self.rewrite_node(left_query)
            right_ann = self.rewrite_node(right_query)
            combined = binary_setop_query("union", True, left_ann, right_ann)
            width = len(left_ann.visible_targets) - 1
            if all_flag:
                return combined
            return self._collapse_derivations(combined, width)
        if op == "intersect":
            # * : pair the derivations of matching tuples, multiplying.
            left_ann = self.rewrite_node(left_query)
            right_ann = self.rewrite_node(right_query)
            width = len(left_ann.visible_targets) - 1
            top = Query()
            left_rte = subquery_rte(left_ann, alias=self._alias("perm_poly_l"))
            left_index = top.add_rte(left_rte)
            right_rte = subquery_rte(right_ann, alias=self._alias("perm_poly_r"))
            right_index = top.add_rte(right_rte)
            conjuncts: list[ex.Expr] = [
                ex.OpExpr(
                    "<=>",
                    (
                        self._var(left_index, attno, left_rte),
                        self._var(right_index, attno, right_rte),
                    ),
                    BOOL,
                )
                for attno in range(width)
            ]
            top.jointree = FromExpr(
                items=[
                    JoinTreeExpr(
                        join_type="inner",
                        left=RangeTableRef(left_index),
                        right=RangeTableRef(right_index),
                        quals=_conjoin(conjuncts),
                    )
                ]
            )
            for attno in range(width):
                top.target_list.append(
                    TargetEntry(
                        expr=self._var(left_index, attno, left_rte),
                        name=left_rte.column_names[attno],
                    )
                )
            top.target_list.append(
                TargetEntry(
                    expr=ex.FuncExpr(
                        "perm_poly_mul",
                        (
                            self._var(left_index, width, left_rte),
                            self._var(right_index, width, right_rte),
                        ),
                        POLY,
                    ),
                    name=ANNOTATION_COLUMN,
                )
            )
            if all_flag:
                return top
            return self._collapse_derivations(top, width)
        # EXCEPT: the right input filters membership; surviving tuples are
        # annotated with the monus P_left(t) ⊖ P_right(t) — the
        # m-semiring difference of the two sides' collapsed polynomials
        # (Senellart et al.'s Diff/Term.sub rewrite, specialized to the
        # natural-order monus on N[X]).  Monus does not compose: feeding a
        # truncated difference through further ⊖ is not associative
        # ((a⊖b)⊖c vs a⊖(b+c) only agree under the natural order), so a
        # nested EXCEPT below either operand is rejected loudly rather
        # than silently mis-annotated.
        for operand, side in ((left_query, "left"), (right_query, "right")):
            if _contains_difference(operand):
                raise RewriteError(
                    "nested EXCEPT is not supported by the polynomial "
                    f"rewrite (the {side} operand of an EXCEPT contains "
                    "another difference, and the N[X] monus does not "
                    "compose); use the default witness-list semantics"
                )
        q_set = binary_setop_query(
            op, all_flag, left_query.deep_copy(), right_query.deep_copy()
        )
        left_ann = self.rewrite_node(left_query)
        right_ann = self.rewrite_node(right_query)
        width = len(left_ann.visible_targets) - 1
        left_poly = self._collapse_derivations(left_ann, width)
        right_poly = self._collapse_derivations(right_ann, width)

        # q_set  ⋈ P_left  ⟕ P_right  on null-safe tuple equality; every
        # survivor exists in the left input (inner join), but set-EXCEPT
        # survivors by definition have no right-side row (left join,
        # NULL ⊖-operand subtracts nothing).
        top = Query()
        keep_rte = subquery_rte(q_set, alias=self._alias("perm_set"))
        keep_index = top.add_rte(keep_rte)
        left_rte = subquery_rte(left_poly, alias=self._alias("perm_poly_l"))
        left_index = top.add_rte(left_rte)
        right_rte = subquery_rte(right_poly, alias=self._alias("perm_poly_r"))
        right_index = top.add_rte(right_rte)

        def equality(other_index: int, other_rte: RangeTableEntry):
            return _conjoin(
                [
                    ex.OpExpr(
                        "<=>",
                        (
                            self._var(keep_index, attno, keep_rte),
                            self._var(other_index, attno, other_rte),
                        ),
                        BOOL,
                    )
                    for attno in range(width)
                ]
            )

        inner = JoinTreeExpr(
            join_type="inner",
            left=RangeTableRef(keep_index),
            right=RangeTableRef(left_index),
            quals=equality(left_index, left_rte),
        )
        top.jointree = FromExpr(
            items=[
                JoinTreeExpr(
                    join_type="left",
                    left=inner,
                    right=RangeTableRef(right_index),
                    quals=equality(right_index, right_rte),
                )
            ]
        )
        for attno in range(width):
            top.target_list.append(
                TargetEntry(
                    expr=self._var(keep_index, attno, keep_rte),
                    name=keep_rte.column_names[attno],
                )
            )
        top.target_list.append(
            TargetEntry(
                expr=ex.FuncExpr(
                    "perm_poly_monus",
                    (
                        self._var(left_index, width, left_rte),
                        self._var(right_index, width, right_rte),
                    ),
                    POLY,
                ),
                name=ANNOTATION_COLUMN,
            )
        )
        return top

    def _join_on_tuple_equality(
        self, keep: Query, keep_alias: str, annotated: Query, width: int
    ) -> Query:
        """Join ``keep`` (original semantics) with ``annotated`` derivation
        rows on null-safe equality of the ``width`` visible columns."""
        top = Query()
        keep_rte = subquery_rte(keep, alias=keep_alias)
        keep_index = top.add_rte(keep_rte)
        ann_rte = subquery_rte(annotated, alias=self._alias("perm_poly"))
        ann_index = top.add_rte(ann_rte)
        conjuncts: list[ex.Expr] = [
            ex.OpExpr(
                "<=>",
                (
                    self._var(keep_index, attno, keep_rte),
                    self._var(ann_index, attno, ann_rte),
                ),
                BOOL,
            )
            for attno in range(width)
        ]
        top.jointree = FromExpr(
            items=[
                JoinTreeExpr(
                    join_type="inner",
                    left=RangeTableRef(keep_index),
                    right=RangeTableRef(ann_index),
                    quals=_conjoin(conjuncts),
                )
            ]
        )
        for attno in range(width):
            top.target_list.append(
                TargetEntry(
                    expr=self._var(keep_index, attno, keep_rte),
                    name=keep_rte.column_names[attno],
                )
            )
        top.target_list.append(
            TargetEntry(
                expr=ex.Var(
                    varno=ann_index,
                    varattno=width,
                    type=POLY,
                    name=ANNOTATION_COLUMN,
                ),
                name=ANNOTATION_COLUMN,
            )
        )
        return top

    def _subtree_query(self, query: Query, node: SetOpTreeNode) -> Query:
        """Materialize a set-operation subtree as its own query node."""
        if isinstance(node, SetOpRangeRef):
            return query.range_table[node.rtindex].subquery
        left = self._subtree_query(query, node.left)
        right = self._subtree_query(query, node.right)
        return binary_setop_query(node.op, node.all, left, right)

    # -- Collapse layer (delta + polynomial sum) --------------------------

    def _collapse_derivations(
        self, derivations: Query, width: int, output_name: str = ANNOTATION_COLUMN
    ) -> Query:
        """Group derivation rows by the ``width`` visible columns, summing
        the polynomials: the K-relation view of the node's result."""
        top = Query()
        rte = subquery_rte(derivations, alias=self._alias("perm_poly"))
        rtindex = top.add_rte(rte)
        top.jointree = FromExpr(items=[RangeTableRef(rtindex)])
        for attno in range(width):
            var = self._var(rtindex, attno, rte)
            top.target_list.append(TargetEntry(expr=var, name=rte.column_names[attno]))
            top.group_clause.append(var)
        top.target_list.append(
            TargetEntry(
                expr=ex.Aggref(
                    aggname="perm_poly_sum",
                    arg=ex.Var(
                        varno=rtindex,
                        varattno=width,
                        type=POLY,
                        name=ANNOTATION_COLUMN,
                    ),
                    type=POLY,
                ),
                name=output_name,
            )
        )
        top.has_aggs = True
        return top

    # -- validation -------------------------------------------------------

    def _reject_sublinks(self, query: Query) -> None:
        for expr in _node_expressions(query):
            for node in ex.walk(expr):
                if isinstance(node, ex.SubLink):
                    raise RewriteError(
                        "sublinks are not supported by the polynomial "
                        "rewrite; use the default witness-list semantics"
                    )


def _contains_difference(query: Query) -> bool:
    """True if any node of ``query``'s tree performs an EXCEPT."""
    from repro.analyzer.query_tree import setop_tree_contains_except

    if query.set_operations is not None and setop_tree_contains_except(
        query.set_operations
    ):
        return True
    return any(
        rte.subquery is not None and _contains_difference(rte.subquery)
        for rte in query.range_table
    )


def _conjoin(conjuncts: list[ex.Expr]) -> Optional[ex.Expr]:
    if not conjuncts:
        return None
    if len(conjuncts) == 1:
        return conjuncts[0]
    return ex.BoolOpExpr("and", tuple(conjuncts))


def _node_expressions(query: Query):
    for target in query.target_list:
        yield target.expr
    if query.jointree.quals is not None:
        yield query.jointree.quals
    stack = list(query.jointree.items)
    while stack:
        node = stack.pop()
        if isinstance(node, JoinTreeExpr):
            if node.quals is not None:
                yield node.quals
            stack.append(node.left)
            stack.append(node.right)
    yield from query.group_clause
    if query.having is not None:
        yield query.having


# ---------------------------------------------------------------------------
# Public entry points & strategy registration
# ---------------------------------------------------------------------------


def rewrite_polynomial_root(query: Query) -> Query:
    """Rewrite a marked query node into its polynomial-annotated form."""
    return PolynomialRewriter().rewrite_root(query)


def _rewrite_polynomial_subquery(query: Query) -> tuple[Query, tuple[str, ...]]:
    rewritten = PolynomialRewriter().rewrite_root(query)
    return rewritten, (rewritten.annotation_column or ANNOTATION_COLUMN,)


register_rewrite_strategy(
    RewriteStrategy(
        name="polynomial",
        description="N[X] provenance polynomials over abstract semirings",
        rewrite_root=rewrite_polynomial_root,
        rewrite_subquery=_rewrite_polynomial_subquery,
    )
)
