"""Token definitions for the SQL lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenKind(enum.Enum):
    IDENT = "ident"
    KEYWORD = "keyword"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"  # ( ) , ; .
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    value: str  # keywords are upper-cased, identifiers lower-cased
    position: int  # character offset in the source text

    def is_keyword(self, *names: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.value in names

    def __repr__(self) -> str:
        return f"Token({self.kind.value}, {self.value!r}@{self.position})"


# Reserved words.  Everything else lexes as an identifier, so e.g. a column
# may be called "year" as long as it does not collide with the grammar.
KEYWORDS = frozenset(
    """
    SELECT FROM WHERE GROUP BY HAVING ORDER LIMIT OFFSET AS ON USING
    AND OR NOT IN EXISTS BETWEEN LIKE IS NULL TRUE FALSE
    JOIN INNER LEFT RIGHT FULL OUTER CROSS NATURAL
    UNION INTERSECT EXCEPT ALL DISTINCT ANY SOME
    CASE WHEN THEN ELSE END CAST
    ASC DESC NULLS FIRST LAST
    CREATE TABLE VIEW INSERT INTO VALUES DROP IF REPLACE
    MATERIALIZED REFRESH DELETE UPDATE SET
    PRIMARY KEY
    DATE INTERVAL EXTRACT SUBSTRING FOR
    PROVENANCE BASERELATION
    EXPLAIN ANALYZE
    """.split()
)

# Multi-character operators, longest first so the lexer is greedy.
OPERATORS = ("<>", "!=", "<=", ">=", "||", "=", "<", ">", "+", "-", "*", "/", "%")

PUNCTUATION = ("(", ")", ",", ";", ".")
