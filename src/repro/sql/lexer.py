"""Hand-written SQL lexer.

Produces a flat list of :class:`~repro.sql.tokens.Token`.  Supported
lexical forms:

* identifiers (``[A-Za-z_][A-Za-z0-9_$]*``, folded to lower case) and
  double-quoted identifiers (case preserved),
* keywords (see :data:`~repro.sql.tokens.KEYWORDS`, folded to upper case),
* integer and decimal number literals (with optional exponent),
* single-quoted string literals with ``''`` escaping,
* operators and punctuation,
* ``--`` line comments and ``/* ... */`` block comments.
"""

from __future__ import annotations

from repro.errors import LexError
from repro.sql.tokens import KEYWORDS, OPERATORS, PUNCTUATION, Token, TokenKind

_IDENT_START = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | frozenset("0123456789$")
_DIGITS = frozenset("0123456789")
_SPACE = frozenset(" \t\r\n\f\v")


def tokenize(text: str) -> list[Token]:
    """Lex ``text`` into tokens, ending with a single EOF token."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch in _SPACE:
            i += 1
            continue
        if ch == "-" and text.startswith("--", i):
            end = text.find("\n", i)
            i = n if end < 0 else end + 1
            continue
        if ch == "/" and text.startswith("/*", i):
            end = text.find("*/", i + 2)
            if end < 0:
                raise LexError("unterminated block comment", i)
            i = end + 2
            continue
        if ch in _IDENT_START:
            start = i
            i += 1
            while i < n and text[i] in _IDENT_CONT:
                i += 1
            word = text[start:i]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenKind.KEYWORD, upper, start))
            else:
                tokens.append(Token(TokenKind.IDENT, word.lower(), start))
            continue
        if ch == '"':
            start = i
            i += 1
            chunk: list[str] = []
            while i < n:
                if text[i] == '"':
                    if i + 1 < n and text[i + 1] == '"':
                        chunk.append('"')
                        i += 2
                        continue
                    break
                chunk.append(text[i])
                i += 1
            if i >= n:
                raise LexError("unterminated quoted identifier", start)
            i += 1  # closing quote
            tokens.append(Token(TokenKind.IDENT, "".join(chunk), start))
            continue
        if ch in _DIGITS or (ch == "." and i + 1 < n and text[i + 1] in _DIGITS):
            start = i
            while i < n and text[i] in _DIGITS:
                i += 1
            if i < n and text[i] == "." and (i + 1 >= n or text[i + 1] != "."):
                i += 1
                while i < n and text[i] in _DIGITS:
                    i += 1
            if i < n and text[i] in "eE":
                j = i + 1
                if j < n and text[j] in "+-":
                    j += 1
                if j < n and text[j] in _DIGITS:
                    i = j
                    while i < n and text[i] in _DIGITS:
                        i += 1
            tokens.append(Token(TokenKind.NUMBER, text[start:i], start))
            continue
        if ch == "'":
            start = i
            i += 1
            chunk = []
            while i < n:
                if text[i] == "'":
                    if i + 1 < n and text[i + 1] == "'":
                        chunk.append("'")
                        i += 2
                        continue
                    break
                chunk.append(text[i])
                i += 1
            if i >= n:
                raise LexError("unterminated string literal", start)
            i += 1
            tokens.append(Token(TokenKind.STRING, "".join(chunk), start))
            continue
        matched_op = None
        for op in OPERATORS:
            if text.startswith(op, i):
                matched_op = op
                break
        if matched_op is not None:
            tokens.append(Token(TokenKind.OPERATOR, matched_op, i))
            i += len(matched_op)
            continue
        if ch in PUNCTUATION:
            tokens.append(Token(TokenKind.PUNCT, ch, i))
            i += 1
            continue
        raise LexError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenKind.EOF, "", n))
    return tokens
