"""Raw SQL abstract syntax tree (pre-analysis).

These nodes carry exactly what the parser saw; names are unresolved and
types unknown.  The analyzer (``repro.analyzer``) converts them into a
PostgreSQL-style query tree with resolved :class:`~repro.analyzer.expressions.Var`
references.

The provenance extension points of SQL-PLE live here:

* :attr:`SelectStmt.provenance` — the ``SELECT PROVENANCE`` marker,
* :attr:`RangeVar.provenance_attrs` / :attr:`RangeSubselect.provenance_attrs`
  — the ``PROVENANCE (attr, ...)`` from-clause annotation,
* :attr:`RangeVar.base_relation` / :attr:`RangeSubselect.base_relation`
  — the ``BASERELATION`` from-clause annotation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union


class Node:
    """Base class for all AST nodes (expressions and statements)."""

    __slots__ = ()


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr(Node):
    __slots__ = ()


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A possibly qualified column reference: ``a`` or ``t.a``."""

    name: str
    relation: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.relation}.{self.name}" if self.relation else self.name


@dataclass(frozen=True)
class Star(Expr):
    """``*`` or ``t.*`` in a select list."""

    relation: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.relation}.*" if self.relation else "*"


@dataclass(frozen=True)
class NumberLit(Expr):
    """Integer or float literal; ``value`` is already a Python number."""

    value: Union[int, float]

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class StringLit(Expr):
    value: str

    def __str__(self) -> str:
        escaped = self.value.replace("'", "''")
        return f"'{escaped}'"


@dataclass(frozen=True)
class BoolLit(Expr):
    value: bool

    def __str__(self) -> str:
        return "TRUE" if self.value else "FALSE"


@dataclass(frozen=True)
class NullLit(Expr):
    def __str__(self) -> str:
        return "NULL"


@dataclass(frozen=True)
class DateLit(Expr):
    """``DATE 'YYYY-MM-DD'``."""

    text: str

    def __str__(self) -> str:
        return f"DATE '{self.text}'"


@dataclass(frozen=True)
class IntervalLit(Expr):
    """``INTERVAL '3' MONTH``."""

    quantity: str
    unit: str

    def __str__(self) -> str:
        return f"INTERVAL '{self.quantity}' {self.unit.upper()}"


@dataclass(frozen=True)
class BinaryOp(Expr):
    """Arithmetic, comparison or string operator application."""

    op: str  # one of + - * / % || = <> < <= > >=
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str  # '-' or '+'
    operand: Expr

    def __str__(self) -> str:
        return f"({self.op}{self.operand})"


@dataclass(frozen=True)
class BoolOp(Expr):
    """AND/OR with flattened argument list, NOT with a single argument."""

    op: str  # 'and' | 'or' | 'not'
    args: tuple[Expr, ...]

    def __str__(self) -> str:
        if self.op == "not":
            return f"(NOT {self.args[0]})"
        sep = f" {self.op.upper()} "
        return "(" + sep.join(str(a) for a in self.args) + ")"


@dataclass(frozen=True)
class FuncCall(Expr):
    """Function or aggregate call.  ``star`` marks ``count(*)``."""

    name: str
    args: tuple[Expr, ...] = ()
    star: bool = False
    distinct: bool = False

    def __str__(self) -> str:
        if self.star:
            return f"{self.name}(*)"
        inner = ", ".join(str(a) for a in self.args)
        prefix = "DISTINCT " if self.distinct else ""
        return f"{self.name}({prefix}{inner})"


@dataclass(frozen=True)
class CaseExpr(Expr):
    """Searched or simple CASE.  For simple CASE, ``operand`` is set."""

    whens: tuple[tuple[Expr, Expr], ...]
    operand: Optional[Expr] = None
    default: Optional[Expr] = None

    def __str__(self) -> str:
        parts = ["CASE"]
        if self.operand is not None:
            parts.append(str(self.operand))
        for cond, result in self.whens:
            parts.append(f"WHEN {cond} THEN {result}")
        if self.default is not None:
            parts.append(f"ELSE {self.default}")
        parts.append("END")
        return " ".join(parts)


@dataclass(frozen=True)
class BetweenExpr(Expr):
    expr: Expr
    low: Expr
    high: Expr
    negated: bool = False

    def __str__(self) -> str:
        neg = "NOT " if self.negated else ""
        return f"({self.expr} {neg}BETWEEN {self.low} AND {self.high})"


@dataclass(frozen=True)
class InListExpr(Expr):
    """``expr [NOT] IN (v1, v2, ...)`` with a literal/expression list."""

    expr: Expr
    items: tuple[Expr, ...]
    negated: bool = False

    def __str__(self) -> str:
        neg = "NOT " if self.negated else ""
        inner = ", ".join(str(i) for i in self.items)
        return f"({self.expr} {neg}IN ({inner}))"


@dataclass(frozen=True)
class LikeExpr(Expr):
    expr: Expr
    pattern: Expr
    negated: bool = False

    def __str__(self) -> str:
        neg = "NOT " if self.negated else ""
        return f"({self.expr} {neg}LIKE {self.pattern})"


@dataclass(frozen=True)
class DistinctExpr(Expr):
    """``left IS [NOT] DISTINCT FROM right`` (null-safe comparison).

    ``negated`` is True for ``IS NOT DISTINCT FROM`` — i.e. null-safe
    *equality*, the form the provenance rewrites emit for their joins.
    """

    left: Expr
    right: Expr
    negated: bool = False

    def __str__(self) -> str:
        keyword = "IS NOT DISTINCT FROM" if self.negated else "IS DISTINCT FROM"
        return f"({self.left} {keyword} {self.right})"


@dataclass(frozen=True)
class IsNullExpr(Expr):
    expr: Expr
    negated: bool = False  # True for IS NOT NULL

    def __str__(self) -> str:
        neg = "NOT " if self.negated else ""
        return f"({self.expr} IS {neg}NULL)"


@dataclass(frozen=True)
class ExtractExpr(Expr):
    """``EXTRACT(field FROM expr)``; only YEAR/MONTH/DAY are used."""

    fieldname: str
    expr: Expr

    def __str__(self) -> str:
        return f"EXTRACT({self.fieldname.upper()} FROM {self.expr})"


@dataclass(frozen=True)
class SubstringExpr(Expr):
    """``SUBSTRING(s FROM start [FOR length])`` (1-based, like SQL)."""

    expr: Expr
    start: Expr
    length: Optional[Expr] = None

    def __str__(self) -> str:
        tail = f" FOR {self.length}" if self.length is not None else ""
        return f"SUBSTRING({self.expr} FROM {self.start}{tail})"


@dataclass(frozen=True)
class CastExpr(Expr):
    expr: Expr
    type_name: str

    def __str__(self) -> str:
        return f"CAST({self.expr} AS {self.type_name})"


@dataclass(frozen=True)
class SubLinkExpr(Expr):
    """A subquery used inside an expression (the paper calls these sublinks).

    Kinds:

    * ``exists`` — ``[NOT] EXISTS (subquery)``; ``testexpr`` is None,
    * ``any`` — ``x IN (subquery)`` / ``x op ANY (subquery)``,
    * ``all`` — ``x NOT IN (subquery)`` (as ``x <> ALL``) / ``x op ALL``,
    * ``scalar`` — ``(subquery)`` used as a value.
    """

    kind: str
    subquery: "SelectNode"
    testexpr: Optional[Expr] = None
    operator: Optional[str] = None  # comparison operator for any/all

    def __str__(self) -> str:
        if self.kind == "exists":
            return f"EXISTS ({self.subquery})"
        if self.kind == "scalar":
            return f"({self.subquery})"
        quant = "ANY" if self.kind == "any" else "ALL"
        return f"({self.testexpr} {self.operator} {quant} ({self.subquery}))"


# ---------------------------------------------------------------------------
# Select structure
# ---------------------------------------------------------------------------


@dataclass
class ResTarget(Node):
    """One select-list entry: expression plus optional ``AS name``."""

    expr: Expr
    name: Optional[str] = None


@dataclass
class SortBy(Node):
    expr: Expr
    descending: bool = False
    nulls_first: Optional[bool] = None


class FromItem(Node):
    __slots__ = ()


@dataclass
class RangeVar(FromItem):
    """A table or view reference in FROM."""

    name: str
    alias: Optional[str] = None
    column_aliases: tuple[str, ...] = ()
    provenance_attrs: Optional[tuple[str, ...]] = None  # PROVENANCE (a, b, ...)
    base_relation: bool = False  # BASERELATION marker

    @property
    def refname(self) -> str:
        return self.alias or self.name


@dataclass
class RangeSubselect(FromItem):
    """A parenthesized subquery in FROM."""

    subquery: "SelectNode"
    alias: str
    column_aliases: tuple[str, ...] = ()
    provenance_attrs: Optional[tuple[str, ...]] = None
    base_relation: bool = False


@dataclass
class JoinExpr(FromItem):
    """An explicit JOIN between two from-items."""

    join_type: str  # 'inner' | 'left' | 'right' | 'full' | 'cross'
    left: FromItem
    right: FromItem
    condition: Optional[Expr] = None  # ON clause
    using: tuple[str, ...] = ()  # USING (col, ...)
    natural: bool = False


@dataclass
class SelectStmt(Node):
    """A plain (non-set-operation) SELECT."""

    target_list: list[ResTarget] = field(default_factory=list)
    from_clause: list[FromItem] = field(default_factory=list)
    where: Optional[Expr] = None
    group_by: list[Expr] = field(default_factory=list)
    having: Optional[Expr] = None
    distinct: bool = False
    provenance: bool = False  # SELECT PROVENANCE marker
    # SELECT PROVENANCE (<semantics>): named rewrite strategy ("polynomial",
    # ...); None selects the default witness-list semantics.
    provenance_type: Optional[str] = None
    order_by: list[SortBy] = field(default_factory=list)
    limit: Optional[Expr] = None
    offset: Optional[Expr] = None
    into: Optional[str] = None  # SELECT ... INTO table

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        from repro.sql.printer import format_select

        return format_select(self)


@dataclass
class SetOpSelect(Node):
    """A set operation tree node: ``left op right`` with optional ALL.

    ORDER BY / LIMIT on the whole set operation attach to the root node.
    """

    op: str  # 'union' | 'intersect' | 'except'
    all: bool
    left: "SelectNode"
    right: "SelectNode"
    order_by: list[SortBy] = field(default_factory=list)
    limit: Optional[Expr] = None
    offset: Optional[Expr] = None
    provenance: bool = False
    provenance_type: Optional[str] = None
    into: Optional[str] = None

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        from repro.sql.printer import format_select

        return format_select(self)


SelectNode = Union[SelectStmt, SetOpSelect]


# ---------------------------------------------------------------------------
# Other statements
# ---------------------------------------------------------------------------


@dataclass
class ColumnDef(Node):
    name: str
    type_name: str


@dataclass
class CreateTableStmt(Node):
    name: str
    columns: list[ColumnDef]
    primary_key: tuple[str, ...] = ()


@dataclass
class CreateViewStmt(Node):
    name: str
    query: SelectNode
    sql_text: str = ""
    # Provenance attributes declared for an external-provenance view.
    provenance_attrs: tuple[str, ...] = ()


@dataclass
class CreateMatViewStmt(Node):
    """``CREATE MATERIALIZED PROVENANCE VIEW name AS query``.

    ``query`` must be (or is implicitly marked as) a ``SELECT
    PROVENANCE`` statement; the view stores its annotated result and is
    maintained under DML on the base tables it depends on.
    """

    name: str
    query: SelectNode
    sql_text: str = ""


@dataclass
class RefreshMatViewStmt(Node):
    """``REFRESH MATERIALIZED PROVENANCE VIEW name`` — force a full
    recomputation regardless of staleness."""

    name: str


@dataclass
class InsertStmt(Node):
    table: str
    columns: tuple[str, ...] = ()
    values: list[list[Expr]] = field(default_factory=list)
    query: Optional[SelectNode] = None


@dataclass
class DeleteStmt(Node):
    """``DELETE FROM table [WHERE condition]``."""

    table: str
    where: Optional[Expr] = None


@dataclass
class UpdateStmt(Node):
    """``UPDATE table SET col = expr, ... [WHERE condition]``."""

    table: str
    assignments: list[tuple[str, Expr]] = field(default_factory=list)
    where: Optional[Expr] = None


@dataclass
class DropStmt(Node):
    kind: str  # 'table' | 'view' | 'matview'
    name: str
    if_exists: bool = False


@dataclass
class ExplainStmt(Node):
    query: SelectNode


@dataclass
class AnalyzeStmt(Node):
    """``ANALYZE [table]`` — collect planner statistics (all tables when
    no name is given)."""

    table: Optional[str] = None


Statement = Union[
    SelectStmt,
    SetOpSelect,
    CreateTableStmt,
    CreateViewStmt,
    CreateMatViewStmt,
    RefreshMatViewStmt,
    InsertStmt,
    DeleteStmt,
    UpdateStmt,
    DropStmt,
    ExplainStmt,
    AnalyzeStmt,
]
