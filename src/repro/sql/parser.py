"""Recursive-descent parser for the repro SQL dialect.

Grammar sketch (statements)::

    statement   := select | create_table | create_view | insert | drop | explain
    select      := select_core (set_op select_core)* [ORDER BY ...] [LIMIT ...]
    select_core := SELECT [PROVENANCE] [DISTINCT] targets [INTO name]
                   [FROM from_list] [WHERE expr] [GROUP BY exprs] [HAVING expr]

and (expressions, loosest to tightest)::

    expr := or | and | not | predicate | additive | multiplicative | unary | primary

``predicate`` covers comparisons, IS NULL, BETWEEN, IN, LIKE and
quantified comparisons (ANY/ALL), all of which may contain sublinks.

The SQL-PLE extensions are recognized here: ``SELECT PROVENANCE``, the
from-item suffixes ``PROVENANCE (attrs)`` and ``BASERELATION``.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ParseError
from repro.sql import ast
from repro.sql.lexer import tokenize
from repro.sql.tokens import Token, TokenKind

_COMPARISON_OPS = frozenset({"=", "<>", "!=", "<", "<=", ">", ">="})
_ADDITIVE_OPS = frozenset({"+", "-", "||"})
_MULTIPLICATIVE_OPS = frozenset({"*", "/", "%"})

# Aggregate names; used only to give nicer parse-time errors for DISTINCT.
_KNOWN_AGGREGATES = frozenset({"sum", "count", "avg", "min", "max"})


def parse_sql(text: str) -> list[ast.Statement]:
    """Parse a string of one or more ``;``-separated statements."""
    parser = _Parser(text)
    return parser.parse_statements()


def parse_statement(text: str) -> ast.Statement:
    """Parse exactly one statement."""
    statements = parse_sql(text)
    if len(statements) != 1:
        raise ParseError(f"expected exactly one statement, got {len(statements)}")
    return statements[0]


def parse_expression(text: str) -> ast.Expr:
    """Parse a standalone scalar expression (used by tests and workloads)."""
    parser = _Parser(text)
    expr = parser.parse_expr()
    parser.expect_eof()
    return expr


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = tokenize(text)
        self.pos = 0

    # -- token plumbing ------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def at_keyword(self, *names: str) -> bool:
        return self.peek().is_keyword(*names)

    def accept_keyword(self, *names: str) -> bool:
        if self.at_keyword(*names):
            self.advance()
            return True
        return False

    def expect_keyword(self, name: str) -> Token:
        token = self.peek()
        if not token.is_keyword(name):
            raise ParseError(f"expected {name}, found {token.value!r}", token.position)
        return self.advance()

    def at_punct(self, value: str) -> bool:
        token = self.peek()
        return token.kind is TokenKind.PUNCT and token.value == value

    def accept_punct(self, value: str) -> bool:
        if self.at_punct(value):
            self.advance()
            return True
        return False

    def expect_punct(self, value: str) -> Token:
        token = self.peek()
        if not (token.kind is TokenKind.PUNCT and token.value == value):
            raise ParseError(f"expected {value!r}, found {token.value!r}", token.position)
        return self.advance()

    def at_operator(self, *values: str) -> bool:
        token = self.peek()
        return token.kind is TokenKind.OPERATOR and token.value in values

    def expect_ident(self, what: str = "identifier") -> str:
        token = self.peek()
        if token.kind is TokenKind.IDENT:
            self.advance()
            return token.value
        # Allow a few non-reserved-feeling keywords as identifiers where
        # unambiguous (e.g. a column named "year" is lexed as IDENT already;
        # keywords like DATE stay reserved).
        raise ParseError(f"expected {what}, found {token.value!r}", token.position)

    def expect_eof(self) -> None:
        token = self.peek()
        if token.kind is not TokenKind.EOF:
            raise ParseError(f"unexpected trailing input {token.value!r}", token.position)

    # -- statements ----------------------------------------------------------

    def parse_statements(self) -> list[ast.Statement]:
        statements: list[ast.Statement] = []
        while True:
            while self.accept_punct(";"):
                pass
            if self.peek().kind is TokenKind.EOF:
                break
            statements.append(self.parse_one_statement())
            if not self.accept_punct(";"):
                break
        self.expect_eof()
        return statements

    def parse_one_statement(self) -> ast.Statement:
        token = self.peek()
        if token.is_keyword("SELECT") or self.at_punct("("):
            return self.parse_select()
        if token.is_keyword("CREATE"):
            return self.parse_create()
        if token.is_keyword("INSERT"):
            return self.parse_insert()
        if token.is_keyword("DELETE"):
            return self.parse_delete()
        if token.is_keyword("UPDATE"):
            return self.parse_update()
        if token.is_keyword("REFRESH"):
            return self.parse_refresh()
        if token.is_keyword("DROP"):
            return self.parse_drop()
        if token.is_keyword("EXPLAIN"):
            self.advance()
            return ast.ExplainStmt(query=self.parse_select())
        if token.is_keyword("ANALYZE"):
            self.advance()
            name = None
            if self.peek().kind is TokenKind.IDENT:
                name = self.expect_ident("table name")
            return ast.AnalyzeStmt(table=name)
        raise ParseError(f"unexpected token {token.value!r}", token.position)

    # -- SELECT with set operations -------------------------------------------

    def parse_select(self) -> ast.SelectNode:
        node = self.parse_select_intersect()
        while self.at_keyword("UNION", "EXCEPT"):
            op = self.advance().value.lower()
            all_flag = self.accept_keyword("ALL")
            self.accept_keyword("DISTINCT")
            right = self.parse_select_intersect()
            node = ast.SetOpSelect(op=op, all=all_flag, left=node, right=right)
        if isinstance(node, ast.SetOpSelect):
            # PROVENANCE / INTO written in the first select-clause mark the
            # whole set-operation statement (SQL-PLE, section IV-A.2).
            leaf = node.left
            while isinstance(leaf, ast.SetOpSelect):
                leaf = leaf.left
            if leaf.provenance:
                node.provenance = True
                node.provenance_type = leaf.provenance_type
                leaf.provenance = False
                leaf.provenance_type = None
            if leaf.into is not None and node.into is None:
                node.into = leaf.into
                leaf.into = None
        self._attach_select_tail(node)
        return node

    def parse_select_intersect(self) -> ast.SelectNode:
        node = self.parse_select_atom()
        while self.at_keyword("INTERSECT"):
            self.advance()
            all_flag = self.accept_keyword("ALL")
            self.accept_keyword("DISTINCT")
            right = self.parse_select_atom()
            node = ast.SetOpSelect(op="intersect", all=all_flag, left=node, right=right)
        return node

    def parse_select_atom(self) -> ast.SelectNode:
        if self.accept_punct("("):
            inner = self.parse_select()
            self.expect_punct(")")
            return inner
        return self.parse_select_core()

    def _attach_select_tail(self, node: ast.SelectNode) -> None:
        """Attach ORDER BY / LIMIT / OFFSET to the outermost select node."""
        if self.at_keyword("ORDER"):
            self.advance()
            self.expect_keyword("BY")
            items = [self.parse_sort_item()]
            while self.accept_punct(","):
                items.append(self.parse_sort_item())
            node.order_by = items
        if self.at_keyword("LIMIT"):
            self.advance()
            if self.accept_keyword("ALL"):
                node.limit = None
            else:
                node.limit = self.parse_expr()
        if self.at_keyword("OFFSET"):
            self.advance()
            node.offset = self.parse_expr()

    def parse_sort_item(self) -> ast.SortBy:
        expr = self.parse_expr()
        descending = False
        if self.accept_keyword("ASC"):
            descending = False
        elif self.accept_keyword("DESC"):
            descending = True
        nulls_first: Optional[bool] = None
        if self.accept_keyword("NULLS"):
            if self.accept_keyword("FIRST"):
                nulls_first = True
            else:
                self.expect_keyword("LAST")
                nulls_first = False
        return ast.SortBy(expr=expr, descending=descending, nulls_first=nulls_first)

    def parse_select_core(self) -> ast.SelectStmt:
        self.expect_keyword("SELECT")
        stmt = ast.SelectStmt()
        # SQL-PLE: SELECT PROVENANCE ... (section IV-A.2), optionally with
        # a named contribution semantics: SELECT PROVENANCE (polynomial).
        if self.accept_keyword("PROVENANCE"):
            stmt.provenance = True
            stmt.provenance_type = self._parse_provenance_semantics()
        if self.accept_keyword("DISTINCT"):
            stmt.distinct = True
        elif self.accept_keyword("ALL"):
            pass
        stmt.target_list = [self.parse_res_target()]
        while self.accept_punct(","):
            stmt.target_list.append(self.parse_res_target())
        if self.accept_keyword("INTO"):
            stmt.into = self.expect_ident("table name")
        if self.accept_keyword("FROM"):
            stmt.from_clause = [self.parse_from_item()]
            while self.accept_punct(","):
                stmt.from_clause.append(self.parse_from_item())
        if self.accept_keyword("WHERE"):
            stmt.where = self.parse_expr()
        if self.at_keyword("GROUP"):
            self.advance()
            self.expect_keyword("BY")
            stmt.group_by = [self.parse_expr()]
            while self.accept_punct(","):
                stmt.group_by.append(self.parse_expr())
        if self.accept_keyword("HAVING"):
            stmt.having = self.parse_expr()
        return stmt

    def parse_res_target(self) -> ast.ResTarget:
        # Bare * and qualified t.* select-list entries.
        if self.at_operator("*"):
            self.advance()
            return ast.ResTarget(expr=ast.Star())
        if (
            self.peek().kind is TokenKind.IDENT
            and self.peek(1).kind is TokenKind.PUNCT
            and self.peek(1).value == "."
            and self.peek(2).kind is TokenKind.OPERATOR
            and self.peek(2).value == "*"
        ):
            relation = self.advance().value
            self.advance()  # '.'
            self.advance()  # '*'
            return ast.ResTarget(expr=ast.Star(relation=relation))
        expr = self.parse_expr()
        name: Optional[str] = None
        if self.accept_keyword("AS"):
            name = self._parse_label()
        elif self.peek().kind is TokenKind.IDENT:
            name = self.advance().value
        return ast.ResTarget(expr=expr, name=name)

    def _parse_label(self) -> str:
        token = self.peek()
        if token.kind is TokenKind.IDENT:
            self.advance()
            return token.value
        raise ParseError(f"expected label after AS, found {token.value!r}", token.position)

    # -- FROM clause -----------------------------------------------------------

    def parse_from_item(self) -> ast.FromItem:
        item = self.parse_join_operand()
        while True:
            natural = False
            if self.at_keyword("NATURAL"):
                natural = True
                self.advance()
            if self.at_keyword("JOIN", "INNER"):
                if self.accept_keyword("INNER"):
                    pass
                self.expect_keyword("JOIN")
                join_type = "inner"
            elif self.at_keyword("LEFT", "RIGHT", "FULL"):
                join_type = self.advance().value.lower()
                self.accept_keyword("OUTER")
                self.expect_keyword("JOIN")
            elif self.at_keyword("CROSS"):
                self.advance()
                self.expect_keyword("JOIN")
                join_type = "cross"
            else:
                if natural:
                    raise ParseError("NATURAL must be followed by a join", self.peek().position)
                break
            right = self.parse_join_operand()
            condition: Optional[ast.Expr] = None
            using: tuple[str, ...] = ()
            if natural:
                pass
            elif join_type == "cross":
                pass
            elif self.accept_keyword("ON"):
                condition = self.parse_expr()
            elif self.accept_keyword("USING"):
                self.expect_punct("(")
                names = [self.expect_ident("column name")]
                while self.accept_punct(","):
                    names.append(self.expect_ident("column name"))
                self.expect_punct(")")
                using = tuple(names)
            else:
                raise ParseError(
                    "JOIN requires ON or USING (or use CROSS/NATURAL JOIN)",
                    self.peek().position,
                )
            item = ast.JoinExpr(
                join_type=join_type,
                left=item,
                right=right,
                condition=condition,
                using=using,
                natural=natural,
            )
        return item

    def parse_join_operand(self) -> ast.FromItem:
        if self.at_punct("("):
            # Either a parenthesized join/from-item or a subselect.
            if self._paren_starts_select():
                self.advance()  # '('
                subquery = self.parse_select()
                self.expect_punct(")")
                return self._parse_subselect_tail(subquery)
            self.advance()  # '('
            inner = self.parse_from_item()
            self.expect_punct(")")
            return inner
        name = self.expect_ident("relation name")
        item = ast.RangeVar(name=name)
        self._parse_from_item_suffix(item)
        return item

    def _paren_starts_select(self) -> bool:
        """After a '(', decide between a subselect and a nested from-item.

        A parenthesized group whose first depth-1 token is SELECT is a
        subselect; one whose first decisive depth-1 token is a set-operation
        keyword (``((...) UNION (...))``) is a *compound* subselect — the
        shape the provenance rewrites deparse for set-operation inputs.
        """
        depth = 0
        offset = 0
        while True:
            token = self.peek(offset)
            if token.kind is TokenKind.EOF:
                return False
            if token.kind is TokenKind.PUNCT and token.value == "(":
                depth += 1
                offset += 1
                if depth == 1:
                    continue
                continue
            if depth == 1:
                return token.is_keyword("SELECT", "UNION", "INTERSECT", "EXCEPT")
            if token.kind is TokenKind.PUNCT and token.value == ")":
                depth -= 1
            offset += 1

    def _parse_subselect_tail(self, subquery: ast.SelectNode) -> ast.RangeSubselect:
        base_relation = self.accept_keyword("BASERELATION")
        alias: Optional[str] = None
        column_aliases: tuple[str, ...] = ()
        if self.accept_keyword("AS"):
            alias = self._parse_label()
        elif self.peek().kind is TokenKind.IDENT:
            alias = self.advance().value
        if alias is not None and self.at_punct("("):
            # Only treat as column aliases when not a PROVENANCE clause.
            column_aliases = self._parse_name_list()
        provenance_attrs = self._parse_provenance_clause()
        if not base_relation:
            base_relation = self.accept_keyword("BASERELATION")
        if alias is None:
            raise ParseError("subquery in FROM must have an alias", self.peek().position)
        return ast.RangeSubselect(
            subquery=subquery,
            alias=alias,
            column_aliases=column_aliases,
            provenance_attrs=provenance_attrs,
            base_relation=base_relation,
        )

    def _parse_from_item_suffix(self, item: ast.RangeVar) -> None:
        item.base_relation = self.accept_keyword("BASERELATION")
        if self.accept_keyword("AS"):
            item.alias = self._parse_label()
        elif self.peek().kind is TokenKind.IDENT:
            item.alias = self.advance().value
        if item.alias is not None and self.at_punct("("):
            item.column_aliases = self._parse_name_list()
        item.provenance_attrs = self._parse_provenance_clause()
        if not item.base_relation:
            item.base_relation = self.accept_keyword("BASERELATION")

    def _parse_provenance_semantics(self) -> Optional[str]:
        """``(name)`` directly after ``SELECT PROVENANCE``.

        A single parenthesized identifier names the rewrite strategy
        (``polynomial``, ``witness``, ...).  Anything else -- including a
        parenthesized expression over one column -- is left untouched for
        the select list.  A bare column must not be wrapped in parentheses
        as the first target of a ``SELECT PROVENANCE``; alias it or drop
        the parentheses.
        """
        if (
            self.at_punct("(")
            and self.peek(1).kind is TokenKind.IDENT
            and self.peek(2).kind is TokenKind.PUNCT
            and self.peek(2).value == ")"
        ):
            self.advance()  # '('
            name = self.advance().value.lower()
            self.advance()  # ')'
            return name
        return None

    def _parse_provenance_clause(self) -> Optional[tuple[str, ...]]:
        """``PROVENANCE (attr, ...)`` marking already-rewritten inputs."""
        if not self.at_keyword("PROVENANCE"):
            return None
        self.advance()
        return tuple(self._parse_name_list())

    def _parse_name_list(self) -> tuple[str, ...]:
        self.expect_punct("(")
        names = [self.expect_ident("name")]
        while self.accept_punct(","):
            names.append(self.expect_ident("name"))
        self.expect_punct(")")
        return tuple(names)

    # -- other statements --------------------------------------------------------

    def parse_create(self) -> ast.Statement:
        self.expect_keyword("CREATE")
        if self.accept_keyword("OR"):
            self.expect_keyword("REPLACE")
        if self.accept_keyword("TABLE"):
            return self.parse_create_table()
        if self.accept_keyword("VIEW"):
            return self.parse_create_view()
        if self.accept_keyword("MATERIALIZED"):
            self.expect_keyword("PROVENANCE")
            self.expect_keyword("VIEW")
            return self.parse_create_matview()
        token = self.peek()
        raise ParseError(
            f"expected TABLE, VIEW or MATERIALIZED PROVENANCE VIEW, "
            f"found {token.value!r}",
            token.position,
        )

    def parse_create_table(self) -> ast.CreateTableStmt:
        name = self.expect_ident("table name")
        self.expect_punct("(")
        columns: list[ast.ColumnDef] = []
        primary_key: tuple[str, ...] = ()
        while True:
            if self.at_keyword("PRIMARY"):
                self.advance()
                self.expect_keyword("KEY")
                primary_key = self._parse_name_list()
            else:
                col_name = self.expect_ident("column name")
                type_name = self._parse_type_name()
                columns.append(ast.ColumnDef(name=col_name, type_name=type_name))
            if not self.accept_punct(","):
                break
        self.expect_punct(")")
        return ast.CreateTableStmt(name=name, columns=columns, primary_key=primary_key)

    def _parse_type_name(self) -> str:
        parts: list[str] = []
        token = self.peek()
        if token.kind is TokenKind.IDENT or token.is_keyword("DATE", "INTERVAL"):
            parts.append(self.advance().value)
        else:
            raise ParseError(f"expected type name, found {token.value!r}", token.position)
        # multi-word type names: double precision, character varying
        while self.peek().kind is TokenKind.IDENT and self.peek().value in ("precision", "varying"):
            parts.append(self.advance().value)
        if self.at_punct("("):
            self.advance()
            args = [self.advance().value]
            while self.accept_punct(","):
                args.append(self.advance().value)
            self.expect_punct(")")
            parts[-1] += "(" + ",".join(args) + ")"
        return " ".join(parts)

    def parse_create_view(self) -> ast.CreateViewStmt:
        name = self.expect_ident("view name")
        provenance_attrs: tuple[str, ...] = ()
        if self.at_keyword("PROVENANCE"):
            self.advance()
            provenance_attrs = self._parse_name_list()
        self.expect_keyword("AS")
        start = self.peek().position
        query = self.parse_select()
        end = self.peek().position
        sql_text = self.text[start:end].strip()
        return ast.CreateViewStmt(
            name=name, query=query, sql_text=sql_text, provenance_attrs=provenance_attrs
        )

    def parse_create_matview(self) -> ast.CreateMatViewStmt:
        name = self.expect_ident("view name")
        self.expect_keyword("AS")
        start = self.peek().position
        query = self.parse_select()
        end = self.peek().position
        sql_text = self.text[start:end].strip()
        return ast.CreateMatViewStmt(name=name, query=query, sql_text=sql_text)

    def parse_refresh(self) -> ast.RefreshMatViewStmt:
        self.expect_keyword("REFRESH")
        self.expect_keyword("MATERIALIZED")
        self.expect_keyword("PROVENANCE")
        self.expect_keyword("VIEW")
        name = self.expect_ident("view name")
        return ast.RefreshMatViewStmt(name=name)

    def parse_insert(self) -> ast.InsertStmt:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_ident("table name")
        columns: tuple[str, ...] = ()
        if self.at_punct("(") and not self._paren_starts_select():
            columns = self._parse_name_list()
        if self.accept_keyword("VALUES"):
            rows: list[list[ast.Expr]] = []
            while True:
                self.expect_punct("(")
                row = [self.parse_expr()]
                while self.accept_punct(","):
                    row.append(self.parse_expr())
                self.expect_punct(")")
                rows.append(row)
                if not self.accept_punct(","):
                    break
            return ast.InsertStmt(table=table, columns=columns, values=rows)
        query = self.parse_select()
        return ast.InsertStmt(table=table, columns=columns, query=query)

    def parse_delete(self) -> ast.DeleteStmt:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.expect_ident("table name")
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expr()
        return ast.DeleteStmt(table=table, where=where)

    def parse_update(self) -> ast.UpdateStmt:
        self.expect_keyword("UPDATE")
        table = self.expect_ident("table name")
        self.expect_keyword("SET")
        assignments: list[tuple[str, ast.Expr]] = []
        while True:
            column = self.expect_ident("column name")
            token = self.peek()
            if not (token.kind is TokenKind.OPERATOR and token.value == "="):
                raise ParseError(f"expected =, found {token.value!r}", token.position)
            self.advance()
            assignments.append((column, self.parse_expr()))
            if not self.accept_punct(","):
                break
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expr()
        return ast.UpdateStmt(table=table, assignments=assignments, where=where)

    def parse_drop(self) -> ast.DropStmt:
        self.expect_keyword("DROP")
        if self.accept_keyword("TABLE"):
            kind = "table"
        elif self.accept_keyword("MATERIALIZED"):
            self.accept_keyword("PROVENANCE")
            self.expect_keyword("VIEW")
            kind = "matview"
        elif self.accept_keyword("VIEW"):
            kind = "view"
        else:
            token = self.peek()
            raise ParseError(
                f"expected TABLE, VIEW or MATERIALIZED PROVENANCE VIEW, "
                f"found {token.value!r}",
                token.position,
            )
        if_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("EXISTS")
            if_exists = True
        name = self.expect_ident("relation name")
        return ast.DropStmt(kind=kind, name=name, if_exists=if_exists)

    # -- expressions ------------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self.parse_or()

    def parse_or(self) -> ast.Expr:
        left = self.parse_and()
        if not self.at_keyword("OR"):
            return left
        args = [left]
        while self.accept_keyword("OR"):
            args.append(self.parse_and())
        return ast.BoolOp(op="or", args=tuple(args))

    def parse_and(self) -> ast.Expr:
        left = self.parse_not()
        if not self.at_keyword("AND"):
            return left
        args = [left]
        while self.accept_keyword("AND"):
            args.append(self.parse_not())
        return ast.BoolOp(op="and", args=tuple(args))

    def parse_not(self) -> ast.Expr:
        if self.accept_keyword("NOT"):
            return ast.BoolOp(op="not", args=(self.parse_not(),))
        return self.parse_predicate()

    def parse_predicate(self) -> ast.Expr:
        left = self.parse_additive()
        token = self.peek()
        if token.kind is TokenKind.OPERATOR and token.value in _COMPARISON_OPS:
            op = self.advance().value
            if op == "!=":
                op = "<>"
            if self.at_keyword("ANY", "SOME", "ALL"):
                quant = self.advance().value
                kind = "any" if quant in ("ANY", "SOME") else "all"
                self.expect_punct("(")
                subquery = self.parse_select()
                self.expect_punct(")")
                return ast.SubLinkExpr(kind=kind, subquery=subquery, testexpr=left, operator=op)
            right = self.parse_additive()
            return ast.BinaryOp(op=op, left=left, right=right)
        negated = False
        if self.at_keyword("NOT") and self.peek(1).is_keyword("BETWEEN", "IN", "LIKE"):
            self.advance()
            negated = True
        if self.accept_keyword("IS"):
            # IS [NOT] DISTINCT FROM — the null-safe comparison emitted by
            # the provenance rewrites; accepting it closes the
            # parse→deparse→parse round-trip for rewritten queries.
            if self.accept_keyword("DISTINCT"):
                self.expect_keyword("FROM")
                right = self.parse_additive()
                return ast.DistinctExpr(left=left, right=right, negated=False)
            is_not = self.accept_keyword("NOT")
            if is_not and self.accept_keyword("DISTINCT"):
                self.expect_keyword("FROM")
                right = self.parse_additive()
                return ast.DistinctExpr(left=left, right=right, negated=True)
            self.expect_keyword("NULL")
            return ast.IsNullExpr(expr=left, negated=is_not)
        if self.accept_keyword("BETWEEN"):
            low = self.parse_additive()
            self.expect_keyword("AND")
            high = self.parse_additive()
            return ast.BetweenExpr(expr=left, low=low, high=high, negated=negated)
        if self.accept_keyword("IN"):
            self.expect_punct("(")
            if self.at_keyword("SELECT"):
                subquery = self.parse_select()
                self.expect_punct(")")
                # NOT IN is x <> ALL (subquery); IN is x = ANY (subquery).
                if negated:
                    return ast.SubLinkExpr(
                        kind="all", subquery=subquery, testexpr=left, operator="<>"
                    )
                return ast.SubLinkExpr(kind="any", subquery=subquery, testexpr=left, operator="=")
            items = [self.parse_expr()]
            while self.accept_punct(","):
                items.append(self.parse_expr())
            self.expect_punct(")")
            return ast.InListExpr(expr=left, items=tuple(items), negated=negated)
        if self.accept_keyword("LIKE"):
            pattern = self.parse_additive()
            return ast.LikeExpr(expr=left, pattern=pattern, negated=negated)
        if negated:
            raise ParseError("dangling NOT", token.position)
        return left

    def parse_additive(self) -> ast.Expr:
        left = self.parse_multiplicative()
        while self.at_operator(*_ADDITIVE_OPS):
            op = self.advance().value
            right = self.parse_multiplicative()
            left = ast.BinaryOp(op=op, left=left, right=right)
        return left

    def parse_multiplicative(self) -> ast.Expr:
        left = self.parse_unary()
        while self.at_operator(*_MULTIPLICATIVE_OPS):
            op = self.advance().value
            right = self.parse_unary()
            left = ast.BinaryOp(op=op, left=left, right=right)
        return left

    def parse_unary(self) -> ast.Expr:
        if self.at_operator("-", "+"):
            op = self.advance().value
            operand = self.parse_unary()
            if op == "+":
                return operand
            if isinstance(operand, ast.NumberLit):
                return ast.NumberLit(value=-operand.value)
            return ast.UnaryOp(op="-", operand=operand)
        return self.parse_primary()

    def parse_primary(self) -> ast.Expr:
        token = self.peek()
        if token.kind is TokenKind.NUMBER:
            self.advance()
            text = token.value
            if "." in text or "e" in text or "E" in text:
                return ast.NumberLit(value=float(text))
            return ast.NumberLit(value=int(text))
        if token.kind is TokenKind.STRING:
            self.advance()
            return ast.StringLit(value=token.value)
        if token.is_keyword("NULL"):
            self.advance()
            return ast.NullLit()
        if token.is_keyword("TRUE"):
            self.advance()
            return ast.BoolLit(value=True)
        if token.is_keyword("FALSE"):
            self.advance()
            return ast.BoolLit(value=False)
        if token.is_keyword("DATE"):
            self.advance()
            lit = self.peek()
            if lit.kind is not TokenKind.STRING:
                raise ParseError("expected string after DATE", lit.position)
            self.advance()
            return ast.DateLit(text=lit.value)
        if token.is_keyword("INTERVAL"):
            self.advance()
            lit = self.peek()
            if lit.kind is not TokenKind.STRING:
                raise ParseError("expected string after INTERVAL", lit.position)
            self.advance()
            unit_token = self.peek()
            if unit_token.kind is not TokenKind.IDENT:
                raise ParseError("expected interval unit", unit_token.position)
            self.advance()
            return ast.IntervalLit(quantity=lit.value, unit=unit_token.value)
        if token.is_keyword("CASE"):
            return self.parse_case()
        if token.is_keyword("EXISTS"):
            self.advance()
            self.expect_punct("(")
            subquery = self.parse_select()
            self.expect_punct(")")
            return ast.SubLinkExpr(kind="exists", subquery=subquery)
        if token.is_keyword("CAST"):
            self.advance()
            self.expect_punct("(")
            expr = self.parse_expr()
            self.expect_keyword("AS")
            type_name = self._parse_type_name()
            self.expect_punct(")")
            return ast.CastExpr(expr=expr, type_name=type_name)
        if token.is_keyword("EXTRACT"):
            self.advance()
            self.expect_punct("(")
            field_token = self.advance()
            self.expect_keyword("FROM")
            expr = self.parse_expr()
            self.expect_punct(")")
            return ast.ExtractExpr(fieldname=field_token.value.lower(), expr=expr)
        if token.is_keyword("SUBSTRING"):
            self.advance()
            self.expect_punct("(")
            expr = self.parse_expr()
            if self.accept_keyword("FROM"):
                start = self.parse_expr()
                length = self.parse_expr() if self.accept_keyword("FOR") else None
            else:
                self.expect_punct(",")
                start = self.parse_expr()
                length = self.parse_expr() if self.accept_punct(",") else None
            self.expect_punct(")")
            return ast.SubstringExpr(expr=expr, start=start, length=length)
        if self.at_punct("("):
            if self._paren_starts_select():
                self.advance()
                subquery = self.parse_select()
                self.expect_punct(")")
                return ast.SubLinkExpr(kind="scalar", subquery=subquery)
            self.advance()
            expr = self.parse_expr()
            self.expect_punct(")")
            return expr
        if token.kind is TokenKind.IDENT:
            return self.parse_identifier_expr()
        raise ParseError(f"unexpected token {token.value!r} in expression", token.position)

    def parse_case(self) -> ast.CaseExpr:
        self.expect_keyword("CASE")
        operand: Optional[ast.Expr] = None
        if not self.at_keyword("WHEN"):
            operand = self.parse_expr()
        whens: list[tuple[ast.Expr, ast.Expr]] = []
        while self.accept_keyword("WHEN"):
            cond = self.parse_expr()
            self.expect_keyword("THEN")
            result = self.parse_expr()
            whens.append((cond, result))
        if not whens:
            raise ParseError("CASE requires at least one WHEN", self.peek().position)
        default: Optional[ast.Expr] = None
        if self.accept_keyword("ELSE"):
            default = self.parse_expr()
        self.expect_keyword("END")
        return ast.CaseExpr(whens=tuple(whens), operand=operand, default=default)

    def parse_identifier_expr(self) -> ast.Expr:
        name = self.advance().value
        if self.at_punct("("):
            self.advance()
            if self.at_operator("*"):
                self.advance()
                self.expect_punct(")")
                return ast.FuncCall(name=name, star=True)
            if self.at_punct(")"):
                self.advance()
                return ast.FuncCall(name=name)
            distinct = self.accept_keyword("DISTINCT")
            args = [self.parse_expr()]
            while self.accept_punct(","):
                args.append(self.parse_expr())
            self.expect_punct(")")
            return ast.FuncCall(name=name, args=tuple(args), distinct=distinct)
        if self.at_punct(".") and not (
            self.peek(1).kind is TokenKind.OPERATOR and self.peek(1).value == "*"
        ):
            self.advance()
            column = self.expect_ident("column name")
            return ast.ColumnRef(name=column, relation=name)
        if self.at_punct(".") and self.peek(1).kind is TokenKind.OPERATOR:
            # t.* in an expression position (only valid in select lists,
            # handled by parse_res_target; reject elsewhere).
            raise ParseError("qualified * only allowed in the select list", self.peek().position)
        return ast.ColumnRef(name=name)
