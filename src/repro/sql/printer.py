"""Rendering of raw AST select statements back to SQL text.

A debugging and documentation aid, but also the canonical *logical log*
encoding: the write-ahead log (:mod:`repro.wal`) records every durable
statement as its printed form and recovery re-parses it, so every
statement kind the engine can commit must print to re-parseable SQL.
Round-tripping is not guaranteed to be byte-identical, only
semantically equivalent.
"""

from __future__ import annotations

from repro.sql import ast


def format_statement(node: ast.Statement) -> str:
    """Render a statement back to SQL (selects, EXPLAIN, ANALYZE, DML and
    materialized-view statements)."""
    if isinstance(node, ast.AnalyzeStmt):
        return f"ANALYZE {node.table}" if node.table else "ANALYZE"
    if isinstance(node, ast.ExplainStmt):
        return f"EXPLAIN {format_select(node.query)}"
    if isinstance(node, (ast.SelectStmt, ast.SetOpSelect)):
        return format_select(node)
    if isinstance(node, ast.CreateMatViewStmt):
        return (
            f"CREATE MATERIALIZED PROVENANCE VIEW {node.name} "
            f"AS {format_select(node.query)}"
        )
    if isinstance(node, ast.RefreshMatViewStmt):
        return f"REFRESH MATERIALIZED PROVENANCE VIEW {node.name}"
    if isinstance(node, ast.DeleteStmt):
        tail = f" WHERE {node.where}" if node.where is not None else ""
        return f"DELETE FROM {node.table}{tail}"
    if isinstance(node, ast.UpdateStmt):
        sets = ", ".join(f"{col} = {expr}" for col, expr in node.assignments)
        tail = f" WHERE {node.where}" if node.where is not None else ""
        return f"UPDATE {node.table} SET {sets}{tail}"
    if isinstance(node, ast.DropStmt):
        kind = {
            "table": "TABLE",
            "view": "VIEW",
            "matview": "MATERIALIZED PROVENANCE VIEW",
        }[node.kind]
        exists = "IF EXISTS " if node.if_exists else ""
        return f"DROP {kind} {exists}{node.name}"
    if isinstance(node, ast.CreateTableStmt):
        items = [f"{col.name} {col.type_name}" for col in node.columns]
        if node.primary_key:
            items.append("PRIMARY KEY (" + ", ".join(node.primary_key) + ")")
        return f"CREATE TABLE {node.name} (" + ", ".join(items) + ")"
    if isinstance(node, ast.CreateViewStmt):
        marker = (
            " PROVENANCE (" + ", ".join(node.provenance_attrs) + ")"
            if node.provenance_attrs
            else ""
        )
        return (
            f"CREATE VIEW {node.name}{marker} AS {format_select(node.query)}"
        )
    if isinstance(node, ast.InsertStmt):
        text = f"INSERT INTO {node.table}"
        if node.columns:
            text += " (" + ", ".join(node.columns) + ")"
        if node.query is not None:
            return f"{text} {format_select(node.query)}"
        rows = ", ".join(
            "(" + ", ".join(str(expr) for expr in row) + ")"
            for row in node.values
        )
        return f"{text} VALUES {rows}"
    raise TypeError(f"cannot format statement {node!r}")


def format_select(node: ast.SelectNode) -> str:
    if isinstance(node, ast.SetOpSelect):
        op = node.op.upper() + (" ALL" if node.all else "")
        text = f"({format_select(node.left)}) {op} ({format_select(node.right)})"
        if node.provenance:
            # The marker lives in the first select-clause (SQL-PLE); the
            # parser lifts it back to the set-operation root on re-parse.
            text = text.replace("SELECT", "SELECT " + _provenance_marker(node), 1)
        return text + _format_tail(node)
    parts = ["SELECT"]
    if node.provenance:
        parts.append(_provenance_marker(node))
    if node.distinct:
        parts.append("DISTINCT")
    targets = []
    for target in node.target_list:
        piece = str(target.expr)
        if target.name:
            piece += f" AS {target.name}"
        targets.append(piece)
    parts.append(", ".join(targets))
    if node.into:
        parts.append(f"INTO {node.into}")
    if node.from_clause:
        parts.append("FROM " + ", ".join(_format_from_item(f) for f in node.from_clause))
    if node.where is not None:
        parts.append(f"WHERE {node.where}")
    if node.group_by:
        parts.append("GROUP BY " + ", ".join(str(e) for e in node.group_by))
    if node.having is not None:
        parts.append(f"HAVING {node.having}")
    return " ".join(parts) + _format_tail(node)


def _provenance_marker(node: ast.SelectNode) -> str:
    if node.provenance_type:
        return f"PROVENANCE ({node.provenance_type})"
    return "PROVENANCE"


def _format_tail(node: ast.SelectNode) -> str:
    pieces = []
    if node.order_by:
        items = []
        for sort in node.order_by:
            item = str(sort.expr)
            if sort.descending:
                item += " DESC"
            if sort.nulls_first is True:
                item += " NULLS FIRST"
            elif sort.nulls_first is False:
                item += " NULLS LAST"
            items.append(item)
        pieces.append("ORDER BY " + ", ".join(items))
    if node.limit is not None:
        pieces.append(f"LIMIT {node.limit}")
    if node.offset is not None:
        pieces.append(f"OFFSET {node.offset}")
    return (" " + " ".join(pieces)) if pieces else ""


def _format_from_item(item: ast.FromItem) -> str:
    if isinstance(item, ast.RangeVar):
        text = item.name
        if item.base_relation:
            text += " BASERELATION"
        if item.alias:
            text += f" AS {item.alias}"
        if item.column_aliases:
            text += " (" + ", ".join(item.column_aliases) + ")"
        if item.provenance_attrs is not None:
            text += " PROVENANCE (" + ", ".join(item.provenance_attrs) + ")"
        return text
    if isinstance(item, ast.RangeSubselect):
        text = f"({format_select(item.subquery)})"
        if item.base_relation:
            text += " BASERELATION"
        text += f" AS {item.alias}"
        if item.column_aliases:
            text += " (" + ", ".join(item.column_aliases) + ")"
        if item.provenance_attrs is not None:
            text += " PROVENANCE (" + ", ".join(item.provenance_attrs) + ")"
        return text
    if isinstance(item, ast.JoinExpr):
        join = {"inner": "JOIN", "left": "LEFT JOIN", "right": "RIGHT JOIN",
                "full": "FULL JOIN", "cross": "CROSS JOIN"}[item.join_type]
        text = f"{_format_from_item(item.left)} {join} {_format_from_item(item.right)}"
        if item.condition is not None:
            text += f" ON {item.condition}"
        elif item.using:
            text += " USING (" + ", ".join(item.using) + ")"
        return text
    raise TypeError(f"unknown from item {item!r}")
