"""SQL frontend: lexer, AST and recursive-descent parser.

The dialect is the PostgreSQL-flavoured subset needed by the paper's
workloads (TPC-H queries 1,3,5,6,7,8,9,10,11,12,13,14,15,16,19 and the
running example) plus the SQL-PLE provenance extensions:

* ``SELECT PROVENANCE ...`` (section IV-A.2),
* ``FROM item PROVENANCE (attr, ...)`` (section IV-A.3), and
* ``FROM item BASERELATION`` (section IV-A.4).
"""

from repro.sql.lexer import tokenize
from repro.sql.parser import parse_sql, parse_statement, parse_expression

__all__ = ["tokenize", "parse_sql", "parse_statement", "parse_expression"]
