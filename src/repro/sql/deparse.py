"""Deparser: analyzed query trees back to SQL text.

The paper's key selling point is that the rewritten query ``q+`` *is an
ordinary SQL query*.  This module makes that tangible:
``PermDatabase.rewritten_sql(sql)`` returns the SQL text of the
provenance-rewritten query tree, which can be inspected, stored or (for
the supported dialect) re-executed.

Caveats: the rewriter's null-safe equality joins deparse as
``a IS NOT DISTINCT FROM b`` (PostgreSQL syntax); the repro parser does
not re-parse that form, so full round-tripping is only guaranteed for
queries without aggregation/set-operation rewrites.
"""

from __future__ import annotations

import datetime

from repro.datatypes import Interval
from repro.errors import PermError
from repro.analyzer import expressions as ex
from repro.analyzer.query_tree import (
    JoinTreeExpr,
    JoinTreeNode,
    Query,
    RangeTableEntry,
    RangeTableRef,
    RTEKind,
    SetOpNode,
    SetOpRangeRef,
    SetOpTreeNode,
)

_JOIN_SQL = {
    "inner": "JOIN",
    "left": "LEFT JOIN",
    "right": "RIGHT JOIN",
    "full": "FULL JOIN",
}

_IDENT_OK = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_$"
)


def _identifier(name: str) -> str:
    """Quote names that are not plain identifiers or collide with keywords
    (e.g. ``?column?`` or ``extract``)."""
    from repro.sql.tokens import KEYWORDS

    if (
        name
        and name[0].isalpha()
        and all(ch in _IDENT_OK for ch in name)
        and name.upper() not in KEYWORDS
    ):
        return name
    escaped = name.replace('"', '""')
    return f'"{escaped}"'

_SETOP_SQL = {"union": "UNION", "intersect": "INTERSECT", "except": "EXCEPT"}


def deparse_query(query: Query, indent: int = 0) -> str:
    """Render an analyzed query tree as SQL text."""
    if query.set_operations is not None:
        return _deparse_setop_query(query, indent)
    pad = " " * indent
    parts: list[str] = []
    distinct = "DISTINCT " if query.distinct else ""
    targets = ", ".join(
        f"{deparse_expr(t.expr, query)} AS {_identifier(t.name)}"
        for t in query.visible_targets
    )
    parts.append(f"{pad}SELECT {distinct}{targets}")
    if query.into:
        parts.append(f"{pad}INTO {query.into}")
    if query.jointree.items:
        from_items = ",\n     ".join(
            _deparse_jointree(item, query, indent) for item in query.jointree.items
        )
        parts.append(f"{pad}FROM {from_items}")
    if query.jointree.quals is not None:
        parts.append(f"{pad}WHERE {deparse_expr(query.jointree.quals, query)}")
    if query.group_clause:
        grouped = ", ".join(deparse_expr(g, query) for g in query.group_clause)
        parts.append(f"{pad}GROUP BY {grouped}")
    if query.having is not None:
        parts.append(f"{pad}HAVING {deparse_expr(query.having, query)}")
    parts.extend(_deparse_tail(query, pad))
    return "\n".join(parts)


def _deparse_tail(query: Query, pad: str) -> list[str]:
    parts: list[str] = []
    if query.sort_clause:
        pieces = []
        for clause in query.sort_clause:
            target = query.target_list[clause.tlist_index]
            piece = deparse_expr(target.expr, query)
            if clause.descending:
                piece += " DESC"
            if clause.nulls_first is True:
                piece += " NULLS FIRST"
            elif clause.nulls_first is False:
                piece += " NULLS LAST"
            pieces.append(piece)
        parts.append(f"{pad}ORDER BY {', '.join(pieces)}")
    if query.limit_count is not None:
        parts.append(f"{pad}LIMIT {deparse_expr(query.limit_count, query)}")
    if query.limit_offset is not None:
        parts.append(f"{pad}OFFSET {deparse_expr(query.limit_offset, query)}")
    return parts


def _deparse_setop_query(query: Query, indent: int) -> str:
    pad = " " * indent
    body = _deparse_setop_tree(query.set_operations, query, indent)
    parts = [body]
    parts.extend(_deparse_tail(query, pad))
    return "\n".join(parts)


def _deparse_setop_tree(node: SetOpTreeNode, query: Query, indent: int) -> str:
    pad = " " * indent
    if isinstance(node, SetOpRangeRef):
        inner = deparse_query(query.range_table[node.rtindex].subquery, indent + 2)
        return f"{pad}(\n{inner}\n{pad})"
    assert isinstance(node, SetOpNode)
    op = _SETOP_SQL[node.op] + (" ALL" if node.all else "")
    left = _deparse_setop_tree(node.left, query, indent)
    right = _deparse_setop_tree(node.right, query, indent)
    return f"{left}\n{pad}{op}\n{right}"


def _deparse_rte(rte: RangeTableEntry, indent: int) -> str:
    if rte.kind is RTEKind.RELATION:
        if rte.alias != rte.relation_name:
            return f"{rte.relation_name} AS {rte.alias}"
        return rte.relation_name or rte.alias
    inner = deparse_query(rte.subquery, indent + 2)
    return f"(\n{inner}\n{' ' * indent}) AS {rte.alias}"


def _deparse_jointree(node: JoinTreeNode, query: Query, indent: int) -> str:
    if isinstance(node, RangeTableRef):
        return _deparse_rte(query.range_table[node.rtindex], indent)
    assert isinstance(node, JoinTreeExpr)
    left = _deparse_jointree(node.left, query, indent)
    right = _deparse_jointree(node.right, query, indent)
    keyword = _JOIN_SQL[node.join_type]
    condition = (
        deparse_expr(node.quals, query) if node.quals is not None else "TRUE"
    )
    return f"({left}\n{' ' * indent}  {keyword} {right} ON {condition})"


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


def deparse_expr(expr: ex.Expr, query: Query) -> str:
    """Render an analyzed expression as SQL relative to ``query``'s scope."""
    if isinstance(expr, ex.Var):
        return _deparse_var(expr, query)
    if isinstance(expr, ex.Const):
        return _deparse_const(expr.value)
    if isinstance(expr, ex.OpExpr):
        return _deparse_op(expr, query)
    if isinstance(expr, ex.BoolOpExpr):
        if expr.op == "not":
            return f"NOT ({deparse_expr(expr.args[0], query)})"
        joiner = f" {expr.op.upper()} "
        return "(" + joiner.join(deparse_expr(a, query) for a in expr.args) + ")"
    if isinstance(expr, ex.FuncExpr):
        return _deparse_func(expr, query)
    if isinstance(expr, ex.Aggref):
        if expr.star:
            return f"{expr.aggname}(*)"
        prefix = "DISTINCT " if expr.distinct else ""
        return f"{expr.aggname}({prefix}{deparse_expr(expr.arg, query)})"
    if isinstance(expr, ex.CaseExpr):
        whens = " ".join(
            f"WHEN {deparse_expr(c, query)} THEN {deparse_expr(r, query)}"
            for c, r in expr.whens
        )
        default = (
            f" ELSE {deparse_expr(expr.default, query)}"
            if expr.default is not None
            else ""
        )
        return f"CASE {whens}{default} END"
    if isinstance(expr, ex.NullTest):
        negation = "NOT " if expr.negated else ""
        return f"{deparse_expr(expr.arg, query)} IS {negation}NULL"
    if isinstance(expr, ex.LikeTest):
        negation = "NOT " if expr.negated else ""
        return (
            f"{deparse_expr(expr.arg, query)} {negation}LIKE "
            f"{deparse_expr(expr.pattern, query)}"
        )
    if isinstance(expr, ex.InList):
        negation = "NOT " if expr.negated else ""
        items = ", ".join(deparse_expr(i, query) for i in expr.items)
        return f"{deparse_expr(expr.arg, query)} {negation}IN ({items})"
    if isinstance(expr, ex.SubLink):
        return _deparse_sublink(expr, query)
    raise PermError(f"cannot deparse expression {expr!r}")


def _deparse_var(var: ex.Var, query: Query) -> str:
    if var.levelsup > 0:
        # Outer references keep their display name; the alias belongs to an
        # enclosing query we cannot see from here.
        return var.name or f"outer${var.varno}.{var.varattno}"
    if var.varno < 0 or var.varno >= len(query.range_table):
        return var.name or f"${var.varno}.{var.varattno}"
    rte = query.range_table[var.varno]
    return f"{rte.alias}.{rte.column_names[var.varattno]}"


def _deparse_const(value) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, datetime.date):
        return f"DATE '{value.isoformat()}'"
    if isinstance(value, Interval):
        if value.months and value.months % 12 == 0 and not value.days:
            return f"INTERVAL '{value.months // 12}' YEAR"
        if value.months and not value.days:
            return f"INTERVAL '{value.months}' MONTH"
        return f"INTERVAL '{value.days}' DAY"
    return repr(value)


def _deparse_op(expr: ex.OpExpr, query: Query) -> str:
    if len(expr.args) == 1:
        return f"(-{deparse_expr(expr.args[0], query)})"
    left = deparse_expr(expr.args[0], query)
    right = deparse_expr(expr.args[1], query)
    if expr.op == "<=>":
        return f"({left} IS NOT DISTINCT FROM {right})"
    if expr.op == "<!=>":
        return f"({left} IS DISTINCT FROM {right})"
    return f"({left} {expr.op} {right})"


_EXTRACT_FUNCS = {"extract_year": "YEAR", "extract_month": "MONTH", "extract_day": "DAY"}


def _deparse_func(expr: ex.FuncExpr, query: Query) -> str:
    if expr.name in _EXTRACT_FUNCS:
        return (
            f"EXTRACT({_EXTRACT_FUNCS[expr.name]} FROM "
            f"{deparse_expr(expr.args[0], query)})"
        )
    if expr.name.startswith("cast_"):
        target = expr.name.removeprefix("cast_")
        return f"CAST({deparse_expr(expr.args[0], query)} AS {target})"
    if expr.name == "substr":
        inner = deparse_expr(expr.args[0], query)
        start = deparse_expr(expr.args[1], query)
        if len(expr.args) == 3:
            return f"SUBSTRING({inner} FROM {start} FOR {deparse_expr(expr.args[2], query)})"
        return f"SUBSTRING({inner} FROM {start})"
    args = ", ".join(deparse_expr(a, query) for a in expr.args)
    return f"{expr.name}({args})"


def _deparse_sublink(expr: ex.SubLink, query: Query) -> str:
    inner = deparse_query(expr.subquery, indent=2)
    if expr.kind == ex.SubLinkKind.EXISTS:
        return f"EXISTS (\n{inner}\n)"
    if expr.kind == ex.SubLinkKind.SCALAR:
        return f"(\n{inner}\n)"
    quantifier = "ANY" if expr.kind == ex.SubLinkKind.ANY else "ALL"
    test = deparse_expr(expr.testexpr, query)
    return f"{test} {expr.operator} {quantifier} (\n{inner}\n)"
