"""Deparser: analyzed query trees back to SQL text, per target dialect.

The paper's key selling point is that the rewritten query ``q+`` *is an
ordinary SQL query*.  This module makes that tangible twice over:

* ``PermDatabase.rewritten_sql(sql)`` returns the SQL text of the
  provenance-rewritten query tree (PostgreSQL dialect), which the repro
  parser re-parses — parse → deparse → parse round-trips, including the
  null-safe ``IS NOT DISTINCT FROM`` joins the rewrites emit.
* The :class:`SqliteDialect` renders the same trees as SQLite SQL, which
  the SQLite execution backend (``repro.backends``) hands to an embedded
  ``sqlite3`` database — the paper's actual deployment model, where the
  host DBMS executes ``q+`` like any other query.

A :class:`Dialect` collects every syntax decision that differs between
targets (null-safe comparison spelling, date/interval literals and
arithmetic, EXTRACT/CAST/SUBSTRING forms, set-operation operand
parenthesization, quantified sublinks, outer joins).  Constructs a
dialect cannot translate *faithfully* raise
:class:`~repro.errors.BackendUnsupportedError` naming the feature —
dialects never guess and never silently change semantics.
"""

from __future__ import annotations

import datetime
import sqlite3

from repro.datatypes import Interval, SQLType, date_add
from repro.errors import BackendUnsupportedError, PermError
from repro.analyzer import expressions as ex
from repro.analyzer.query_tree import (
    JoinTreeExpr,
    JoinTreeNode,
    Query,
    RangeTableEntry,
    RangeTableRef,
    RTEKind,
    SetOpNode,
    SetOpRangeRef,
    SetOpTreeNode,
)

_JOIN_SQL = {
    "inner": "JOIN",
    "left": "LEFT JOIN",
    "right": "RIGHT JOIN",
    "full": "FULL JOIN",
}

_IDENT_OK = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_$"
)


def _identifier(name: str) -> str:
    """Quote names that are not plain identifiers or collide with keywords
    (e.g. ``?column?`` or ``extract``)."""
    from repro.sql.tokens import KEYWORDS

    if (
        name
        and name[0].isalpha()
        and all(ch in _IDENT_OK for ch in name)
        and name.upper() not in KEYWORDS
    ):
        return name
    escaped = name.replace('"', '""')
    return f'"{escaped}"'

_SETOP_SQL = {"union": "UNION", "intersect": "INTERSECT", "except": "EXCEPT"}

#: Enclosing-query stack for correlated references: outermost first, the
#: immediate parent last.  ``Var.levelsup == k`` addresses ``outers[-k]``.
_Outers = tuple[Query, ...]


# ---------------------------------------------------------------------------
# Dialects
# ---------------------------------------------------------------------------


class Dialect:
    """Deparse syntax hooks, with PostgreSQL-flavoured defaults."""

    name = "postgres"
    #: Render ``INTO target`` clauses (display dialects only; execution
    #: backends materialize results themselves).
    emit_into = True
    #: Execution dialects must never guess at a correlated reference whose
    #: enclosing scope is unavailable; display dialects may fall back to
    #: the source column name.
    strict_outer_refs = False

    # -- identifiers & literals -------------------------------------------

    def identifier(self, name: str) -> str:
        return _identifier(name)

    def const(self, value) -> str:
        if value is None:
            return "NULL"
        if isinstance(value, bool):
            return "TRUE" if value else "FALSE"
        if isinstance(value, str):
            escaped = value.replace("'", "''")
            return f"'{escaped}'"
        if isinstance(value, datetime.date):
            return self.date_literal(value)
        if isinstance(value, Interval):
            return self.interval_literal(value)
        return repr(value)

    def date_literal(self, value: datetime.date) -> str:
        return f"DATE '{value.isoformat()}'"

    def interval_literal(self, value: Interval) -> str:
        if value.months and value.months % 12 == 0 and not value.days:
            return f"INTERVAL '{value.months // 12}' YEAR"
        if value.months and not value.days:
            return f"INTERVAL '{value.months}' MONTH"
        return f"INTERVAL '{value.days}' DAY"

    # -- operators ---------------------------------------------------------

    def null_safe_comparison(self, left: str, right: str, negated: bool) -> str:
        keyword = "IS DISTINCT FROM" if negated else "IS NOT DISTINCT FROM"
        return f"({left} {keyword} {right})"

    def binary_op(self, expr: ex.OpExpr, render) -> str:
        """Render a binary OpExpr; ``render(sub_expr) -> str`` recurses.

        Operands are rendered *by the dialect* (lazily): date-arithmetic
        translations may fold or re-spell an operand (e.g. an interval
        literal) that has no standalone rendering in the dialect.
        """
        left, right = render(expr.args[0]), render(expr.args[1])
        if expr.op == "<=>":
            return self.null_safe_comparison(left, right, negated=False)
        if expr.op == "<!=>":
            return self.null_safe_comparison(left, right, negated=True)
        return f"({left} {expr.op} {right})"

    def like(self, arg: str, pattern: str, negated: bool) -> str:
        negation = "NOT " if negated else ""
        return f"{arg} {negation}LIKE {pattern}"

    # -- functions ---------------------------------------------------------

    def extract(self, field: str, arg: str) -> str:
        return f"EXTRACT({field} FROM {arg})"

    def cast(self, target: str, arg: str) -> str:
        return f"CAST({arg} AS {target})"

    def substring(self, args: list[str]) -> str:
        if len(args) == 3:
            return f"SUBSTRING({args[0]} FROM {args[1]} FOR {args[2]})"
        return f"SUBSTRING({args[0]} FROM {args[1]})"

    def function(self, expr: ex.FuncExpr, query: Query, render) -> str:
        if expr.name in _EXTRACT_FUNCS:
            return self.extract(_EXTRACT_FUNCS[expr.name], render(expr.args[0]))
        if expr.name.startswith("cast_"):
            return self.cast(expr.name.removeprefix("cast_"), render(expr.args[0]))
        if expr.name == "substr":
            return self.substring([render(a) for a in expr.args])
        args = ", ".join(render(a) for a in expr.args)
        return f"{expr.name}({args})"

    # -- structure ---------------------------------------------------------

    def join_keyword(self, join_type: str) -> str:
        return _JOIN_SQL[join_type]

    def setop_keyword(self, op: str, all_flag: bool) -> str:
        return _SETOP_SQL[op] + (" ALL" if all_flag else "")

    def setop_operand(self, inner_sql: str, indent: int) -> str:
        pad = " " * indent
        return f"{pad}(\n{inner_sql}\n{pad})"

    def sort_suffix(self, descending: bool, nulls_first) -> str:
        suffix = " DESC" if descending else ""
        if nulls_first is True:
            suffix += " NULLS FIRST"
        elif nulls_first is False:
            suffix += " NULLS LAST"
        return suffix

    def limit_offset_clauses(
        self, limit: str | None, offset: str | None
    ) -> list[str]:
        parts = []
        if limit is not None:
            parts.append(f"LIMIT {limit}")
        if offset is not None:
            parts.append(f"OFFSET {offset}")
        return parts

    # -- sublinks ----------------------------------------------------------

    def quantified_sublink(
        self, expr: ex.SubLink, test: str, inner: str
    ) -> str:
        quantifier = "ANY" if expr.kind == ex.SubLinkKind.ANY else "ALL"
        return f"{test} {expr.operator} {quantifier} (\n{inner}\n)"

    # -- correlated references ---------------------------------------------

    def outer_var(self, var: ex.Var, query: Query, outers: _Outers) -> str:
        """Render a Var with ``levelsup > 0``.

        With the enclosing-query stack available the reference is
        alias-qualified; an alias shadowed by a nearer scope cannot be
        expressed in SQL and is rejected (never silently mis-bound).
        """
        if var.levelsup > len(outers):
            if self.strict_outer_refs:
                raise BackendUnsupportedError(
                    "correlated reference without its enclosing scope",
                    self.name,
                )
            # No stack (expression deparsed in isolation): display name.
            return var.name or f"outer${var.varno}.{var.varattno}"
        target = outers[-var.levelsup]
        rte = target.range_table[var.varno]
        nearer_scopes = (query,) + tuple(outers[len(outers) - var.levelsup + 1 :])
        for scope in nearer_scopes:
            if any(inner.alias == rte.alias for inner in scope.range_table):
                raise BackendUnsupportedError(
                    f"correlated reference to shadowed alias {rte.alias!r}",
                    self.name,
                )
        return f"{self.identifier(rte.alias)}.{self.identifier(rte.column_names[var.varattno])}"


class PostgresDialect(Dialect):
    """The repro's native dialect (matches the engine's semantics 1:1)."""


class SqliteDialect(Dialect):
    """SQLite translation for the SQLite execution backend.

    Differences handled here (see ``docs/backends.md`` for the catalogue):

    * ``IS NOT DISTINCT FROM`` → SQLite's null-safe ``IS`` operator;
    * date literals become ISO-8601 text (dates are stored as TEXT, which
      preserves comparison order);
    * date ± interval is constant-folded in Python when both operands are
      constants; otherwise day-granularity arithmetic maps to
      ``date(x, '±N days')`` and month/year arithmetic on non-constant
      dates is rejected (SQLite rolls over month ends, the engine clamps);
    * ``EXTRACT`` → ``strftime``, ``SUBSTRING`` → ``substr``;
    * functions whose SQLite builtin differs (or does not exist) call
      ``perm_*`` user functions the backend registers;
    * set-operation operands are wrapped as ``SELECT * FROM (...)``
      because SQLite rejects parenthesized compound-select operands, and
      ``INTERSECT ALL`` / ``EXCEPT ALL`` do not exist in SQLite;
    * quantified comparisons exist only as ``IN`` / ``NOT IN``;
    * ``FULL``/``RIGHT JOIN`` require SQLite ≥ 3.39;
    * ``LIKE`` gets an explicit ``ESCAPE '\\'`` (matching the engine);
    * the engine's PostgreSQL null-ordering defaults are made explicit
      (SQLite's implicit NULL placement is the opposite).
    """

    name = "sqlite"
    emit_into = False
    strict_outer_refs = True

    #: Engine scalar functions re-exposed as user functions by the backend
    #: because the SQLite builtin differs (rounding mode, NULL handling,
    #: argument conventions) or is an optional compile-time extension.
    UDF_RENAMES = frozenset(
        {
            "floor",
            "ceil",
            "sqrt",
            "power",
            "mod",
            "strpos",
            "greatest",
            "least",
            "round",
            "concat",
            # All casts run the engine's conversion rules: SQLite's native
            # CAST is too permissive (CAST('abc' AS INTEGER) is 0 where the
            # engine raises).
            "cast_integer",
            "cast_float",
            "cast_text",
            "cast_date",
            "cast_boolean",
        }
    )

    _STRFTIME_FIELDS = {"YEAR": "%Y", "MONTH": "%m", "DAY": "%d"}

    def date_literal(self, value: datetime.date) -> str:
        return f"'{value.isoformat()}'"

    def interval_literal(self, value: Interval) -> str:
        raise BackendUnsupportedError(
            "INTERVAL value outside date arithmetic", self.name
        )

    def null_safe_comparison(self, left: str, right: str, negated: bool) -> str:
        keyword = "IS NOT" if negated else "IS"
        return f"({left} {keyword} {right})"

    def binary_op(self, expr: ex.OpExpr, render) -> str:
        arg_types = {a.type for a in expr.args}
        if expr.op in ("+", "-") and (
            SQLType.DATE in arg_types or SQLType.INTERVAL in arg_types
        ):
            return self._date_arith(expr, render)
        return super().binary_op(expr, render)

    def _date_arith(self, expr: ex.OpExpr, render) -> str:
        left, right = expr.args
        op = expr.op
        if SQLType.DATE not in (left.type, right.type):
            raise BackendUnsupportedError(
                "interval-valued arithmetic outside date expressions", self.name
            )
        if left.type is SQLType.DATE and right.type is SQLType.DATE:
            # date - date → whole-day difference.
            return (
                f"CAST(julianday({render(left)}) - julianday({render(right)}) "
                "AS INTEGER)"
            )
        if right.type is SQLType.DATE:  # date on the right
            if op != "+":
                # ``integer - date`` is not defined in the engine either;
                # swapping would silently compute date-minus-days.
                raise BackendUnsupportedError(
                    "subtraction with a date on the right-hand side", self.name
                )
            left, right = right, left
        # ``left`` is the date operand; ``right`` an interval or day count.
        if isinstance(left, ex.Const) and isinstance(right, ex.Const):
            folded = self._fold_date_arith(left.value, right.value, op)
            return self.const(folded)
        if isinstance(right, ex.Const):
            delta = right.value
            if isinstance(delta, Interval):
                if delta.months:
                    raise BackendUnsupportedError(
                        "month/year interval arithmetic on a non-constant "
                        "date (SQLite rolls over month ends)",
                        self.name,
                    )
                days = delta.days
            else:
                days = int(delta)
            if op == "-":
                days = -days
            return f"date({render(left)}, '{days:+d} days')"
        raise BackendUnsupportedError(
            "date arithmetic with a non-constant interval", self.name
        )

    @staticmethod
    def _fold_date_arith(day: datetime.date, delta, op: str):
        if isinstance(delta, Interval):
            return date_add(day, -delta if op == "-" else delta)
        offset = datetime.timedelta(days=int(delta))
        return day - offset if op == "-" else day + offset

    def like(self, arg: str, pattern: str, negated: bool) -> str:
        # The engine treats backslash as the LIKE escape character
        # (PostgreSQL default); SQLite has no default escape.
        return super().like(arg, pattern, negated) + " ESCAPE '\\'"

    def extract(self, field: str, arg: str) -> str:
        fmt = self._STRFTIME_FIELDS[field]
        return f"CAST(strftime('{fmt}', {arg}) AS INTEGER)"

    def cast(self, target: str, arg: str) -> str:
        # Casts the engine knows route through perm_cast_* user functions
        # (UDF_RENAMES); anything reaching this hook has no translation.
        raise BackendUnsupportedError(f"CAST to {target}", self.name)

    def substring(self, args: list[str]) -> str:
        return f"substr({', '.join(args)})"

    def function(self, expr: ex.FuncExpr, query: Query, render) -> str:
        if expr.name in _EXTRACT_FUNCS:
            return self.extract(_EXTRACT_FUNCS[expr.name], render(expr.args[0]))
        if expr.name == "perm_poly_token":
            return self._poly_token(expr, render)
        if expr.name in self.UDF_RENAMES:
            # The perm_* UDFs run the engine's own Python implementations,
            # which distinguish bool from int; SQLite stores booleans as
            # 0/1, so a boolean argument would silently change semantics
            # (e.g. concat('x', TRUE): 'xt' vs 'x1').
            for arg in expr.args:
                if arg.type is SQLType.BOOLEAN:
                    raise BackendUnsupportedError(
                        f"boolean argument to {expr.name}()", self.name
                    )
            args = ", ".join(render(a) for a in expr.args)
            return f"perm_{expr.name}({args})"
        if expr.name.startswith("cast_"):
            return self.cast(expr.name.removeprefix("cast_"), render(expr.args[0]))
        if expr.name == "substr":
            return self.substring([render(a) for a in expr.args])
        args = ", ".join(render(a) for a in expr.args)
        return f"{expr.name}({args})"

    def _poly_token(self, expr: ex.FuncExpr, render) -> str:
        """Tuple-variable minting: identity values must format exactly as
        the Python engine formats them.  Booleans live as 0/1 integers in
        SQLite, so they are mapped back to the engine's 't'/'f' spelling
        before reaching the minting function."""
        parts = [render(expr.args[0])]
        for arg in expr.args[1:]:
            rendered = render(arg)
            if arg.type is SQLType.BOOLEAN:
                rendered = (
                    f"(CASE WHEN {rendered} THEN 't' "
                    f"WHEN NOT {rendered} THEN 'f' ELSE NULL END)"
                )
            parts.append(rendered)
        return f"perm_poly_token({', '.join(parts)})"

    def join_keyword(self, join_type: str) -> str:
        if join_type in ("full", "right") and sqlite3.sqlite_version_info < (3, 39):
            raise BackendUnsupportedError(
                f"{join_type.upper()} JOIN (needs SQLite >= 3.39, "
                f"found {sqlite3.sqlite_version})",
                self.name,
            )
        return _JOIN_SQL[join_type]

    def setop_keyword(self, op: str, all_flag: bool) -> str:
        if all_flag and op in ("intersect", "except"):
            raise BackendUnsupportedError(
                f"{op.upper()} ALL (SQLite only has the DISTINCT form)",
                self.name,
            )
        return _SETOP_SQL[op] + (" ALL" if all_flag else "")

    def setop_operand(self, inner_sql: str, indent: int) -> str:
        # SQLite rejects parenthesized compound-select operands; wrapping
        # in a subquery expresses the same grouping.
        pad = " " * indent
        return f"{pad}SELECT * FROM (\n{inner_sql}\n{pad})"

    def sort_suffix(self, descending: bool, nulls_first) -> str:
        # Make the engine's (PostgreSQL) defaults explicit: NULLS LAST for
        # ascending, NULLS FIRST for descending.  SQLite's implicit
        # placement is the opposite (NULLs sort as the smallest value).
        if nulls_first is None:
            nulls_first = descending
        return super().sort_suffix(descending, nulls_first)

    def limit_offset_clauses(
        self, limit: str | None, offset: str | None
    ) -> list[str]:
        # SQLite rejects a bare OFFSET; LIMIT -1 means "no limit".
        if offset is not None and limit is None:
            return ["LIMIT -1", f"OFFSET {offset}"]
        return super().limit_offset_clauses(limit, offset)

    def quantified_sublink(self, expr: ex.SubLink, test: str, inner: str) -> str:
        # SQLite has no ANY/ALL; IN and NOT IN cover the two shapes the
        # repro emits (x = ANY and x <> ALL) with identical 3-valued logic.
        if expr.kind == ex.SubLinkKind.ANY and expr.operator == "=":
            return f"{test} IN (\n{inner}\n)"
        if expr.kind == ex.SubLinkKind.ALL and expr.operator == "<>":
            return f"{test} NOT IN (\n{inner}\n)"
        quantifier = "ANY" if expr.kind == ex.SubLinkKind.ANY else "ALL"
        raise BackendUnsupportedError(
            f"quantified comparison {expr.operator} {quantifier} (subquery)",
            self.name,
        )


_DIALECTS: dict[str, Dialect] = {
    "postgres": PostgresDialect(),
    "sqlite": SqliteDialect(),
}


def get_dialect(name: str) -> Dialect:
    """Look up a deparse dialect by name."""
    try:
        return _DIALECTS[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_DIALECTS))
        raise PermError(f"unknown SQL dialect {name!r} (known: {known})") from None


_DEFAULT = _DIALECTS["postgres"]


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------


def deparse_query(
    query: Query,
    indent: int = 0,
    dialect: Dialect | None = None,
    outers: _Outers = (),
) -> str:
    """Render an analyzed query tree as SQL text in ``dialect``."""
    dialect = dialect or _DEFAULT
    if query.set_operations is not None:
        return _deparse_setop_query(query, indent, dialect, outers)
    pad = " " * indent
    parts: list[str] = []
    distinct = "DISTINCT " if query.distinct else ""
    targets = ", ".join(
        f"{deparse_expr(t.expr, query, dialect, outers)} AS "
        f"{dialect.identifier(t.name)}"
        for t in query.visible_targets
    )
    parts.append(f"{pad}SELECT {distinct}{targets}")
    if query.into and dialect.emit_into:
        parts.append(f"{pad}INTO {query.into}")
    if query.jointree.items:
        from_items = ",\n     ".join(
            _deparse_jointree(item, query, indent, dialect, outers)
            for item in query.jointree.items
        )
        parts.append(f"{pad}FROM {from_items}")
    if query.jointree.quals is not None:
        parts.append(
            f"{pad}WHERE {deparse_expr(query.jointree.quals, query, dialect, outers)}"
        )
    if query.group_clause:
        grouped = ", ".join(
            deparse_expr(g, query, dialect, outers) for g in query.group_clause
        )
        parts.append(f"{pad}GROUP BY {grouped}")
    if query.having is not None:
        parts.append(
            f"{pad}HAVING {deparse_expr(query.having, query, dialect, outers)}"
        )
    parts.extend(_deparse_tail(query, pad, dialect, outers))
    return "\n".join(parts)


def _deparse_tail(
    query: Query, pad: str, dialect: Dialect, outers: _Outers
) -> list[str]:
    parts: list[str] = []
    if query.sort_clause:
        pieces = []
        for clause in query.sort_clause:
            if query.set_operations is not None:
                # A set operation's ORDER BY may only reference its output
                # columns; the portable rendering is the ordinal position
                # (the target Vars address an operand subquery whose alias
                # does not exist in the deparsed text).
                piece = str(_visible_position(query, clause.tlist_index) + 1)
            else:
                target = query.target_list[clause.tlist_index]
                piece = deparse_expr(target.expr, query, dialect, outers)
            piece += dialect.sort_suffix(clause.descending, clause.nulls_first)
            pieces.append(piece)
        parts.append(f"{pad}ORDER BY {', '.join(pieces)}")
    limit = (
        deparse_expr(query.limit_count, query, dialect, outers)
        if query.limit_count is not None
        else None
    )
    offset = (
        deparse_expr(query.limit_offset, query, dialect, outers)
        if query.limit_offset is not None
        else None
    )
    parts.extend(
        f"{pad}{clause}" for clause in dialect.limit_offset_clauses(limit, offset)
    )
    return parts


def _visible_position(query: Query, tlist_index: int) -> int:
    position = 0
    for i, target in enumerate(query.target_list):
        if i == tlist_index:
            return position
        if not target.resjunk:
            position += 1
    raise PermError("sort target index out of range")  # pragma: no cover


def _deparse_setop_query(
    query: Query, indent: int, dialect: Dialect, outers: _Outers
) -> str:
    pad = " " * indent
    body = _deparse_setop_tree(query.set_operations, query, indent, dialect, outers)
    parts = [body]
    parts.extend(_deparse_tail(query, pad, dialect, outers))
    return "\n".join(parts)


def _deparse_setop_tree(
    node: SetOpTreeNode, query: Query, indent: int, dialect: Dialect, outers: _Outers
) -> str:
    pad = " " * indent
    if isinstance(node, SetOpRangeRef):
        # Set-operation operands are analyzed against the *same* outer
        # scopes as the set-operation node itself (no extra level), so the
        # enclosing-query stack passes through unchanged.
        inner = deparse_query(
            query.range_table[node.rtindex].subquery, indent + 2, dialect, outers
        )
        return dialect.setop_operand(inner, indent)
    assert isinstance(node, SetOpNode)
    op = dialect.setop_keyword(node.op, node.all)
    left = _deparse_setop_tree(node.left, query, indent, dialect, outers)
    right = _deparse_setop_tree(node.right, query, indent, dialect, outers)
    return f"{left}\n{pad}{op}\n{right}"


def _deparse_rte(rte: RangeTableEntry, indent: int, dialect: Dialect) -> str:
    if rte.kind is RTEKind.RELATION:
        name = dialect.identifier(rte.relation_name or rte.alias)
        if rte.alias != rte.relation_name:
            return f"{name} AS {dialect.identifier(rte.alias)}"
        return name
    inner = deparse_query(rte.subquery, indent + 2, dialect)
    return f"(\n{inner}\n{' ' * indent}) AS {dialect.identifier(rte.alias)}"


def _deparse_jointree(
    node: JoinTreeNode, query: Query, indent: int, dialect: Dialect, outers: _Outers
) -> str:
    if isinstance(node, RangeTableRef):
        return _deparse_rte(query.range_table[node.rtindex], indent, dialect)
    assert isinstance(node, JoinTreeExpr)
    left = _deparse_jointree(node.left, query, indent, dialect, outers)
    right = _deparse_jointree(node.right, query, indent, dialect, outers)
    keyword = dialect.join_keyword(node.join_type)
    condition = (
        deparse_expr(node.quals, query, dialect, outers)
        if node.quals is not None
        else "TRUE"
    )
    return f"({left}\n{' ' * indent}  {keyword} {right} ON {condition})"


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


def deparse_expr(
    expr: ex.Expr,
    query: Query,
    dialect: Dialect | None = None,
    outers: _Outers = (),
) -> str:
    """Render an analyzed expression as SQL relative to ``query``'s scope."""
    dialect = dialect or _DEFAULT

    def render(sub: ex.Expr) -> str:
        return deparse_expr(sub, query, dialect, outers)

    if isinstance(expr, ex.Var):
        return _deparse_var(expr, query, dialect, outers)
    if isinstance(expr, ex.Const):
        return dialect.const(expr.value)
    if isinstance(expr, ex.OpExpr):
        if len(expr.args) == 1:
            return f"(-{render(expr.args[0])})"
        return dialect.binary_op(expr, render)
    if isinstance(expr, ex.BoolOpExpr):
        if expr.op == "not":
            return f"NOT ({render(expr.args[0])})"
        joiner = f" {expr.op.upper()} "
        return "(" + joiner.join(render(a) for a in expr.args) + ")"
    if isinstance(expr, ex.FuncExpr):
        return dialect.function(expr, query, render)
    if isinstance(expr, ex.Aggref):
        if expr.star:
            return f"{expr.aggname}(*)"
        prefix = "DISTINCT " if expr.distinct else ""
        return f"{expr.aggname}({prefix}{render(expr.arg)})"
    if isinstance(expr, ex.CaseExpr):
        whens = " ".join(
            f"WHEN {render(c)} THEN {render(r)}" for c, r in expr.whens
        )
        default = f" ELSE {render(expr.default)}" if expr.default is not None else ""
        return f"CASE {whens}{default} END"
    if isinstance(expr, ex.NullTest):
        negation = "NOT " if expr.negated else ""
        return f"{render(expr.arg)} IS {negation}NULL"
    if isinstance(expr, ex.LikeTest):
        return dialect.like(render(expr.arg), render(expr.pattern), expr.negated)
    if isinstance(expr, ex.InList):
        negation = "NOT " if expr.negated else ""
        items = ", ".join(render(i) for i in expr.items)
        return f"{render(expr.arg)} {negation}IN ({items})"
    if isinstance(expr, ex.SubLink):
        return _deparse_sublink(expr, query, dialect, outers)
    raise PermError(f"cannot deparse expression {expr!r}")


def _deparse_var(
    var: ex.Var, query: Query, dialect: Dialect, outers: _Outers
) -> str:
    if var.levelsup > 0:
        return dialect.outer_var(var, query, outers)
    if var.varno < 0 or var.varno >= len(query.range_table):
        return var.name or f"${var.varno}.{var.varattno}"
    rte = query.range_table[var.varno]
    return (
        f"{dialect.identifier(rte.alias)}."
        f"{dialect.identifier(rte.column_names[var.varattno])}"
    )


_EXTRACT_FUNCS = {"extract_year": "YEAR", "extract_month": "MONTH", "extract_day": "DAY"}


def _deparse_sublink(
    expr: ex.SubLink, query: Query, dialect: Dialect, outers: _Outers
) -> str:
    inner = deparse_query(expr.subquery, indent=2, dialect=dialect, outers=outers + (query,))
    if expr.kind == ex.SubLinkKind.EXISTS:
        return f"EXISTS (\n{inner}\n)"
    if expr.kind == ex.SubLinkKind.SCALAR:
        return f"(\n{inner}\n)"
    test = deparse_expr(expr.testexpr, query, dialect, outers)
    return dialect.quantified_sublink(expr, test, inner)
