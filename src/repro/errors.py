"""Exception hierarchy for the Perm reproduction.

All errors raised by the library derive from :class:`PermError` so callers
can catch a single base class.  The hierarchy mirrors the stages of the
query pipeline (lex/parse -> analyze -> rewrite -> plan -> execute) plus
catalog errors.
"""

from __future__ import annotations


class PermError(Exception):
    """Base class for all errors raised by the repro library."""


class LexError(PermError):
    """Raised when the lexer encounters an invalid character sequence."""

    def __init__(self, message: str, position: int = -1) -> None:
        super().__init__(message)
        self.position = position


class ParseError(PermError):
    """Raised when the parser cannot build an AST from a token stream."""

    def __init__(self, message: str, position: int = -1) -> None:
        super().__init__(message)
        self.position = position


class AnalyzeError(PermError):
    """Raised during semantic analysis (unknown names, type mismatches)."""


class CatalogError(PermError):
    """Raised for catalog problems (missing/duplicate tables, views)."""


class RewriteError(PermError):
    """Raised when the provenance rewriter cannot rewrite a query.

    The prominent case -- exactly as in the paper -- is a correlated
    sublink, which Perm's prototype does not support (section IV-E).
    """


class UnsupportedFeatureError(PermError):
    """Raised for SQL features outside the implemented subset."""


class BackendUnsupportedError(UnsupportedFeatureError):
    """Raised when an execution backend cannot run a (valid) query.

    Backends must *never* return silently wrong results; any construct a
    backend's dialect cannot translate faithfully raises this error with
    ``feature`` naming the offending construct.
    """

    def __init__(self, feature: str, backend: str = "") -> None:
        self.feature = feature
        self.backend = backend
        where = f" by the {backend} backend" if backend else ""
        super().__init__(f"{feature} is not supported{where}")


class PlanError(PermError):
    """Raised when no physical plan can be produced for a query tree."""


class ExecutionError(PermError):
    """Raised for runtime failures while executing a plan."""


class TypeMismatchError(AnalyzeError):
    """Raised when an expression combines incompatible SQL types."""


class WalError(PermError):
    """Raised by the durability layer: unusable WAL/checkpoint files,
    interior log corruption, or replay of a logged statement failing.

    A *torn tail* (the residue of a crash mid-append) is not an error —
    recovery repairs it silently; this class covers states recovery
    refuses to guess about."""
