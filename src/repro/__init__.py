"""repro -- a reproduction of Perm (Glavic & Alonso, ICDE 2009).

Perm computes the provenance of SQL queries *through query rewriting*: a
query ``q`` marked ``SELECT PROVENANCE`` is rewritten into a regular
relational query ``q+`` returning the original result extended with the
contributing tuples from every base relation, so provenance can be
queried, stored and optimized with ordinary SQL.

Quickstart::

    import repro

    db = repro.connect()
    db.execute("CREATE TABLE shop (name text, numempl integer)")
    db.execute("INSERT INTO shop VALUES ('Merdies', 3), ('Joba', 14)")
    result = db.execute("SELECT PROVENANCE name FROM shop WHERE numempl < 10")
    print(result.columns)   # ['name', 'prov_shop_name', 'prov_shop_numempl']

Beyond witness lists, the semiring subsystem (``repro.semiring``) computes
*how*-provenance as ``N[X]`` polynomials through the same rewriting
machinery (``docs/semirings.md``)::

    result = db.execute(
        "SELECT PROVENANCE (polynomial) name FROM shop WHERE numempl < 10"
    )
    print(result.columns)                        # ['name', 'prov_polynomial']
    print(result.annotations()[0])               # shop(Merdies,3)
    print(result.evaluate_provenance("counting"))  # [1] -- bag multiplicity
    print(result.evaluate_provenance("boolean"))   # [True] -- lineage

Custom contribution semantics plug in through the rewrite-strategy
registry (``repro.core.registry``) and custom annotation domains through
``repro.semiring.register_semiring``.

Execution is pluggable (``repro.backends``, ``docs/backends.md``): the
rewritten query tree runs on the built-in Python executor or — deparsed
through a dialect layer — on an embedded SQLite database::

    db = repro.connect(backend="sqlite")   # q+ executed by a real DBMS

Durability is opt-in (``repro.wal``, ``docs/durability.md``): give
``connect`` a ``wal_dir`` and committed statements are write-ahead
logged, checkpointed, and recovered on the next ``connect`` to the
same directory::

    db = repro.connect(wal_dir="perm-data")   # crash-safe catalog
"""

from repro.database import PermDatabase, PreparedQuery, QueryResult, connect
from repro.backends import ExecutionBackend, backend_names, register_backend
from repro.catalog.schema import Column, TableSchema
from repro.datatypes import SQLType
from repro.errors import (
    AnalyzeError,
    BackendUnsupportedError,
    CatalogError,
    ExecutionError,
    ParseError,
    PermError,
    RewriteError,
    WalError,
)
from repro.semiring import (
    Polynomial,
    Semiring,
    get_semiring,
    register_semiring,
    semiring_names,
)
from repro.storage.relation import Relation

__version__ = "1.0.0"

__all__ = [
    "PermDatabase",
    "PreparedQuery",
    "QueryResult",
    "connect",
    "Column",
    "TableSchema",
    "SQLType",
    "Relation",
    "Polynomial",
    "Semiring",
    "get_semiring",
    "register_semiring",
    "semiring_names",
    "ExecutionBackend",
    "backend_names",
    "register_backend",
    "PermError",
    "ParseError",
    "AnalyzeError",
    "BackendUnsupportedError",
    "CatalogError",
    "RewriteError",
    "ExecutionError",
    "WalError",
    "__version__",
]
