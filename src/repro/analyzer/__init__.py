"""Semantic analysis: raw AST -> PostgreSQL-style query trees."""

from repro.analyzer.analyzer import Analyzer
from repro.analyzer.query_tree import Query, RangeTableEntry, TargetEntry

__all__ = ["Analyzer", "Query", "RangeTableEntry", "TargetEntry"]
