"""PostgreSQL-style query trees.

The paper (section IV-B) describes the representation Perm rewrites:

    "the result of the SQL-parser is a so-called query tree.  Each query
    node in the query tree represents one or more relational algebra
    operators.  The main components of a query node are the target list,
    the range table and the set operation tree."

This module defines exactly that structure:

* :class:`Query` — one query node,
* :class:`TargetEntry` — one target-list item,
* :class:`RangeTableEntry` — a base relation or a subquery,
* :class:`FromExpr` / :class:`JoinTreeNode` — the join tree with WHERE quals,
* :class:`SetOpNode` / :class:`SetOpRangeRef` — the set operation tree.

Query nodes classify themselves as SPJ, ASPJ or set-operation nodes
(:meth:`Query.node_class`), which is the case distinction the rewrite
algorithm of Fig. 7 makes.
"""

from __future__ import annotations

import copy
import enum
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.catalog.schema import TableSchema
from repro.datatypes import SQLType
from repro.analyzer.expressions import Expr, Var


@dataclass
class TargetEntry:
    """One select-list entry of a query node.

    ``resjunk`` entries exist only to feed ORDER BY and are not part of the
    visible result (same device as PostgreSQL).
    """

    expr: Expr
    name: str
    resjunk: bool = False

    def __repr__(self) -> str:
        junk = ", junk" if self.resjunk else ""
        return f"TargetEntry({self.name!r} = {self.expr}{junk})"


class RTEKind(enum.Enum):
    RELATION = "relation"
    SUBQUERY = "subquery"


@dataclass
class RangeTableEntry:
    """A FROM-clause item after analysis: a base relation or a subquery.

    Views are unfolded into SUBQUERY entries by the analyzer before the
    provenance rewriter runs (paper Fig. 5).

    Provenance-specific fields (SQL-PLE, section IV-A):

    * ``provenance_attrs`` — names of attributes holding already-computed
      (external/incremental) provenance; the rewriter treats the entry as
      already rewritten.
    * ``base_relation`` — the BASERELATION marker: the rewriter applies R1
      to this entry instead of descending into it.

    Optimizer annotation (physical-only, set by projection pruning):

    * ``used_attnos`` — for RELATION entries, the attribute numbers the
      query actually references; the planner narrows the ``SeqScan``
      accordingly.  ``None`` means "all columns".  Var numbering and the
      deparser always use the relation's full schema.
    """

    kind: RTEKind
    alias: str  # reference name used for qualified lookups
    column_names: list[str]
    column_types: list[SQLType]
    relation_name: Optional[str] = None  # for RELATION entries
    schema: Optional[TableSchema] = None  # for RELATION entries
    subquery: Optional["Query"] = None  # for SUBQUERY entries
    provenance_attrs: Optional[tuple[str, ...]] = None
    base_relation: bool = False
    used_attnos: Optional[frozenset[int]] = None

    def width(self) -> int:
        return len(self.column_names)

    def __repr__(self) -> str:
        if self.kind is RTEKind.RELATION:
            return f"RTE(rel {self.relation_name!r} as {self.alias!r})"
        return f"RTE(subquery as {self.alias!r})"


# ---------------------------------------------------------------------------
# Join tree
# ---------------------------------------------------------------------------


@dataclass
class RangeTableRef:
    """Leaf of the join tree: points into the range table by index."""

    rtindex: int

    def __repr__(self) -> str:
        return f"RTRef({self.rtindex})"


@dataclass
class JoinTreeExpr:
    """An explicit join inside the FROM clause."""

    join_type: str  # 'inner' | 'left' | 'right' | 'full' | 'cross'
    left: "JoinTreeNode"
    right: "JoinTreeNode"
    quals: Optional[Expr] = None  # ON condition

    def __repr__(self) -> str:
        return f"Join({self.join_type}, {self.left}, {self.right}, on={self.quals})"


JoinTreeNode = Union[RangeTableRef, JoinTreeExpr]


@dataclass
class FromExpr:
    """The full FROM/WHERE component: implicit crossproduct of ``items``
    filtered by ``quals``."""

    items: list[JoinTreeNode] = field(default_factory=list)
    quals: Optional[Expr] = None


def jointree_rtindexes(node: JoinTreeNode) -> list[int]:
    """All range-table indexes referenced under a join-tree node."""
    if isinstance(node, RangeTableRef):
        return [node.rtindex]
    return jointree_rtindexes(node.left) + jointree_rtindexes(node.right)


# ---------------------------------------------------------------------------
# Set operation tree
# ---------------------------------------------------------------------------


@dataclass
class SetOpRangeRef:
    """Leaf of a set operation tree: a range table entry (a subquery)."""

    rtindex: int


@dataclass
class SetOpNode:
    op: str  # 'union' | 'intersect' | 'except'
    all: bool
    left: "SetOpTreeNode"
    right: "SetOpTreeNode"


SetOpTreeNode = Union[SetOpRangeRef, SetOpNode]


def setop_tree_contains_except(node: SetOpTreeNode) -> bool:
    if isinstance(node, SetOpRangeRef):
        return False
    if node.op == "except":
        return True
    return setop_tree_contains_except(node.left) or setop_tree_contains_except(node.right)


def setop_leaf_indexes(node: SetOpTreeNode) -> list[int]:
    if isinstance(node, SetOpRangeRef):
        return [node.rtindex]
    return setop_leaf_indexes(node.left) + setop_leaf_indexes(node.right)


# ---------------------------------------------------------------------------
# Sort clause
# ---------------------------------------------------------------------------


@dataclass
class SortClause:
    """ORDER BY entry referencing a target-list position."""

    tlist_index: int  # index into Query.target_list
    descending: bool = False
    nulls_first: Optional[bool] = None


# ---------------------------------------------------------------------------
# The query node
# ---------------------------------------------------------------------------


class QueryNodeClass(enum.Enum):
    """The three rewrite cases of the paper (section IV-B)."""

    SPJ = "spj"
    ASPJ = "aspj"
    SETOP = "setop"


@dataclass
class Query:
    """One analyzed query node.

    For set-operation queries, ``set_operations`` is set, the range table
    holds the leaf subqueries and ``target_list`` contains plain Vars over
    the first leaf.  Otherwise the node is an (A)SPJ node described by
    target list, range table, join tree, grouping and having.
    """

    target_list: list[TargetEntry] = field(default_factory=list)
    range_table: list[RangeTableEntry] = field(default_factory=list)
    jointree: FromExpr = field(default_factory=FromExpr)
    group_clause: list[Expr] = field(default_factory=list)
    having: Optional[Expr] = None
    distinct: bool = False
    has_aggs: bool = False
    set_operations: Optional[SetOpTreeNode] = None
    sort_clause: list[SortClause] = field(default_factory=list)
    limit_count: Optional[Expr] = None
    limit_offset: Optional[Expr] = None
    # Optimizer annotation (physical-only, set by aggregation-join
    # fusion): each ``(agg_rtindex, prov_rtindex, agg_key_positions)``
    # entry marks a pair of subquery RTEs joined on null-safe group-key
    # equality whose FROM/WHERE cores are bag-equivalent — the provenance
    # rewriter's ``q_agg ⋈ d+`` pattern.  The planner evaluates each
    # pair's shared core once and joins the aggregate back onto it; the
    # deparser ignores the hint (the tree stays an ordinary SQL join).
    agg_shares: list[tuple[int, int, tuple[int, ...]]] = field(default_factory=list)
    # Optimizer annotation (physical-only, set by subplan-sharing
    # detection): this query node is a closed subquery that appears,
    # structurally identical, more than once in the statement — the
    # planner plans one shared, materialized instance for the whole group.
    share_candidate: bool = False
    # SQL-PLE: marked for provenance rewrite (SELECT PROVENANCE).
    provenance: bool = False
    # Which rewrite strategy computes the provenance (None = the default
    # witness-list semantics; "polynomial" = semiring annotations, ...).
    provenance_type: Optional[str] = None
    # Name of a single annotation-carrying output column (set by rewrite
    # strategies that produce one, e.g. the polynomial strategy).
    annotation_column: Optional[str] = None
    into: Optional[str] = None

    # -- classification -------------------------------------------------------

    def node_class(self) -> QueryNodeClass:
        if self.set_operations is not None:
            return QueryNodeClass.SETOP
        if self.has_aggs or self.group_clause:
            return QueryNodeClass.ASPJ
        return QueryNodeClass.SPJ

    # -- result schema ---------------------------------------------------------

    @property
    def visible_targets(self) -> list[TargetEntry]:
        return [t for t in self.target_list if not t.resjunk]

    def output_columns(self) -> list[str]:
        return [t.name for t in self.visible_targets]

    def output_types(self) -> list[SQLType]:
        return [t.expr.type for t in self.visible_targets]

    # -- helpers ---------------------------------------------------------------

    def rte(self, index: int) -> RangeTableEntry:
        return self.range_table[index]

    def add_rte(self, rte: RangeTableEntry) -> int:
        """Append a range table entry, returning its index."""
        self.range_table.append(rte)
        return len(self.range_table) - 1

    def deep_copy(self) -> "Query":
        """A fully independent copy (used by the ASPJ duplicate step)."""
        return copy.deepcopy(self)

    def __repr__(self) -> str:
        cls = self.node_class().value
        return (
            f"Query({cls}, targets={[t.name for t in self.target_list]}, "
            f"rtes={len(self.range_table)}, provenance={self.provenance})"
        )


def subquery_rte(subquery: Query, alias: str) -> RangeTableEntry:
    """Wrap a query node as a subquery range table entry."""
    return RangeTableEntry(
        kind=RTEKind.SUBQUERY,
        alias=alias,
        column_names=list(subquery.output_columns()),
        column_types=list(subquery.output_types()),
        subquery=subquery,
    )


def binary_setop_query(op: str, all_flag: bool, left: Query, right: Query) -> Query:
    """A fresh binary set-operation query node over two subqueries."""
    q = Query()
    left_rte = subquery_rte(left, alias="*setop*0")
    right_rte = subquery_rte(right, alias="*setop*1")
    left_index = q.add_rte(left_rte)
    q.add_rte(right_rte)
    q.set_operations = SetOpNode(
        op=op,
        all=all_flag,
        left=SetOpRangeRef(left_index),
        right=SetOpRangeRef(left_index + 1),
    )
    for attno, (column, col_type) in enumerate(
        zip(left_rte.column_names, left_rte.column_types)
    ):
        q.target_list.append(
            TargetEntry(
                expr=Var(varno=left_index, varattno=attno, type=col_type, name=column),
                name=column,
            )
        )
    return q


def make_var_for_rte_column(
    query: Query, rtindex: int, attno: int, levelsup: int = 0
) -> Var:
    """Build a Var referencing column ``attno`` of range table entry ``rtindex``."""
    rte = query.range_table[rtindex]
    return Var(
        varno=rtindex,
        varattno=attno,
        type=rte.column_types[attno],
        name=rte.column_names[attno],
        levelsup=levelsup,
    )
