"""Semantic analysis: raw AST -> query trees.

Responsibilities (mirroring PostgreSQL's parser/analyzer + rewriter stages,
which run *before* the Perm provenance rewriter, paper Fig. 5):

* name resolution against the catalog and enclosing scopes,
* view unfolding into subquery range table entries,
* type inference and implicit numeric coercion,
* aggregate placement validation (GROUP BY semantics),
* normalization (BETWEEN, IN-lists, simple CASE -> searched CASE),
* building set-operation trees with union-compatibility checks,
* detection of correlated sublinks (executable, but rejected later by the
  provenance rewriter exactly as in the paper).
"""

from __future__ import annotations

from typing import Optional

from repro.catalog.catalog import Catalog
from repro.datatypes import NUMERIC_TYPES, SQLType, coerce_types, parse_date, type_from_name
from repro.errors import AnalyzeError, TypeMismatchError, UnsupportedFeatureError
from repro.sql import ast
from repro.analyzer import expressions as ex
from repro.analyzer.query_tree import (
    FromExpr,
    JoinTreeExpr,
    JoinTreeNode,
    Query,
    RangeTableEntry,
    RangeTableRef,
    RTEKind,
    SetOpNode,
    SetOpRangeRef,
    SetOpTreeNode,
    SortClause,
    TargetEntry,
)

AGGREGATE_NAMES = frozenset(
    {"sum", "count", "avg", "min", "max", "perm_poly_sum"}
)

# scalar function -> (min args, max args, result type or None for "same as arg")
_SCALAR_FUNCTIONS: dict[str, tuple[int, int, Optional[SQLType]]] = {
    "upper": (1, 1, SQLType.TEXT),
    "lower": (1, 1, SQLType.TEXT),
    "length": (1, 1, SQLType.INTEGER),
    "abs": (1, 1, None),
    "round": (1, 2, SQLType.FLOAT),
    "floor": (1, 1, SQLType.FLOAT),
    "ceil": (1, 1, SQLType.FLOAT),
    "sqrt": (1, 1, SQLType.FLOAT),
    "power": (2, 2, SQLType.FLOAT),
    "mod": (2, 2, SQLType.INTEGER),
    "coalesce": (1, 99, None),
    "concat": (1, 99, SQLType.TEXT),
    "substr": (2, 3, SQLType.TEXT),
    "strpos": (2, 2, SQLType.INTEGER),
    "trim": (1, 1, SQLType.TEXT),
    "nullif": (2, 2, None),
    "greatest": (1, 99, None),
    "least": (1, 99, None),
    # Provenance-polynomial primitives: normally injected by the polynomial
    # rewrite strategy, but accepted in source SQL too so deparsed rewritten
    # queries re-parse and re-analyze (parse→deparse→parse round-tripping).
    "perm_poly_token": (1, 99, SQLType.POLYNOMIAL),
    "perm_poly_mul": (1, 99, SQLType.POLYNOMIAL),
    "perm_poly_one": (0, 0, SQLType.POLYNOMIAL),
    "perm_poly_monus": (2, 2, SQLType.POLYNOMIAL),
}

_EXTRACT_FIELDS = frozenset({"year", "month", "day"})


class _Scope:
    """One level of name visibility: the query being built at that level."""

    __slots__ = ("query",)

    def __init__(self, query: Query) -> None:
        self.query = query


def query_references_outer(query: Query) -> bool:
    """True if ``query`` contains a Var referencing an enclosing query.

    Checks transitively: a sublink nested inside ``query`` that reaches past
    ``query`` makes ``query`` correlated too.
    """
    return _has_free_vars(query, depth=0)


def _query_level_exprs(query: Query):
    for target in query.target_list:
        yield target.expr
    if query.jointree.quals is not None:
        yield query.jointree.quals
    stack = list(query.jointree.items)
    while stack:
        node = stack.pop()
        if isinstance(node, JoinTreeExpr):
            if node.quals is not None:
                yield node.quals
            stack.append(node.left)
            stack.append(node.right)
    yield from query.group_clause
    if query.having is not None:
        yield query.having


def _has_free_vars(query: Query, depth: int) -> bool:
    from repro.analyzer.query_tree import setop_leaf_indexes

    for expr in _query_level_exprs(query):
        for node in ex.walk(expr):
            if isinstance(node, ex.Var) and node.levelsup > depth:
                return True
            if isinstance(node, ex.SubLink) and _has_free_vars(node.subquery, depth + 1):
                return True
    # Set-operation leaves are analyzed against the same outer scopes as
    # the set-operation node itself (no extra level); FROM subqueries add
    # a scope level.
    leaves = (
        set(setop_leaf_indexes(query.set_operations))
        if query.set_operations is not None
        else set()
    )
    for rtindex, rte in enumerate(query.range_table):
        if rte.kind is RTEKind.SUBQUERY and rte.subquery is not None:
            child_depth = depth if rtindex in leaves else depth + 1
            if _has_free_vars(rte.subquery, child_depth):
                return True
    return False


class Analyzer:
    """Analyzes SELECT statements against a catalog."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog

    # -- public entry points ----------------------------------------------------

    def analyze(self, stmt: ast.SelectNode) -> Query:
        """Analyze a (possibly set-operation) select into a query tree."""
        return self._analyze_select(stmt, outer_scopes=[])

    # -- select dispatch ----------------------------------------------------------

    def _analyze_select(self, stmt: ast.SelectNode, outer_scopes: list[_Scope]) -> Query:
        if isinstance(stmt, ast.SetOpSelect):
            return self._analyze_setop(stmt, outer_scopes)
        return self._analyze_plain_select(stmt, outer_scopes)

    # -- plain SELECT ---------------------------------------------------------------

    def _analyze_plain_select(self, stmt: ast.SelectStmt, outer_scopes: list[_Scope]) -> Query:
        query = Query()
        query.provenance = stmt.provenance
        query.provenance_type = stmt.provenance_type
        query.distinct = stmt.distinct
        query.into = stmt.into
        scope = _Scope(query)
        scopes = [scope] + outer_scopes

        # FROM clause: build range table + join tree.
        items: list[JoinTreeNode] = []
        for from_item in stmt.from_clause:
            items.append(self._analyze_from_item(from_item, query, scopes))
        query.jointree.items = items

        # WHERE
        if stmt.where is not None:
            where_expr = self._analyze_expr(stmt.where, scopes, allow_aggs=False)
            self._require_boolean(where_expr, "WHERE")
            query.jointree.quals = where_expr

        # Select list (star expansion happens here).
        for target in stmt.target_list:
            query.target_list.extend(self._analyze_res_target(target, query, scopes))

        # GROUP BY
        for group_item in stmt.group_by:
            query.group_clause.append(self._analyze_group_item(group_item, query, scopes))

        # HAVING
        if stmt.having is not None:
            having_expr = self._analyze_expr(stmt.having, scopes, allow_aggs=True)
            self._require_boolean(having_expr, "HAVING")
            query.having = having_expr

        # HAVING makes the query an aggregation even without GROUP BY or
        # aggregate calls (SQL treats it as a grand aggregate).
        query.has_aggs = (
            any(ex.contains_aggref(t.expr) for t in query.target_list)
            or query.having is not None
        )

        if query.has_aggs or query.group_clause:
            self._validate_grouping(query)

        # ORDER BY / LIMIT
        self._analyze_sort_limit(stmt, query, scopes)
        return query

    def _analyze_sort_limit(
        self, stmt: ast.SelectNode, query: Query, scopes: list[_Scope]
    ) -> None:
        for sort in stmt.order_by:
            index = self._resolve_sort_target(sort.expr, query, scopes)
            query.sort_clause.append(
                SortClause(
                    tlist_index=index,
                    descending=sort.descending,
                    nulls_first=sort.nulls_first,
                )
            )
        if stmt.limit is not None:
            query.limit_count = self._analyze_constant(stmt.limit, "LIMIT")
        if stmt.offset is not None:
            query.limit_offset = self._analyze_constant(stmt.offset, "OFFSET")

    def _analyze_constant(self, expr: ast.Expr, clause: str) -> ex.Expr:
        analyzed = self._analyze_expr(expr, scopes=[], allow_aggs=False)
        if not isinstance(analyzed, ex.Const) or analyzed.type not in NUMERIC_TYPES:
            raise AnalyzeError(f"{clause} must be a numeric constant")
        return analyzed

    def _resolve_sort_target(
        self, expr: ast.Expr, query: Query, scopes: list[_Scope]
    ) -> int:
        """Resolve an ORDER BY item to a target-list index.

        Resolution order (following SQL): output column name, ordinal
        position, then a full expression (added as a resjunk entry if new).
        """
        visible = query.visible_targets
        if isinstance(expr, ast.ColumnRef) and expr.relation is None:
            for i, target in enumerate(query.target_list):
                if not target.resjunk and target.name.lower() == expr.name.lower():
                    return i
        if isinstance(expr, ast.NumberLit) and isinstance(expr.value, int):
            position = expr.value
            if not 1 <= position <= len(visible):
                raise AnalyzeError(f"ORDER BY position {position} is out of range")
            # map visible ordinal to absolute target index
            count = 0
            for i, target in enumerate(query.target_list):
                if target.resjunk:
                    continue
                count += 1
                if count == position:
                    return i
            raise AnalyzeError("ORDER BY ordinal resolution failed")  # pragma: no cover
        if query.set_operations is not None:
            raise AnalyzeError(
                "ORDER BY on a set operation may only use output column "
                "names or ordinals"
            )
        analyzed = self._analyze_expr(
            expr, scopes, allow_aggs=query.has_aggs or bool(query.group_clause)
        )
        for i, target in enumerate(query.target_list):
            if target.expr == analyzed:
                return i
        if query.has_aggs or query.group_clause:
            self._check_grouped_expr(analyzed, query.group_clause, context="ORDER BY")
        query.target_list.append(TargetEntry(expr=analyzed, name="?sort?", resjunk=True))
        return len(query.target_list) - 1

    # -- FROM items ------------------------------------------------------------------

    def _analyze_from_item(
        self, item: ast.FromItem, query: Query, scopes: list[_Scope]
    ) -> JoinTreeNode:
        if isinstance(item, ast.RangeVar):
            rtindex = self._add_relation_rte(item, query)
            return RangeTableRef(rtindex)
        if isinstance(item, ast.RangeSubselect):
            rtindex = self._add_subselect_rte(item, query)
            return RangeTableRef(rtindex)
        if isinstance(item, ast.JoinExpr):
            return self._analyze_join(item, query, scopes)
        raise AnalyzeError(f"unsupported FROM item {item!r}")

    def _add_relation_rte(self, item: ast.RangeVar, query: Query) -> int:
        name = item.name
        alias = (item.alias or name).lower()
        self._check_alias_unused(query, alias)
        if self.catalog.has_table(name):
            table = self.catalog.table(name)
            columns = list(table.schema.column_names)
            types = list(table.schema.column_types)
            if item.column_aliases:
                columns = self._apply_column_aliases(columns, item.column_aliases, alias)
            rte = RangeTableEntry(
                kind=RTEKind.RELATION,
                alias=alias,
                column_names=columns,
                column_types=types,
                relation_name=table.name.lower(),
                schema=table.schema,
                provenance_attrs=item.provenance_attrs,
                base_relation=item.base_relation,
            )
            return query.add_rte(rte)
        if self.catalog.has_view(name):
            view = self.catalog.view(name)
            subquery = self._analyze_select(view.statement, outer_scopes=[])
            provenance_attrs = item.provenance_attrs
            if provenance_attrs is None and view.provenance_attributes:
                provenance_attrs = tuple(view.provenance_attributes)
            subquery, provenance_attrs = self._rewrite_if_marked(
                subquery, provenance_attrs
            )
            columns = subquery.output_columns()
            if item.column_aliases:
                columns = self._apply_column_aliases(columns, item.column_aliases, alias)
            rte = RangeTableEntry(
                kind=RTEKind.SUBQUERY,
                alias=alias,
                column_names=columns,
                column_types=list(subquery.output_types()),
                subquery=subquery,
                provenance_attrs=provenance_attrs,
                base_relation=item.base_relation,
            )
            return query.add_rte(rte)
        raise AnalyzeError(f"relation {name!r} does not exist")

    def _add_subselect_rte(self, item: ast.RangeSubselect, query: Query) -> int:
        alias = item.alias.lower()
        self._check_alias_unused(query, alias)
        # FROM subqueries are not correlated (no LATERAL): analyze without
        # outer scopes.
        subquery = self._analyze_select(item.subquery, outer_scopes=[])
        provenance_attrs = item.provenance_attrs
        subquery, provenance_attrs = self._rewrite_if_marked(subquery, provenance_attrs)
        columns = subquery.output_columns()
        if item.column_aliases:
            columns = self._apply_column_aliases(columns, item.column_aliases, alias)
        rte = RangeTableEntry(
            kind=RTEKind.SUBQUERY,
            alias=alias,
            column_names=columns,
            column_types=list(subquery.output_types()),
            subquery=subquery,
            provenance_attrs=provenance_attrs,
            base_relation=item.base_relation,
        )
        return query.add_rte(rte)

    @staticmethod
    def _rewrite_if_marked(
        subquery: Query, provenance_attrs: Optional[tuple[str, ...]]
    ) -> tuple[Query, Optional[tuple[str, ...]]]:
        """Eagerly rewrite a ``SELECT PROVENANCE`` subquery.

        The paper (section IV-B) notes that the analyzer needed small
        changes so references to provenance attributes of marked
        subqueries resolve; rewriting the marked node here exposes its
        provenance result schema to the enclosing query.  The produced
        provenance attributes are recorded on the range table entry, so an
        enclosing ``SELECT PROVENANCE`` treats the node as already
        rewritten (incremental computation, section IV-A.3).
        """
        if not subquery.provenance:
            return subquery, provenance_attrs
        from repro.core.registry import get_rewrite_strategy

        strategy = get_rewrite_strategy(subquery.provenance_type)
        rewritten, attrs = strategy.rewrite_subquery(subquery)
        if provenance_attrs is None:
            provenance_attrs = attrs
        return rewritten, provenance_attrs

    @staticmethod
    def _apply_column_aliases(
        columns: list[str], aliases: tuple[str, ...], alias: str
    ) -> list[str]:
        if len(aliases) > len(columns):
            raise AnalyzeError(
                f"alias list for {alias!r} has {len(aliases)} names, "
                f"relation has only {len(columns)} columns"
            )
        renamed = list(columns)
        for i, new_name in enumerate(aliases):
            renamed[i] = new_name.lower()
        return renamed

    @staticmethod
    def _check_alias_unused(query: Query, alias: str) -> None:
        if any(rte.alias == alias for rte in query.range_table):
            raise AnalyzeError(f"table name {alias!r} specified more than once")

    def _analyze_join(self, item: ast.JoinExpr, query: Query, scopes: list[_Scope]) -> JoinTreeExpr:
        left = self._analyze_from_item(item.left, query, scopes)
        right = self._analyze_from_item(item.right, query, scopes)
        condition: Optional[ex.Expr] = None
        if item.natural or item.using:
            condition = self._build_using_condition(item, left, right, query)
        elif item.condition is not None:
            condition = self._analyze_expr(item.condition, scopes, allow_aggs=False)
            self._require_boolean(condition, "JOIN/ON")
        elif item.join_type != "cross":
            raise AnalyzeError("JOIN requires a condition")
        join_type = "inner" if item.join_type == "cross" else item.join_type
        if item.join_type == "cross":
            condition = ex.Const(True, SQLType.BOOLEAN)
        return JoinTreeExpr(join_type=join_type, left=left, right=right, quals=condition)

    def _build_using_condition(
        self,
        item: ast.JoinExpr,
        left: JoinTreeNode,
        right: JoinTreeNode,
        query: Query,
    ) -> ex.Expr:
        from repro.analyzer.query_tree import jointree_rtindexes

        left_indexes = jointree_rtindexes(left)
        right_indexes = jointree_rtindexes(right)
        if item.natural:
            left_cols = {
                c for i in left_indexes for c in query.range_table[i].column_names
            }
            names = [
                c
                for i in right_indexes
                for c in query.range_table[i].column_names
                if c in left_cols
            ]
            if not names:
                raise AnalyzeError("NATURAL JOIN has no common columns")
        else:
            names = list(item.using)
        conjuncts: list[ex.Expr] = []
        for name in names:
            left_var = self._find_column_in_rtes(query, left_indexes, name)
            right_var = self._find_column_in_rtes(query, right_indexes, name)
            conjuncts.append(
                ex.OpExpr("=", (left_var, right_var), SQLType.BOOLEAN)
            )
        if len(conjuncts) == 1:
            return conjuncts[0]
        return ex.BoolOpExpr("and", tuple(conjuncts))

    def _find_column_in_rtes(self, query: Query, rtindexes: list[int], name: str) -> ex.Var:
        low = name.lower()
        matches = []
        for rtindex in rtindexes:
            rte = query.range_table[rtindex]
            for attno, column in enumerate(rte.column_names):
                if column.lower() == low:
                    matches.append((rtindex, attno, rte.column_types[attno], column))
        if not matches:
            raise AnalyzeError(f"column {name!r} does not exist")
        if len(matches) > 1:
            raise AnalyzeError(f"common column name {name!r} appears more than once")
        rtindex, attno, col_type, column = matches[0]
        return ex.Var(varno=rtindex, varattno=attno, type=col_type, name=column)

    # -- set operations ------------------------------------------------------------------

    def _analyze_setop(self, stmt: ast.SetOpSelect, outer_scopes: list[_Scope]) -> Query:
        query = Query()
        query.provenance = stmt.provenance
        query.provenance_type = stmt.provenance_type
        query.into = stmt.into
        tree = self._build_setop_tree(stmt, query, outer_scopes, is_root=True)
        query.set_operations = tree

        first_leaf = self._first_leaf(tree)
        leaf_rte = query.range_table[first_leaf.rtindex]
        for attno, (column, col_type) in enumerate(
            zip(leaf_rte.column_names, leaf_rte.column_types)
        ):
            var = ex.Var(varno=first_leaf.rtindex, varattno=attno, type=col_type, name=column)
            query.target_list.append(TargetEntry(expr=var, name=column))
        self._analyze_sort_limit(stmt, query, scopes=[_Scope(query)])
        return query

    def _build_setop_tree(
        self,
        node: ast.SelectNode,
        query: Query,
        outer_scopes: list[_Scope],
        is_root: bool = False,
    ) -> SetOpTreeNode:
        if isinstance(node, ast.SetOpSelect):
            # A *nested* set operation with its own ORDER BY/LIMIT must stay
            # a separate subquery leaf to preserve semantics; the root's
            # tail is handled by _analyze_setop itself.
            has_tail = bool(node.order_by) or node.limit is not None or node.offset is not None
            if has_tail and not is_root:
                return self._add_setop_leaf(node, query, outer_scopes)
            left = self._build_setop_tree(node.left, query, outer_scopes)
            right = self._build_setop_tree(node.right, query, outer_scopes)
            self._check_union_compat(query, left, right, node.op)
            return SetOpNode(op=node.op, all=node.all, left=left, right=right)
        return self._add_setop_leaf(node, query, outer_scopes)

    def _add_setop_leaf(
        self, node: ast.SelectNode, query: Query, outer_scopes: list[_Scope]
    ) -> SetOpRangeRef:
        subquery = self._analyze_select(node, outer_scopes)
        rte = RangeTableEntry(
            kind=RTEKind.SUBQUERY,
            alias=f"*setop*{len(query.range_table)}",
            column_names=list(subquery.output_columns()),
            column_types=list(subquery.output_types()),
            subquery=subquery,
        )
        return SetOpRangeRef(query.add_rte(rte))

    def _first_leaf(self, node: SetOpTreeNode) -> SetOpRangeRef:
        while isinstance(node, SetOpNode):
            node = node.left
        return node

    def _check_union_compat(
        self, query: Query, left: SetOpTreeNode, right: SetOpTreeNode, op: str
    ) -> None:
        left_types = self._setop_types(query, left)
        right_types = self._setop_types(query, right)
        if len(left_types) != len(right_types):
            raise AnalyzeError(
                f"each {op.upper()} query must have the same number of columns"
            )
        for i, (lt, rt) in enumerate(zip(left_types, right_types)):
            try:
                coerce_types(lt, rt)
            except ValueError:
                raise TypeMismatchError(
                    f"{op.upper()} column {i + 1} has incompatible types "
                    f"{lt.value} and {rt.value}"
                ) from None

    def _setop_types(self, query: Query, node: SetOpTreeNode) -> list[SQLType]:
        if isinstance(node, SetOpRangeRef):
            return list(query.range_table[node.rtindex].column_types)
        return self._setop_types(query, node.left)

    # -- select list -------------------------------------------------------------------------

    def _analyze_res_target(
        self, target: ast.ResTarget, query: Query, scopes: list[_Scope]
    ) -> list[TargetEntry]:
        if isinstance(target.expr, ast.Star):
            return self._expand_star(target.expr, query)
        expr = self._analyze_expr(target.expr, scopes, allow_aggs=True)
        name = target.name or self._infer_target_name(target.expr)
        return [TargetEntry(expr=expr, name=name)]

    def _expand_star(self, star: ast.Star, query: Query) -> list[TargetEntry]:
        entries: list[TargetEntry] = []
        from repro.analyzer.query_tree import jointree_rtindexes

        visible: list[int] = []
        for item in query.jointree.items:
            visible.extend(jointree_rtindexes(item))
        if star.relation is not None:
            low = star.relation.lower()
            visible = [
                i for i in visible if query.range_table[i].alias == low
            ]
            if not visible:
                raise AnalyzeError(f"relation {star.relation!r} not found in FROM")
        if not visible:
            raise AnalyzeError("SELECT * with no FROM clause")
        for rtindex in visible:
            rte = query.range_table[rtindex]
            for attno, (column, col_type) in enumerate(
                zip(rte.column_names, rte.column_types)
            ):
                var = ex.Var(varno=rtindex, varattno=attno, type=col_type, name=column)
                entries.append(TargetEntry(expr=var, name=column))
        return entries

    @staticmethod
    def _infer_target_name(expr: ast.Expr) -> str:
        if isinstance(expr, ast.ColumnRef):
            return expr.name
        if isinstance(expr, ast.FuncCall):
            return expr.name
        if isinstance(expr, ast.ExtractExpr):
            return "extract"
        if isinstance(expr, ast.SubstringExpr):
            return "substr"
        if isinstance(expr, ast.CastExpr):
            return expr.type_name.split("(")[0].strip().lower() or "cast"
        if isinstance(expr, ast.CaseExpr):
            return "case"
        return "?column?"

    # -- GROUP BY --------------------------------------------------------------------------------

    def _analyze_group_item(
        self, item: ast.Expr, query: Query, scopes: list[_Scope]
    ) -> ex.Expr:
        visible = query.visible_targets
        if isinstance(item, ast.NumberLit) and isinstance(item.value, int):
            position = item.value
            if not 1 <= position <= len(visible):
                raise AnalyzeError(f"GROUP BY position {position} is out of range")
            expr = visible[position - 1].expr
            if ex.contains_aggref(expr):
                raise AnalyzeError("aggregate functions are not allowed in GROUP BY")
            return expr
        if isinstance(item, ast.ColumnRef) and item.relation is None:
            # Prefer an input column; fall back to an output alias
            # (PostgreSQL resolution order for GROUP BY).
            try:
                return self._analyze_expr(item, scopes, allow_aggs=False)
            except AnalyzeError:
                for target in visible:
                    if target.name.lower() == item.name.lower():
                        if ex.contains_aggref(target.expr):
                            raise AnalyzeError(
                                "aggregate functions are not allowed in GROUP BY"
                            )
                        return target.expr
                raise
        expr = self._analyze_expr(item, scopes, allow_aggs=False)
        return expr

    def _validate_grouping(self, query: Query) -> None:
        for target in query.target_list:
            self._check_grouped_expr(target.expr, query.group_clause, context="SELECT")
        if query.having is not None:
            self._check_grouped_expr(query.having, query.group_clause, context="HAVING")

    def _check_grouped_expr(
        self, expr: ex.Expr, group_exprs: list[ex.Expr], context: str
    ) -> None:
        """Check that ``expr`` only uses grouped columns outside aggregates."""
        if any(expr == g for g in group_exprs):
            return
        if isinstance(expr, ex.Aggref):
            return  # aggregate arguments may reference any input column
        if isinstance(expr, ex.Const):
            return
        if isinstance(expr, ex.SubLink):
            # Uncorrelated sublinks are independent of the current row.
            if expr.testexpr is not None:
                self._check_grouped_expr(expr.testexpr, group_exprs, context)
            return
        if isinstance(expr, ex.Var):
            raise AnalyzeError(
                f'column "{expr.name}" must appear in the GROUP BY clause '
                f"or be used in an aggregate function ({context})"
            )
        for child in expr.children():
            self._check_grouped_expr(child, group_exprs, context)

    # -- expressions -------------------------------------------------------------------------------

    def _analyze_expr(
        self, expr: ast.Expr, scopes: list[_Scope], allow_aggs: bool
    ) -> ex.Expr:
        method = getattr(self, f"_analyze_{type(expr).__name__}", None)
        if method is None:
            raise UnsupportedFeatureError(f"unsupported expression {expr!r}")
        return method(expr, scopes, allow_aggs)

    # Each _analyze_<NodeType> takes (node, scopes, allow_aggs).

    def _analyze_NumberLit(self, node: ast.NumberLit, scopes, allow_aggs) -> ex.Expr:
        value = node.value
        sql_type = SQLType.INTEGER if isinstance(value, int) else SQLType.FLOAT
        return ex.Const(value, sql_type)

    def _analyze_StringLit(self, node: ast.StringLit, scopes, allow_aggs) -> ex.Expr:
        return ex.Const(node.value, SQLType.TEXT)

    def _analyze_BoolLit(self, node: ast.BoolLit, scopes, allow_aggs) -> ex.Expr:
        return ex.Const(node.value, SQLType.BOOLEAN)

    def _analyze_NullLit(self, node: ast.NullLit, scopes, allow_aggs) -> ex.Expr:
        return ex.Const(None, SQLType.NULL)

    def _analyze_DateLit(self, node: ast.DateLit, scopes, allow_aggs) -> ex.Expr:
        try:
            value = parse_date(node.text)
        except ValueError as exc:
            raise AnalyzeError(f"invalid date literal {node.text!r}: {exc}") from None
        return ex.Const(value, SQLType.DATE)

    def _analyze_IntervalLit(self, node: ast.IntervalLit, scopes, allow_aggs) -> ex.Expr:
        from repro.datatypes import Interval

        try:
            value = Interval.parse(node.quantity, node.unit)
        except ValueError as exc:
            raise AnalyzeError(str(exc)) from None
        return ex.Const(value, SQLType.INTERVAL)

    def _analyze_ColumnRef(self, node: ast.ColumnRef, scopes, allow_aggs) -> ex.Expr:
        return self._resolve_column(node, scopes)

    def _resolve_column(self, node: ast.ColumnRef, scopes: list[_Scope]) -> ex.Var:
        low = node.name.lower()
        rel = node.relation.lower() if node.relation else None
        for level, scope in enumerate(scopes):
            matches: list[ex.Var] = []
            for rtindex, rte in enumerate(scope.query.range_table):
                if rel is not None and rte.alias != rel:
                    continue
                for attno, column in enumerate(rte.column_names):
                    if column.lower() == low:
                        matches.append(
                            ex.Var(
                                varno=rtindex,
                                varattno=attno,
                                type=rte.column_types[attno],
                                name=column,
                                levelsup=level,
                            )
                        )
            if len(matches) > 1:
                raise AnalyzeError(f"column reference {node} is ambiguous")
            if matches:
                return matches[0]
        raise AnalyzeError(f"column {node} does not exist")

    def _analyze_BinaryOp(self, node: ast.BinaryOp, scopes, allow_aggs) -> ex.Expr:
        left = self._analyze_expr(node.left, scopes, allow_aggs)
        right = self._analyze_expr(node.right, scopes, allow_aggs)
        op = node.op
        if op in ("=", "<>", "<", "<=", ">", ">="):
            self._check_comparable(left.type, right.type, op)
            return ex.OpExpr(op, (left, right), SQLType.BOOLEAN)
        if op == "||":
            return ex.OpExpr(op, (left, right), SQLType.TEXT)
        # arithmetic
        result_type = self._arith_type(left.type, right.type, op)
        return ex.OpExpr(op, (left, right), result_type)

    def _arith_type(self, left: SQLType, right: SQLType, op: str) -> SQLType:
        if SQLType.DATE in (left, right):
            other = right if left == SQLType.DATE else left
            if op == "+" and other in (SQLType.INTERVAL, SQLType.INTEGER):
                return SQLType.DATE
            if op == "-" and other in (SQLType.INTERVAL, SQLType.INTEGER):
                return SQLType.DATE
            if op == "-" and left == SQLType.DATE and right == SQLType.DATE:
                return SQLType.INTEGER  # day difference
            raise TypeMismatchError(f"operator {op} not defined for dates here")
        if SQLType.INTERVAL in (left, right):
            if op in ("+", "-") and left == right:
                return SQLType.INTERVAL
            raise TypeMismatchError(f"operator {op} not defined for intervals here")
        try:
            combined = coerce_types(left, right)
        except ValueError as exc:
            raise TypeMismatchError(f"{exc} (operator {op})") from None
        if combined == SQLType.NULL:
            return SQLType.NULL
        if combined not in NUMERIC_TYPES:
            raise TypeMismatchError(
                f"operator {op} requires numeric arguments, got {combined.value}"
            )
        return combined

    def _check_comparable(self, left: SQLType, right: SQLType, op: str) -> None:
        try:
            coerce_types(left, right)
        except ValueError as exc:
            raise TypeMismatchError(f"{exc} (operator {op})") from None

    def _analyze_UnaryOp(self, node: ast.UnaryOp, scopes, allow_aggs) -> ex.Expr:
        operand = self._analyze_expr(node.operand, scopes, allow_aggs)
        if operand.type not in NUMERIC_TYPES and operand.type != SQLType.NULL:
            raise TypeMismatchError("unary minus requires a numeric argument")
        return ex.OpExpr("-", (operand,), operand.type)

    def _analyze_BoolOp(self, node: ast.BoolOp, scopes, allow_aggs) -> ex.Expr:
        args = tuple(self._analyze_expr(a, scopes, allow_aggs) for a in node.args)
        for arg in args:
            self._require_boolean(arg, node.op.upper())
        return ex.BoolOpExpr(node.op, args)

    def _analyze_FuncCall(self, node: ast.FuncCall, scopes, allow_aggs) -> ex.Expr:
        name = node.name.lower()
        if name in AGGREGATE_NAMES:
            return self._analyze_aggregate(node, scopes, allow_aggs)
        if name not in _SCALAR_FUNCTIONS:
            raise AnalyzeError(f"unknown function {node.name!r}")
        min_args, max_args, result_type = _SCALAR_FUNCTIONS[name]
        if node.star or node.distinct:
            raise AnalyzeError(f"{node.name} does not accept */DISTINCT")
        if not min_args <= len(node.args) <= max_args:
            raise AnalyzeError(
                f"function {node.name} expects between {min_args} and "
                f"{max_args} arguments, got {len(node.args)}"
            )
        args = tuple(self._analyze_expr(a, scopes, allow_aggs) for a in node.args)
        if result_type is None:
            result = args[0].type
            for arg in args[1:]:
                try:
                    result = coerce_types(result, arg.type)
                except ValueError as exc:
                    raise TypeMismatchError(f"{exc} (function {name})") from None
        else:
            result = result_type
        return ex.FuncExpr(name, args, result)

    def _analyze_aggregate(self, node: ast.FuncCall, scopes, allow_aggs) -> ex.Expr:
        name = node.name.lower()
        if not allow_aggs:
            raise AnalyzeError(f"aggregate function {name} is not allowed here")
        if node.star:
            if name != "count":
                raise AnalyzeError(f"{name}(*) is not defined")
            return ex.Aggref(aggname="count", arg=None, type=SQLType.INTEGER, star=True)
        if len(node.args) != 1:
            raise AnalyzeError(f"aggregate {name} takes exactly one argument")
        arg = self._analyze_expr(node.args[0], scopes, allow_aggs=False)
        if ex.contains_aggref(arg):
            raise AnalyzeError("aggregate calls cannot be nested")
        if name == "count":
            result = SQLType.INTEGER
        elif name == "perm_poly_sum":
            if arg.type not in (SQLType.POLYNOMIAL, SQLType.NULL):
                raise TypeMismatchError(
                    "perm_poly_sum requires a polynomial argument, got "
                    f"{arg.type.value}"
                )
            result = SQLType.POLYNOMIAL
        elif name == "avg":
            self._require_numeric(arg, name)
            result = SQLType.FLOAT
        elif name == "sum":
            self._require_numeric(arg, name)
            result = arg.type if arg.type in NUMERIC_TYPES else SQLType.FLOAT
        else:  # min / max
            result = arg.type
        return ex.Aggref(
            aggname=name, arg=arg, type=result, star=False, distinct=node.distinct
        )

    def _require_numeric(self, expr: ex.Expr, where: str) -> None:
        if expr.type not in NUMERIC_TYPES and expr.type != SQLType.NULL:
            raise TypeMismatchError(
                f"{where} requires a numeric argument, got {expr.type.value}"
            )

    def _require_boolean(self, expr: ex.Expr, where: str) -> None:
        if expr.type not in (SQLType.BOOLEAN, SQLType.NULL):
            raise TypeMismatchError(
                f"argument of {where} must be boolean, got {expr.type.value}"
            )

    def _analyze_CaseExpr(self, node: ast.CaseExpr, scopes, allow_aggs) -> ex.Expr:
        whens: list[tuple[ex.Expr, ex.Expr]] = []
        operand = (
            self._analyze_expr(node.operand, scopes, allow_aggs)
            if node.operand is not None
            else None
        )
        result_type: Optional[SQLType] = None
        for cond_ast, result_ast in node.whens:
            cond = self._analyze_expr(cond_ast, scopes, allow_aggs)
            if operand is not None:
                # simple CASE: normalize to operand = value
                self._check_comparable(operand.type, cond.type, "=")
                cond = ex.OpExpr("=", (operand, cond), SQLType.BOOLEAN)
            else:
                self._require_boolean(cond, "CASE/WHEN")
            result = self._analyze_expr(result_ast, scopes, allow_aggs)
            result_type = self._merge_result_type(result_type, result.type)
            whens.append((cond, result))
        default = None
        if node.default is not None:
            default = self._analyze_expr(node.default, scopes, allow_aggs)
            result_type = self._merge_result_type(result_type, default.type)
        return ex.CaseExpr(tuple(whens), default, result_type or SQLType.NULL)

    def _merge_result_type(self, current: Optional[SQLType], new: SQLType) -> SQLType:
        if current is None:
            return new
        try:
            return coerce_types(current, new)
        except ValueError as exc:
            raise TypeMismatchError(f"{exc} (CASE results)") from None

    def _analyze_BetweenExpr(self, node: ast.BetweenExpr, scopes, allow_aggs) -> ex.Expr:
        # Normalize: x BETWEEN a AND b  ->  x >= a AND x <= b
        expr = self._analyze_expr(node.expr, scopes, allow_aggs)
        low = self._analyze_expr(node.low, scopes, allow_aggs)
        high = self._analyze_expr(node.high, scopes, allow_aggs)
        self._check_comparable(expr.type, low.type, ">=")
        self._check_comparable(expr.type, high.type, "<=")
        result = ex.BoolOpExpr(
            "and",
            (
                ex.OpExpr(">=", (expr, low), SQLType.BOOLEAN),
                ex.OpExpr("<=", (expr, high), SQLType.BOOLEAN),
            ),
        )
        if node.negated:
            return ex.BoolOpExpr("not", (result,))
        return result

    def _analyze_InListExpr(self, node: ast.InListExpr, scopes, allow_aggs) -> ex.Expr:
        # Normalize to an OR chain (AND of <> when negated), preserving
        # three-valued logic exactly.
        expr = self._analyze_expr(node.expr, scopes, allow_aggs)
        comparisons: list[ex.Expr] = []
        for item_ast in node.items:
            item = self._analyze_expr(item_ast, scopes, allow_aggs)
            self._check_comparable(expr.type, item.type, "=")
            op = "<>" if node.negated else "="
            comparisons.append(ex.OpExpr(op, (expr, item), SQLType.BOOLEAN))
        if len(comparisons) == 1:
            return comparisons[0]
        return ex.BoolOpExpr("and" if node.negated else "or", tuple(comparisons))

    def _analyze_LikeExpr(self, node: ast.LikeExpr, scopes, allow_aggs) -> ex.Expr:
        arg = self._analyze_expr(node.expr, scopes, allow_aggs)
        pattern = self._analyze_expr(node.pattern, scopes, allow_aggs)
        if arg.type not in (SQLType.TEXT, SQLType.NULL):
            raise TypeMismatchError("LIKE requires text arguments")
        return ex.LikeTest(arg, pattern, node.negated)

    def _analyze_DistinctExpr(self, node: ast.DistinctExpr, scopes, allow_aggs) -> ex.Expr:
        left = self._analyze_expr(node.left, scopes, allow_aggs)
        right = self._analyze_expr(node.right, scopes, allow_aggs)
        self._check_comparable(left.type, right.type, "IS DISTINCT FROM")
        # negated == IS NOT DISTINCT FROM == null-safe equality (<=>).
        op = "<=>" if node.negated else "<!=>"
        return ex.OpExpr(op, (left, right), SQLType.BOOLEAN)

    def _analyze_IsNullExpr(self, node: ast.IsNullExpr, scopes, allow_aggs) -> ex.Expr:
        arg = self._analyze_expr(node.expr, scopes, allow_aggs)
        return ex.NullTest(arg, node.negated)

    def _analyze_ExtractExpr(self, node: ast.ExtractExpr, scopes, allow_aggs) -> ex.Expr:
        if node.fieldname not in _EXTRACT_FIELDS:
            raise AnalyzeError(f"EXTRACT field {node.fieldname!r} not supported")
        arg = self._analyze_expr(node.expr, scopes, allow_aggs)
        if arg.type not in (SQLType.DATE, SQLType.NULL):
            raise TypeMismatchError("EXTRACT requires a date argument")
        return ex.FuncExpr(f"extract_{node.fieldname}", (arg,), SQLType.INTEGER)

    def _analyze_SubstringExpr(self, node: ast.SubstringExpr, scopes, allow_aggs) -> ex.Expr:
        args = [
            self._analyze_expr(node.expr, scopes, allow_aggs),
            self._analyze_expr(node.start, scopes, allow_aggs),
        ]
        if node.length is not None:
            args.append(self._analyze_expr(node.length, scopes, allow_aggs))
        return ex.FuncExpr("substr", tuple(args), SQLType.TEXT)

    def _analyze_CastExpr(self, node: ast.CastExpr, scopes, allow_aggs) -> ex.Expr:
        arg = self._analyze_expr(node.expr, scopes, allow_aggs)
        try:
            target = type_from_name(node.type_name)
        except ValueError as exc:
            raise AnalyzeError(str(exc)) from None
        return ex.FuncExpr(f"cast_{target.value}", (arg,), target)

    def _analyze_SubLinkExpr(self, node: ast.SubLinkExpr, scopes, allow_aggs) -> ex.Expr:
        inner_query = self._analyze_select(node.subquery, outer_scopes=scopes)
        inner_query, _ = self._rewrite_if_marked(inner_query, None)
        # Correlation is a structural property: does the subquery contain a
        # free Var referencing an enclosing query?  (The engine executes
        # correlated sublinks; the Perm rewriter rejects them, as in the
        # paper.)
        correlated = query_references_outer(inner_query)
        testexpr: Optional[ex.Expr] = None
        if node.kind in ("any", "all"):
            testexpr = self._analyze_expr(node.testexpr, scopes, allow_aggs)
            if len(inner_query.visible_targets) != 1:
                raise AnalyzeError("subquery must return exactly one column")
            inner_type = inner_query.visible_targets[0].expr.type
            self._check_comparable(testexpr.type, inner_type, node.operator or "=")
            result_type = SQLType.BOOLEAN
        elif node.kind == "exists":
            result_type = SQLType.BOOLEAN
        else:  # scalar
            if len(inner_query.visible_targets) != 1:
                raise AnalyzeError("scalar subquery must return exactly one column")
            result_type = inner_query.visible_targets[0].expr.type
        return ex.SubLink(
            kind=node.kind,
            subquery=inner_query,
            testexpr=testexpr,
            operator=node.operator,
            type=result_type,
            correlated=correlated,
        )

    def _analyze_Star(self, node: ast.Star, scopes, allow_aggs) -> ex.Expr:
        raise AnalyzeError("* is only allowed in the select list")
