"""Analyzed (resolved, typed) expression nodes.

These are the expressions stored inside query trees.  Every node carries a
``type`` tag.  Column references are :class:`Var` nodes addressing a range
table entry by index plus an attribute number, exactly like PostgreSQL's
``Var(varno, varattno)``; ``levelsup`` addresses enclosing queries for
correlated sublinks (which the engine executes but the Perm rewriter
rejects, as in the paper).

All nodes are immutable; the provenance rewriter builds new query trees
rather than mutating expressions in place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterator, Optional

from repro.datatypes import SQLType

if TYPE_CHECKING:  # pragma: no cover
    from repro.analyzer.query_tree import Query


class Expr:
    """Base class of analyzed expressions."""

    __slots__ = ()

    type: SQLType

    def children(self) -> tuple["Expr", ...]:
        """Direct sub-expressions (sublink subqueries are *not* included)."""
        return ()


@dataclass(frozen=True)
class Var(Expr):
    """A resolved column reference.

    ``varno`` indexes the range table (0-based); ``varattno`` the column of
    that range table entry (0-based); ``levelsup`` counts how many query
    levels up the referenced range table lives (0 = this query).
    """

    varno: int
    varattno: int
    type: SQLType
    name: str = ""  # the source column name; display only
    levelsup: int = 0

    def children(self) -> tuple[Expr, ...]:
        return ()

    def __str__(self) -> str:
        prefix = f"^{self.levelsup}." if self.levelsup else ""
        label = self.name or f"col{self.varattno}"
        return f"{prefix}${self.varno}.{label}"


@dataclass(frozen=True)
class Const(Expr):
    value: Any
    type: SQLType

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class OpExpr(Expr):
    """Binary/unary operator application (arithmetic, comparison, ||)."""

    op: str
    args: tuple[Expr, ...]
    type: SQLType

    def children(self) -> tuple[Expr, ...]:
        return self.args

    def __str__(self) -> str:
        if len(self.args) == 1:
            return f"({self.op}{self.args[0]})"
        return f"({self.args[0]} {self.op} {self.args[1]})"


@dataclass(frozen=True)
class BoolOpExpr(Expr):
    """AND / OR / NOT over boolean arguments; type is always BOOLEAN."""

    op: str  # 'and' | 'or' | 'not'
    args: tuple[Expr, ...]
    type: SQLType = SQLType.BOOLEAN

    def children(self) -> tuple[Expr, ...]:
        return self.args

    def __str__(self) -> str:
        if self.op == "not":
            return f"(NOT {self.args[0]})"
        sep = f" {self.op.upper()} "
        return "(" + sep.join(str(a) for a in self.args) + ")"


@dataclass(frozen=True)
class FuncExpr(Expr):
    """Scalar function call (non-aggregate)."""

    name: str
    args: tuple[Expr, ...]
    type: SQLType

    def children(self) -> tuple[Expr, ...]:
        return self.args

    def __str__(self) -> str:
        return f"{self.name}(" + ", ".join(str(a) for a in self.args) + ")"


@dataclass(frozen=True)
class Aggref(Expr):
    """An aggregate reference: sum/count/avg/min/max.

    ``arg`` is None only for ``count(*)`` (``star`` True).
    """

    aggname: str
    arg: Optional[Expr]
    type: SQLType
    star: bool = False
    distinct: bool = False

    def children(self) -> tuple[Expr, ...]:
        return () if self.arg is None else (self.arg,)

    def __str__(self) -> str:
        if self.star:
            return f"{self.aggname}(*)"
        prefix = "DISTINCT " if self.distinct else ""
        return f"{self.aggname}({prefix}{self.arg})"


@dataclass(frozen=True)
class CaseExpr(Expr):
    """Searched CASE (simple CASE is normalized to searched at analysis)."""

    whens: tuple[tuple[Expr, Expr], ...]
    default: Optional[Expr]
    type: SQLType

    def children(self) -> tuple[Expr, ...]:
        parts: list[Expr] = []
        for cond, result in self.whens:
            parts.append(cond)
            parts.append(result)
        if self.default is not None:
            parts.append(self.default)
        return tuple(parts)

    def __str__(self) -> str:
        body = " ".join(f"WHEN {c} THEN {r}" for c, r in self.whens)
        tail = f" ELSE {self.default}" if self.default is not None else ""
        return f"CASE {body}{tail} END"


@dataclass(frozen=True)
class NullTest(Expr):
    arg: Expr
    negated: bool  # True = IS NOT NULL
    type: SQLType = SQLType.BOOLEAN

    def children(self) -> tuple[Expr, ...]:
        return (self.arg,)

    def __str__(self) -> str:
        return f"({self.arg} IS {'NOT ' if self.negated else ''}NULL)"


@dataclass(frozen=True)
class LikeTest(Expr):
    arg: Expr
    pattern: Expr
    negated: bool
    type: SQLType = SQLType.BOOLEAN

    def children(self) -> tuple[Expr, ...]:
        return (self.arg, self.pattern)

    def __str__(self) -> str:
        return f"({self.arg} {'NOT ' if self.negated else ''}LIKE {self.pattern})"


@dataclass(frozen=True)
class InList(Expr):
    """``x [NOT] IN (v1, ..., vn)`` over an expression list."""

    arg: Expr
    items: tuple[Expr, ...]
    negated: bool
    type: SQLType = SQLType.BOOLEAN

    def children(self) -> tuple[Expr, ...]:
        return (self.arg,) + self.items

    def __str__(self) -> str:
        inner = ", ".join(str(i) for i in self.items)
        return f"({self.arg} {'NOT ' if self.negated else ''}IN ({inner}))"


class SubLinkKind:
    EXISTS = "exists"
    ANY = "any"
    ALL = "all"
    SCALAR = "scalar"


@dataclass(frozen=True, eq=False)
class SubLink(Expr):
    """A subquery inside an expression (paper section IV-E).

    ``correlated`` records whether the subquery references this query's
    range tables; the rewriter refuses those, as in the paper.  ``eq=False``
    because the embedded Query is mutable; identity comparison suffices.
    """

    kind: str
    subquery: "Query"
    testexpr: Optional[Expr]
    operator: Optional[str]
    type: SQLType
    correlated: bool = False

    def children(self) -> tuple[Expr, ...]:
        return () if self.testexpr is None else (self.testexpr,)

    def __str__(self) -> str:
        if self.kind == SubLinkKind.EXISTS:
            return "EXISTS(<subquery>)"
        if self.kind == SubLinkKind.SCALAR:
            return "(<subquery>)"
        quant = "ANY" if self.kind == SubLinkKind.ANY else "ALL"
        return f"({self.testexpr} {self.operator} {quant} (<subquery>))"


# ---------------------------------------------------------------------------
# Tree utilities
# ---------------------------------------------------------------------------


def walk(expr: Expr) -> Iterator[Expr]:
    """Yield ``expr`` and all sub-expressions (not descending into sublinks)."""
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(node.children())


def contains_aggref(expr: Expr) -> bool:
    return any(isinstance(node, Aggref) for node in walk(expr))


def contains_sublink(expr: Expr) -> bool:
    return any(isinstance(node, SubLink) for node in walk(expr))


def collect_sublinks(expr: Expr) -> list[SubLink]:
    return [node for node in walk(expr) if isinstance(node, SubLink)]


def collect_vars(expr: Expr, levelsup: int = 0) -> list[Var]:
    """All Vars at the given level (descending into sublink test expressions)."""
    return [n for n in walk(expr) if isinstance(n, Var) and n.levelsup == levelsup]


def transform(expr: Expr, fn: Callable[[Expr], Optional[Expr]]) -> Expr:
    """Bottom-up expression rewrite.

    ``fn`` is applied to every node after its children were rewritten; it
    returns a replacement node or ``None`` to keep the (rebuilt) node.
    """
    rebuilt = _rebuild(expr, [transform(child, fn) for child in expr.children()])
    replacement = fn(rebuilt)
    return rebuilt if replacement is None else replacement


def rebuild_with_children(node: Expr, new_children: list[Expr]) -> Expr:
    """Clone ``node`` with ``new_children`` substituted positionally."""
    return _rebuild(node, new_children)


def _rebuild(node: Expr, new_children: list[Expr]) -> Expr:
    """Clone ``node`` with ``new_children`` substituted positionally."""
    if not new_children and not node.children():
        return node
    if isinstance(node, OpExpr):
        return OpExpr(node.op, tuple(new_children), node.type)
    if isinstance(node, BoolOpExpr):
        return BoolOpExpr(node.op, tuple(new_children))
    if isinstance(node, FuncExpr):
        return FuncExpr(node.name, tuple(new_children), node.type)
    if isinstance(node, Aggref):
        arg = new_children[0] if new_children else None
        return Aggref(node.aggname, arg, node.type, node.star, node.distinct)
    if isinstance(node, CaseExpr):
        pair_count = len(node.whens)
        whens = tuple(
            (new_children[2 * i], new_children[2 * i + 1]) for i in range(pair_count)
        )
        default = new_children[2 * pair_count] if node.default is not None else None
        return CaseExpr(whens, default, node.type)
    if isinstance(node, NullTest):
        return NullTest(new_children[0], node.negated)
    if isinstance(node, LikeTest):
        return LikeTest(new_children[0], new_children[1], node.negated)
    if isinstance(node, InList):
        return InList(new_children[0], tuple(new_children[1:]), node.negated)
    if isinstance(node, SubLink):
        testexpr = new_children[0] if new_children else None
        return SubLink(
            node.kind, node.subquery, testexpr, node.operator, node.type, node.correlated
        )
    return node


def map_vars(expr: Expr, fn: Callable[[Var], Expr]) -> Expr:
    """Replace every level-0 Var via ``fn`` (sublink subqueries untouched)."""

    def visit(node: Expr) -> Optional[Expr]:
        if isinstance(node, Var) and node.levelsup == 0:
            return fn(node)
        return None

    return transform(expr, visit)
