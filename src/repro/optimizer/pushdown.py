"""Predicate pushdown (optimizer rule 3).

WHERE conjuncts that reference the outputs of exactly one subquery range
table entry move inside that subquery, where they filter before joins,
aggregation and set operations instead of after:

* into a plain SPJ subquery (including DISTINCT): appended to its WHERE —
  filtering commutes with projection and duplicate elimination;
* into an aggregating subquery: only when every referenced output column
  is a grouping expression; the conjunct then filters whole groups and
  may run before the aggregation (the classic group-key pushdown);
* into a set-operation subquery: pushed into **every** operand (predicates
  over output columns commute with UNION/INTERSECT/EXCEPT in both ALL and
  DISTINCT forms); the push happens only if every operand accepts it.

A conjunct is only *removed* from the parent when the subquery sits in a
WHERE-safe join position (a top-level FROM item or under inner joins
only); below an outer join the parent filter also eliminates null-extended
rows, which a pushed-down copy cannot.  Subqueries with LIMIT/OFFSET never
accept pushdown (the filter would change which rows the limit keeps), and
conjuncts containing sublinks or correlated references stay put.

Relocated predicates double as cardinality hints for the cost-based
planner: a conjunct pushed inside a subquery (or into every set-operation
operand) lands where the recursive planner estimates that subquery's
cardinality, so the join-order search sees the filtered row count of the
subquery unit instead of discovering the filter only after the join.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.analyzer import expressions as ex
from repro.analyzer.query_tree import (
    JoinTreeExpr,
    Query,
    RangeTableRef,
    RTEKind,
    setop_leaf_indexes,
)

_Commit = Callable[[], None]


def push_down_node(query: Query) -> bool:
    """Push single-subquery WHERE conjuncts of one node into the subquery."""
    if query.set_operations is not None or query.jointree.quals is None:
        return False
    from repro.planner.logical import split_conjuncts

    safe = _where_safe_indexes(query)
    conjuncts = split_conjuncts(query.jointree.quals)
    kept: list[ex.Expr] = []
    changed = False
    for conjunct in conjuncts:
        owner = _single_subquery_owner(query, conjunct, safe)
        if owner is None:
            kept.append(conjunct)
            continue
        commit = _accept(query.range_table[owner].subquery, conjunct, owner)
        if commit is None:
            kept.append(conjunct)
            continue
        commit()
        changed = True
    if not changed:
        return False
    if kept:
        query.jointree.quals = (
            kept[0] if len(kept) == 1 else ex.BoolOpExpr("and", tuple(kept))
        )
    else:
        query.jointree.quals = None
    return True


def _where_safe_indexes(query: Query) -> set[int]:
    """RTE indexes whose rows the WHERE clause filters one-to-one: leaves
    reachable from the FROM items through inner joins only."""
    safe: set[int] = set()
    stack = list(query.jointree.items)
    while stack:
        node = stack.pop()
        if isinstance(node, RangeTableRef):
            safe.add(node.rtindex)
        elif isinstance(node, JoinTreeExpr) and node.join_type in ("inner", "cross"):
            stack.append(node.left)
            stack.append(node.right)
    return safe


def _single_subquery_owner(
    query: Query, conjunct: ex.Expr, safe: set[int]
) -> Optional[int]:
    if ex.contains_sublink(conjunct):
        return None
    all_vars = [n for n in ex.walk(conjunct) if isinstance(n, ex.Var)]
    if not all_vars or any(v.levelsup > 0 for v in all_vars):
        return None
    owners = {v.varno for v in all_vars}
    if len(owners) != 1:
        return None
    owner = owners.pop()
    if owner not in safe:
        return None
    if any(owner in pair[:2] for pair in query.agg_shares):
        # Pushing into one side of a fused pair would break the strict
        # core equivalence the fusion hint asserts.
        return None
    rte = query.range_table[owner]
    if rte.kind is not RTEKind.SUBQUERY or rte.subquery is None:
        return None
    return owner


def _accept(sub: Query, conjunct: ex.Expr, source: int) -> Optional[_Commit]:
    """Check whether ``sub`` can absorb ``conjunct`` (phrased over
    ``source``'s output columns); return the commit action or None.

    Two-phase so a set operation pushes into either *all* operands or
    none — a partial push must not remove the parent conjunct.
    """
    if (
        sub.limit_count is not None
        or sub.limit_offset is not None
        or sub.sort_clause
    ):
        return None
    if sub.set_operations is not None:
        commits: list[_Commit] = []
        for leaf_index in setop_leaf_indexes(sub.set_operations):
            leaf = sub.range_table[leaf_index].subquery
            if leaf is None:
                return None
            commit = _accept(leaf, conjunct, source)
            if commit is None:
                return None
            commits.append(commit)

        def commit_all() -> None:
            for commit in commits:
                commit()

        return commit_all

    targets = sub.visible_targets
    positions = {
        node.varattno
        for node in ex.walk(conjunct)
        if isinstance(node, ex.Var) and node.varno == source
    }
    grouped = sub.has_aggs or bool(sub.group_clause)
    for position in positions:
        if position >= len(targets):
            return None
        expr = targets[position].expr
        if ex.contains_sublink(expr) or ex.contains_aggref(expr):
            return None
        if grouped and expr not in sub.group_clause:
            # Below an aggregation only group-key filters may sink.
            return None

    mapped = _substitute(conjunct, source, targets)

    def commit() -> None:
        sub.jointree.quals = (
            mapped
            if sub.jointree.quals is None
            else ex.BoolOpExpr("and", (sub.jointree.quals, mapped))
        )

    return commit


def _substitute(conjunct: ex.Expr, source: int, targets) -> ex.Expr:
    def visit(node: ex.Expr) -> Optional[ex.Expr]:
        if isinstance(node, ex.Var) and node.levelsup == 0 and node.varno == source:
            return targets[node.varattno].expr
        return None

    return ex.transform(conjunct, visit)
