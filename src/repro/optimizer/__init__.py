"""Rule-based logical optimizer for analyzed/rewritten query trees.

The paper's performance argument (§VI) assumes the host DBMS simplifies
the rewritten query ``q+`` before executing it; this package reproduces
that rewrite/optimization phase for the repro's pluggable backends.  It
runs between the provenance rewriter and plan/deparse, so both the Python
executor and the SQLite backend receive the simplified tree.

Rules: subquery pull-up, projection pruning, predicate pushdown, constant
folding + trivial-pass cleanup.  See :mod:`repro.optimizer.driver`.
"""

from repro.optimizer.driver import (
    MAX_PASSES,
    RULE_NAMES,
    optimize_query_tree,
)
from repro.optimizer.explain import format_query_tree
from repro.optimizer.folding import cleanup_node, fold_node
from repro.optimizer.pruning import prune_query_tree
from repro.optimizer.pullup import normalize_jointree, pull_up_node
from repro.optimizer.pushdown import push_down_node

__all__ = [
    "MAX_PASSES",
    "RULE_NAMES",
    "optimize_query_tree",
    "format_query_tree",
    "cleanup_node",
    "fold_node",
    "normalize_jointree",
    "prune_query_tree",
    "pull_up_node",
    "push_down_node",
]
