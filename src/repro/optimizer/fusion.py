"""Aggregation-join fusion: share the core of ``q_agg ⋈ d+``.

The aggregation rewrite (paper rule R5) joins the original aggregation
``q_agg`` with a stripped duplicate ``d+`` of its own FROM/WHERE on
null-safe group-key equality.  Planned naively, the join below the
aggregation is computed **twice** — once feeding the aggregate, once
producing the provenance rows.  A cost-based DBMS optimizer shares such
common subplans; this rule reproduces that:

* detect an inner join of two subquery range table entries ``A`` (the
  aggregating side) and ``B`` (a simple SPJ) whose join condition is
  exactly the rewriter's ``A.g_i <=> B.g_i`` group-key pattern and whose
  FROM/WHERE cores are *bag-equivalent*;
* record the pair on the query node (``Query.agg_share``); the planner
  then evaluates the shared core once, aggregates it, and hash-joins the
  aggregate back onto the materialized core rows.

Bag equivalence is checked structurally and strictly: identical join
trees, identical quals, identical relations, and subquery RTEs that may
differ only by *appended output columns* (the witness rewrite's R1-style
extension, which never changes row multiplicity).  Anything that does
change multiplicity — sublink provenance joins, rewritten nested
aggregations, rewritten set operations — fails the strict comparison and
the pair is left unfused, falling back to the (correct) double
evaluation.

The hint is physical only: the tree still deparses to the ordinary SQL
join, so execution backends with their own optimizers (SQLite) are
unaffected.
"""

from __future__ import annotations

from typing import Optional

from repro.analyzer import expressions as ex
from repro.analyzer.query_tree import (
    JoinTreeExpr,
    JoinTreeNode,
    Query,
    RangeTableEntry,
    RangeTableRef,
    RTEKind,
)
from repro.optimizer.treeutils import (
    exprs_equal,
    _jointrees_equal,
)


def fuse_agg_join(query: Query) -> bool:
    """Mark every fusable aggregation-join pair of one query node."""
    if query.set_operations is not None:
        return False
    taken = {index for pair in query.agg_shares for index in pair[:2]}
    changed = False
    for join in _inner_pair_joins(query.jointree.items):
        assert isinstance(join.left, RangeTableRef)
        assert isinstance(join.right, RangeTableRef)
        if {join.left.rtindex, join.right.rtindex} & taken:
            continue
        for a_index, b_index in (
            (join.left.rtindex, join.right.rtindex),
            (join.right.rtindex, join.left.rtindex),
        ):
            positions = _match_pair(query, join, a_index, b_index)
            if positions is not None:
                query.agg_shares.append((a_index, b_index, positions))
                taken.update((a_index, b_index))
                changed = True
                break
    return changed


def _inner_pair_joins(items: list[JoinTreeNode]) -> list[JoinTreeExpr]:
    """All inner joins whose both children are range table leaves."""
    found: list[JoinTreeExpr] = []
    stack: list[JoinTreeNode] = list(items)
    while stack:
        node = stack.pop()
        if isinstance(node, JoinTreeExpr):
            if (
                node.join_type in ("inner", "cross")
                and isinstance(node.left, RangeTableRef)
                and isinstance(node.right, RangeTableRef)
            ):
                found.append(node)
            stack.append(node.left)
            stack.append(node.right)
    return found


def _match_pair(
    query: Query, join: JoinTreeExpr, a_index: int, b_index: int
) -> Optional[tuple[int, ...]]:
    """A-side group-key output positions when (A, B) is a fusable pair."""
    a_rte = query.range_table[a_index]
    b_rte = query.range_table[b_index]
    if a_rte.kind is not RTEKind.SUBQUERY or b_rte.kind is not RTEKind.SUBQUERY:
        return None
    agg = a_rte.subquery
    prov = b_rte.subquery
    if agg is None or prov is None:
        return None
    if not (agg.has_aggs or agg.group_clause):
        return None
    if (
        prov.has_aggs
        or prov.group_clause
        or prov.having is not None
        or prov.distinct
        or prov.set_operations is not None
        or prov.limit_count is not None
        or prov.limit_offset is not None
        or prov.sort_clause
        or any(t.resjunk for t in prov.target_list)
    ):
        return None
    group_count = len(agg.group_clause)
    if len(prov.target_list) < group_count:
        return None
    # B's leading outputs must be the grouping expressions.
    for i in range(group_count):
        if not exprs_equal(prov.target_list[i].expr, agg.group_clause[i]):
            return None
    positions = _key_positions(join.quals, a_index, b_index, group_count)
    if positions is None:
        return None
    if not _same_row_source(agg, prov):
        return None
    return positions


def _key_positions(
    quals: Optional[ex.Expr], a_index: int, b_index: int, group_count: int
) -> Optional[tuple[int, ...]]:
    """Decode ``A.x_i <=> B.i`` conjuncts; A-side positions indexed by i."""
    if quals is None:
        return () if group_count == 0 else None
    conjuncts = _split_and(quals)
    if len(conjuncts) != group_count:
        return None
    positions: dict[int, int] = {}
    for conjunct in conjuncts:
        if not (isinstance(conjunct, ex.OpExpr) and conjunct.op == "<=>"):
            return None
        left, right = conjunct.args
        if not (isinstance(left, ex.Var) and isinstance(right, ex.Var)):
            return None
        if left.levelsup or right.levelsup:
            return None
        if left.varno == a_index and right.varno == b_index:
            a_var, b_var = left, right
        elif left.varno == b_index and right.varno == a_index:
            a_var, b_var = right, left
        else:
            return None
        if b_var.varattno in positions or b_var.varattno >= group_count:
            return None
        positions[b_var.varattno] = a_var.varattno
    return tuple(positions[i] for i in range(group_count))


def _split_and(expr: ex.Expr) -> list[ex.Expr]:
    if isinstance(expr, ex.BoolOpExpr) and expr.op == "and":
        result: list[ex.Expr] = []
        for arg in expr.args:
            result.extend(_split_and(arg))
        return result
    return [expr]


# ---------------------------------------------------------------------------
# Bag-equivalence of the two cores
# ---------------------------------------------------------------------------


def _same_row_source(agg: Query, prov: Query) -> bool:
    """True when A's and B's FROM/WHERE produce the same bag of rows."""
    if len(agg.range_table) != len(prov.range_table):
        return False
    if not _jointrees_equal(agg.jointree, prov.jointree):
        return False
    return all(
        _rte_extends(base, ext)
        for base, ext in zip(agg.range_table, prov.range_table)
    )


def _rte_extends(base: RangeTableEntry, ext: RangeTableEntry) -> bool:
    if base.kind is not ext.kind or base.alias != ext.alias:
        return False
    if base.kind is RTEKind.RELATION:
        return base.relation_name == ext.relation_name
    if base.subquery is None or ext.subquery is None:
        return False
    return _query_extends(base.subquery, ext.subquery)


def _query_extends(base: Query, ext: Query) -> bool:
    """``ext`` equals ``base`` except for output columns appended at the
    end — the only rewrite shape that preserves row multiplicity."""
    if (
        base.distinct != ext.distinct
        or base.has_aggs != ext.has_aggs
        or len(base.group_clause) != len(ext.group_clause)
        or base.set_operations is not None
        or ext.set_operations is not None
        or base.sort_clause
        or ext.sort_clause
        or len(base.target_list) > len(ext.target_list)
    ):
        return False
    for ta, tb in zip(base.target_list, ext.target_list):
        if ta.resjunk != tb.resjunk or not exprs_equal(ta.expr, tb.expr):
            return False
    if any(t.resjunk for t in ext.target_list[len(base.target_list):]):
        return False
    if not all(
        exprs_equal(a, b)
        for a, b in zip(base.group_clause, ext.group_clause)
    ):
        return False
    if not exprs_equal(base.having, ext.having):
        return False
    if not exprs_equal(base.limit_count, ext.limit_count):
        return False
    if not exprs_equal(base.limit_offset, ext.limit_offset):
        return False
    if len(base.range_table) != len(ext.range_table):
        return False
    if not _jointrees_equal(base.jointree, ext.jointree):
        return False
    return all(
        _rte_extends(a, b)
        for a, b in zip(base.range_table, ext.range_table)
    )
