"""Constant folding and trivial-pass cleanup (optimizer rule 4).

Four independent simplifications, each sound under the engine's 3-valued
logic and bag semantics:

* **constant folding** — any expression whose leaves are all constants is
  evaluated once at optimize time with the executor's own scalar
  implementations (so folded semantics are exactly runtime semantics);
  the rewriter- and TPC-H-heavy ``DATE '…' + INTERVAL '1' YEAR`` shapes
  collapse to plain date literals, which also widens what the SQLite
  dialect can translate;
* **boolean shortening** — ``TRUE``/``FALSE`` absorption in AND/OR chains
  (NULL-safe: ``FALSE AND NULL`` is ``FALSE``, ``TRUE OR NULL`` is
  ``TRUE``), ``NOT`` of a constant, constant-condition CASE arms;
* **WHERE TRUE / ON TRUE removal** — a qual that folded to ``TRUE`` is
  dropped (inner-join ``ON TRUE`` conditions included);
* **subquery ORDER BY / DISTINCT cleanup** — an ORDER BY without LIMIT in
  a non-root query node is a no-op under bag semantics and is dropped
  (with its resjunk carrier columns); a DISTINCT on the direct operand of
  a set-semantics set operation is redundant (the operation deduplicates
  anyway) and is cleared.
"""

from __future__ import annotations

import datetime
from typing import Optional

from repro.datatypes import Interval, SQLType
from repro.analyzer import expressions as ex
from repro.analyzer.query_tree import (
    JoinTreeExpr,
    JoinTreeNode,
    Query,
    RTEKind,
    SetOpNode,
    SetOpRangeRef,
)

BOOL = SQLType.BOOLEAN

#: Value types the deparser can render back to SQL literals; folding never
#: produces a constant it could not ship to an execution backend.
_LITERAL_TYPES = (bool, int, float, str, datetime.date, Interval)

#: Functions excluded from folding: provenance-polynomial primitives mint
#: tuple variables / polynomial values that have no SQL literal form.
_UNFOLDABLE_FUNCS = ("perm_poly_",)


class _FoldState:
    __slots__ = ("changed",)

    def __init__(self) -> None:
        self.changed = False


def fold_node(query: Query) -> bool:
    """Fold constants in every expression owned by ``query``; drop quals
    that folded to TRUE.  Returns True when anything changed."""
    state = _FoldState()

    def fold(expr: ex.Expr) -> ex.Expr:
        folded = _fold_expr(expr)
        if folded is not expr:
            state.changed = True
        return folded

    for target in query.target_list:
        target.expr = fold(target.expr)
    if query.jointree.quals is not None:
        quals = fold(query.jointree.quals)
        query.jointree.quals = None if _is_true(quals) else quals
        if query.jointree.quals is None:
            state.changed = True
    _fold_jointree(query.jointree.items, fold)
    query.group_clause = [fold(g) for g in query.group_clause]
    if query.having is not None:
        query.having = fold(query.having)
    return state.changed


def _fold_jointree(items: list[JoinTreeNode], fold) -> None:
    stack: list[JoinTreeNode] = list(items)
    while stack:
        node = stack.pop()
        if isinstance(node, JoinTreeExpr):
            if node.quals is not None:
                quals = fold(node.quals)
                # ON TRUE on an *inner* join is a cross join; outer joins
                # keep the constant (it decides null extension).
                if node.join_type in ("inner", "cross") and _is_true(quals):
                    node.quals = None
                else:
                    node.quals = quals
            stack.append(node.left)
            stack.append(node.right)


def cleanup_node(query: Query, is_root: bool) -> bool:
    """Trivial-pass cleanup on one query node (ORDER BY / junk / DISTINCT
    rules that need the root/non-root distinction)."""
    changed = False
    if not is_root and query.sort_clause and query.limit_count is None \
            and query.limit_offset is None:
        # Bag semantics: a subquery's ordering is invisible to its parent
        # unless a LIMIT consumes it.
        query.sort_clause = []
        changed = True
    if not query.sort_clause and any(t.resjunk for t in query.target_list):
        # resjunk entries exist only to feed ORDER BY (planner slices them
        # away); with the sort gone they are dead weight.  The root keeps
        # its junk only while a sort references it, so this also fires for
        # user-level queries whose sort was subsumed elsewhere.
        query.target_list = [t for t in query.target_list if not t.resjunk]
        changed = True
    changed |= _drop_redundant_distinct(query)
    return changed


def _drop_redundant_distinct(query: Query) -> bool:
    """DISTINCT on the direct operand of a set-semantics set operation is
    redundant: UNION/INTERSECT/EXCEPT (without ALL) deduplicate their
    result and ignore input multiplicities."""
    if query.set_operations is None:
        return False
    changed = False
    stack = [query.set_operations]
    while stack:
        node = stack.pop()
        if isinstance(node, SetOpRangeRef):
            continue
        assert isinstance(node, SetOpNode)
        if not node.all:
            for child in (node.left, node.right):
                if isinstance(child, SetOpRangeRef):
                    rte = query.range_table[child.rtindex]
                    sub = rte.subquery
                    if (
                        sub is not None
                        and rte.kind is RTEKind.SUBQUERY
                        and sub.distinct
                    ):
                        sub.distinct = False
                        changed = True
        stack.append(node.left)
        stack.append(node.right)
    return changed


# ---------------------------------------------------------------------------
# Expression folding
# ---------------------------------------------------------------------------


def _fold_expr(expr: ex.Expr) -> ex.Expr:
    children = expr.children()
    if children:
        new_children = [_fold_expr(c) for c in children]
        if any(new is not old for new, old in zip(new_children, children)):
            expr = ex.rebuild_with_children(expr, new_children)
    if isinstance(expr, ex.BoolOpExpr):
        return _shorten_bool(expr)
    if isinstance(expr, ex.CaseExpr):
        return _shorten_case(expr)
    if isinstance(expr, (ex.Var, ex.Const, ex.Aggref, ex.SubLink)):
        return expr
    # Children are already folded, so "all children constant" suffices:
    # constant subtrees collapse bottom-up one node at a time.
    if expr.children() and all(
        isinstance(c, ex.Const) for c in expr.children()
    ) and _foldable(expr):
        folded = _evaluate_const(expr)
        if folded is not None:
            return folded
    return expr


def _foldable(expr: ex.Expr) -> bool:
    if isinstance(expr, ex.FuncExpr) and expr.name.startswith(_UNFOLDABLE_FUNCS):
        return False
    if isinstance(expr, ex.SubLink):
        return False
    return True


def _evaluate_const(expr: ex.Expr) -> Optional[ex.Const]:
    """Evaluate a variable-free expression with the executor's own scalar
    semantics; None when evaluation fails (the runtime error is preserved
    by keeping the expression) or produces a non-literal value."""
    from repro.executor.context import ExecContext
    from repro.executor.expr_eval import ExprCompiler

    try:
        value = ExprCompiler({}).compile(expr)((), ExecContext())
    except Exception:
        return None
    if value is not None and not isinstance(value, _LITERAL_TYPES):
        return None
    return ex.Const(value, expr.type)


def _is_true(expr: ex.Expr) -> bool:
    return isinstance(expr, ex.Const) and expr.value is True


def _is_false(expr: ex.Expr) -> bool:
    return isinstance(expr, ex.Const) and expr.value is False


def _is_null_const(expr: ex.Expr) -> bool:
    return isinstance(expr, ex.Const) and expr.value is None


def _shorten_bool(expr: ex.BoolOpExpr) -> ex.Expr:
    args = list(expr.args)
    if expr.op == "not":
        arg = args[0]
        if isinstance(arg, ex.Const):
            if arg.value is None:
                return ex.Const(None, BOOL)
            return ex.Const(not arg.value, BOOL)
        return expr
    if expr.op == "and":
        if any(_is_false(a) for a in args):
            return ex.Const(False, BOOL)
        keep = [a for a in args if not _is_true(a)]
        if not keep:
            return ex.Const(True, BOOL)
        if all(_is_null_const(a) for a in keep):
            return ex.Const(None, BOOL)
    else:  # or
        if any(_is_true(a) for a in args):
            return ex.Const(True, BOOL)
        keep = [a for a in args if not _is_false(a)]
        if not keep:
            return ex.Const(False, BOOL)
        if all(_is_null_const(a) for a in keep):
            return ex.Const(None, BOOL)
    if len(keep) == 1:
        return keep[0]
    if len(keep) != len(args):
        return ex.BoolOpExpr(expr.op, tuple(keep))
    return expr


def _shorten_case(expr: ex.CaseExpr) -> ex.Expr:
    whens: list[tuple[ex.Expr, ex.Expr]] = []
    for cond, result in expr.whens:
        if _is_false(cond) or _is_null_const(cond):
            continue  # arm can never fire
        if _is_true(cond) and not whens:
            return result  # first live arm always fires
        whens.append((cond, result))
        if _is_true(cond):
            break  # later arms unreachable
    if len(whens) == len(expr.whens):
        return expr
    if not whens:
        return expr.default if expr.default is not None \
            else ex.Const(None, expr.type)
    return ex.CaseExpr(tuple(whens), expr.default, expr.type)
