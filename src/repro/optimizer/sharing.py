"""Common-subplan detection (optimizer rule 5).

The provenance rewrite duplicates whole subqueries: the filtering sublink
and its rewritten provenance copy, the inputs of ``q_agg`` inside the
stripped duplicate ``d``, TPC-H Q15's twice-inlined revenue view.  A
cost-based DBMS shares such common subexpressions with a spool; here the
optimizer marks every *closed* (uncorrelated) subquery that appears
structurally identical more than once in the statement, and the planner
plans one materialized instance per group.

Runs once, **after** the rule fixpoint: earlier rules (pruning in
particular) specialize each copy to its context, and marking must reflect
the final trees — two copies that converged are guaranteed to stay equal
because no further rewrites run.  The planner still verifies structural
equality before reusing a plan, so the flag is purely an opt-in.
"""

from __future__ import annotations

from repro.analyzer import expressions as ex
from repro.analyzer.query_tree import Query, RTEKind
from repro.optimizer.treeutils import (
    level_exprs,
    queries_structurally_equal,
)


def mark_shared_subplans(root: Query) -> bool:
    """Flag closed subqueries occurring (structurally) more than once."""
    from repro.analyzer.analyzer import query_references_outer

    candidates: list[Query] = []

    def collect(query: Query) -> None:
        for rte in query.range_table:
            if rte.kind is RTEKind.SUBQUERY and rte.subquery is not None:
                if not query_references_outer(rte.subquery):
                    candidates.append(rte.subquery)
                collect(rte.subquery)
        for expr in level_exprs(query):
            for node in ex.walk(expr):
                if isinstance(node, ex.SubLink):
                    if not node.correlated and not query_references_outer(
                        node.subquery
                    ):
                        candidates.append(node.subquery)
                    collect(node.subquery)

    collect(root)

    changed = False
    buckets: dict[tuple, list[Query]] = {}
    for query in candidates:
        signature = (
            query.node_class().value,
            len(query.target_list),
            len(query.range_table),
            tuple(query.output_columns()),
        )
        buckets.setdefault(signature, []).append(query)
    for group in buckets.values():
        if len(group) < 2:
            continue
        for i, query in enumerate(group):
            if query.share_candidate:
                continue
            for other in group[:i] + group[i + 1:]:
                if other is not query and queries_structurally_equal(
                    query, other
                ):
                    query.share_candidate = True
                    changed = True
                    break
    return changed
