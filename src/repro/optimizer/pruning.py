"""Projection pruning (optimizer rule 2).

Rewritten provenance queries drag every provenance attribute of every
base relation through every query level, and the original query's side
(``q_agg`` in the aggregation rewrite, ``q_set`` in the set-operation
rewrite) frequently computes columns its parent never reads.  This pass
computes required-column sets top-down and

* **shrinks subquery target lists** — visible outputs the parent does not
  reference are dropped (or demoted to resjunk when their own ORDER BY
  still needs them), with every parent reference renumbered;
* **annotates base-relation scans** — each relation range table entry
  gets a ``used_attnos`` hint naming the columns actually referenced; the
  planner narrows the corresponding ``SeqScan`` so joins concatenate
  short tuples instead of full base rows.  The hint is physical only —
  the deparser ignores it, and Var numbering stays in terms of the
  relation's full schema.  The cost model consumes it too: a narrowed
  scan's output width feeds the planner's column- vs row-backed operator
  choices, while its per-column statistics scope stays keyed by the full
  schema so selectivity estimation is unaffected by the narrowing.

Safety rules: a DISTINCT subquery's target list is never shrunk
(deduplication over fewer columns changes the result), set-operation
outputs are never shrunk (operand multiplicity/duplicate semantics depend
on the full row), and the root query keeps its full output.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import replace as _dc_replace
from typing import Optional

from repro.datatypes import SQLType
from repro.analyzer import expressions as ex
from repro.analyzer.query_tree import Query, RangeTableEntry, RTEKind
from repro.optimizer.treeutils import (
    level_exprs,
    remap_level_vars,
    visit_level_vars,
)

#: old visible position -> new visible position for a shrunk target list
_Mapping = dict[int, int]


def prune_query_tree(root: Query) -> bool:
    """Run projection pruning over the whole tree; returns True on change."""
    changed, _ = _prune(root, required=None)
    return changed


def _prune(query: Query, required: Optional[set[int]]) -> tuple[bool, Optional[_Mapping]]:
    changed = False
    mapping: Optional[_Mapping] = None

    if query.set_operations is not None:
        # Set-operation node: outputs stay; prune inside each operand.
        for rte in query.range_table:
            if rte.kind is RTEKind.SUBQUERY and rte.subquery is not None:
                sub_changed, _ = _prune(rte.subquery, required=None)
                changed |= sub_changed
        return changed, None

    if required is not None:
        shrunk, mapping = _shrink_targets(query, required)
        changed |= shrunk

    # Sublink subqueries: internal pruning only (their single output
    # column is the sublink's value and always required).
    for expr in level_exprs(query):
        for node in ex.walk(expr):
            if isinstance(node, ex.SubLink):
                sub_changed, _ = _prune(node.subquery, required=None)
                changed |= sub_changed

    # Per-RTE usage, including correlated references from sublink bodies.
    usage: dict[int, set[int]] = defaultdict(set)
    visit_level_vars(query, lambda var: usage[var.varno].add(var.varattno))

    for rtindex, rte in enumerate(query.range_table):
        used = usage.get(rtindex, set())
        if rte.kind is RTEKind.RELATION:
            hint = frozenset(used) if len(used) < rte.width() else None
            if rte.used_attnos != hint:
                rte.used_attnos = hint
                changed = True
            continue
        sub = rte.subquery
        if sub is None:
            continue
        if any(rtindex in pair[:2] for pair in query.agg_shares):
            # Fused pair: left completely untouched.  The fused planner
            # compiles the aggregate side's Vars against the provenance
            # side's core layout, so even internal shrinking (which would
            # renumber one side's Vars but not the other's) must not run.
            continue
        if sub.set_operations is not None or sub.distinct:
            sub_changed, _ = _prune(sub, required=None)
            changed |= sub_changed
            continue
        sub_changed, sub_mapping = _prune(sub, required=set(used))
        changed |= sub_changed
        if sub_mapping is not None:
            _apply_output_mapping(query, rtindex, rte, sub, sub_mapping)
    return changed, mapping


def _shrink_targets(query: Query, required: set[int]) -> tuple[bool, Optional[_Mapping]]:
    """Drop/demote visible targets the parent does not need.

    Returns (changed, mapping) where mapping renumbers surviving visible
    positions; ``None`` mapping means the output layout is unchanged.
    """
    if query.distinct or query.set_operations is not None:
        return False, None
    visible = [i for i, t in enumerate(query.target_list) if not t.resjunk]
    if all(pos in required for pos in range(len(visible))):
        return False, None

    sort_targets = {clause.tlist_index for clause in query.sort_clause}
    keep: list[int] = []  # tlist indexes surviving (visible or junk)
    mapping: _Mapping = {}
    new_visible = 0
    for tlist_index, target in enumerate(query.target_list):
        if target.resjunk:
            keep.append(tlist_index)
            continue
        position = visible.index(tlist_index)
        if position in required:
            mapping[position] = new_visible
            new_visible += 1
            keep.append(tlist_index)
        elif tlist_index in sort_targets:
            # Still feeds this query's ORDER BY: keep it, hidden.
            target.resjunk = True
            keep.append(tlist_index)
        # else: dropped entirely

    if new_visible == 0:
        # Parent reads nothing (pure cardinality input): keep one cheap
        # visible column so the node stays a valid SELECT.  A grand
        # aggregate must keep an aggregate in its target list — the
        # ``has_aggs`` flag is tree metadata the deparser cannot render,
        # and ``SELECT 1 FROM t`` has different cardinality than
        # ``SELECT count(*) FROM t``.
        first = visible[0]
        target = query.target_list[first]
        if query.has_aggs and not query.group_clause:
            target.expr = ex.Aggref(
                "count", None, SQLType.INTEGER, star=True
            )
        else:
            target.expr = ex.Const(1, SQLType.INTEGER)
        target.resjunk = False
        keep = sorted(set(keep) | {first})

    renumber = {old: new for new, old in enumerate(keep)}
    query.target_list = [query.target_list[i] for i in keep]
    for clause in query.sort_clause:
        clause.tlist_index = renumber[clause.tlist_index]
    return True, mapping


def _apply_output_mapping(
    query: Query,
    rtindex: int,
    rte: RangeTableEntry,
    sub: Query,
    mapping: _Mapping,
) -> None:
    """Renumber parent references into a shrunk subquery RTE."""
    rte.column_names = list(sub.output_columns())
    rte.column_types = list(sub.output_types())

    def remap(var: ex.Var) -> Optional[ex.Expr]:
        if var.varno != rtindex:
            return None
        new_attno = mapping[var.varattno]
        if new_attno == var.varattno:
            return None
        return _dc_replace(var, varattno=new_attno)

    remap_level_vars(query, remap)
