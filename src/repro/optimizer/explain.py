"""Readable rendering of logical query trees (for ``explain`` output).

The physical plan explains *how* a query runs; this formatter shows
*what* the planner was given — which is where the optimizer's work is
visible: pulled-up join trees, shrunk target lists, narrowed scans,
pushed-down predicates.
"""

from __future__ import annotations

from repro.analyzer.query_tree import (
    JoinTreeExpr,
    JoinTreeNode,
    Query,
    RangeTableRef,
    RTEKind,
    SetOpNode,
    SetOpTreeNode,
)


def format_query_tree(query: Query, indent: int = 0) -> str:
    """Indented, information-dense text form of a logical query tree."""
    return "\n".join(_format(query, indent))


def _format(query: Query, indent: int) -> list[str]:
    pad = "  " * indent
    lines: list[str] = []
    flags = []
    if query.distinct:
        flags.append("DISTINCT")
    if query.limit_count is not None or query.limit_offset is not None:
        flags.append("LIMIT")
    suffix = f" [{' '.join(flags)}]" if flags else ""
    lines.append(f"{pad}Query({query.node_class().value}){suffix}")
    for agg_index, prov_index, positions in query.agg_shares:
        lines.append(
            f"{pad}  fused agg pair: ${agg_index} ⋈ ${prov_index} "
            f"on {len(positions)} group key(s), shared core"
        )

    rendered_targets = ", ".join(
        f"{t.name}={t.expr}" + ("/junk" if t.resjunk else "")
        for t in query.target_list
    )
    lines.append(f"{pad}  targets: {rendered_targets}")

    if query.set_operations is not None:
        lines.append(f"{pad}  setop:")
        lines.extend(_format_setop(query.set_operations, query, indent + 2))
    elif query.jointree.items:
        lines.append(f"{pad}  from:")
        for item in query.jointree.items:
            lines.extend(_format_jointree(item, query, indent + 2))
    if query.jointree.quals is not None:
        lines.append(f"{pad}  where: {query.jointree.quals}")
    if query.group_clause:
        grouped = ", ".join(str(g) for g in query.group_clause)
        lines.append(f"{pad}  group by: {grouped}")
    if query.having is not None:
        lines.append(f"{pad}  having: {query.having}")
    if query.sort_clause:
        order = ", ".join(
            f"#{c.tlist_index}{' desc' if c.descending else ''}"
            for c in query.sort_clause
        )
        lines.append(f"{pad}  order by: {order}")
    return lines


def _format_rte(rtindex: int, query: Query, indent: int) -> list[str]:
    pad = "  " * indent
    rte = query.range_table[rtindex]
    if rte.kind is RTEKind.RELATION:
        if rte.used_attnos is not None:
            kept = ",".join(
                rte.column_names[i] for i in sorted(rte.used_attnos)
            )
            columns = f" cols[{kept or '-'}]"
        else:
            columns = ""
        return [f"{pad}${rtindex} rel {rte.relation_name} as {rte.alias}{columns}"]
    shared = " [shared subplan]" if rte.subquery.share_candidate else ""
    lines = [f"{pad}${rtindex} subquery as {rte.alias}:{shared}"]
    lines.extend(_format(rte.subquery, indent + 1))
    return lines


def _format_jointree(node: JoinTreeNode, query: Query, indent: int) -> list[str]:
    if isinstance(node, RangeTableRef):
        return _format_rte(node.rtindex, query, indent)
    assert isinstance(node, JoinTreeExpr)
    pad = "  " * indent
    condition = f" on {node.quals}" if node.quals is not None else ""
    lines = [f"{pad}{node.join_type} join{condition}"]
    lines.extend(_format_jointree(node.left, query, indent + 1))
    lines.extend(_format_jointree(node.right, query, indent + 1))
    return lines


def _format_setop(node: SetOpTreeNode, query: Query, indent: int) -> list[str]:
    pad = "  " * indent
    if isinstance(node, SetOpNode):
        keyword = node.op + (" all" if node.all else "")
        lines = [f"{pad}{keyword}"]
        lines.extend(_format_setop(node.left, query, indent + 1))
        lines.extend(_format_setop(node.right, query, indent + 1))
        return lines
    return _format_rte(node.rtindex, query, indent)
