"""Subquery pull-up (optimizer rule 1) and join-tree normalization.

The provenance rewriter builds deeply nested scaffolding: every rewrite
case wraps its inputs in fresh subquery range table entries, so the
rewritten ``q+`` reaches the planner as a tower of single-purpose SELECTs
whose only job is to re-export columns.  A DBMS optimizer collapses these
before planning (the paper's §VI performance argument leans on exactly
this); these rules reproduce that collapse on the logical query tree:

* :func:`normalize_jointree` flattens top-level *inner* joins into the
  FROM item list with their ON conditions merged into WHERE — the
  canonical "implicit cross product + quals" form the planner and the
  other rules work on;
* :func:`pull_up_node` inlines simple SPJ subqueries (no aggregation, no
  set operation, no DISTINCT/LIMIT/ORDER BY) into their parent: the
  subquery's range table entries join the parent's range table, parent
  references to the subquery's outputs are substituted by the defining
  expressions, the subquery's join tree is spliced into the parent's, and
  its WHERE clause merges into the nearest legal qual holder.

Qual placement and null-extension safety:

* a subquery in a WHERE-reachable position (top-level FROM item, or
  reachable through inner joins / preserved sides of outer joins) may
  merge its quals into the parent WHERE — filtering a preserved input
  before or after the join is equivalent;
* a subquery on the null-producing side of an outer join merges its quals
  into that join's ON condition (``L LEFT JOIN (σ_w R) ON c  ≡
  L LEFT JOIN R ON (c AND w)``), and is only pulled up when every
  referenced output is a plain column reference — a non-strict output
  expression (e.g. a constant) would survive null extension where the
  subquery's output column becomes NULL;
* under a FULL join neither placement is legal, so only qual-free
  subqueries are pulled there.
"""

from __future__ import annotations

from dataclasses import replace as _dc_replace
from typing import Callable, Iterator, Optional, Union

from repro.analyzer import expressions as ex
from repro.analyzer.query_tree import (
    JoinTreeExpr,
    JoinTreeNode,
    Query,
    RangeTableEntry,
    RangeTableRef,
    RTEKind,
)
from repro.optimizer.treeutils import (
    compact_range_table,
    lift_vars,
    remap_level_vars,
)

#: Sink for a pulled subquery's WHERE conjuncts: the parent's WHERE, a
#: specific join node's ON condition, or nowhere (FULL JOIN operands).
_Sink = Union[str, JoinTreeExpr, None]
_WHERE: _Sink = "where"

_Replace = Callable[[JoinTreeNode], None]


# ---------------------------------------------------------------------------
# Join-tree normalization
# ---------------------------------------------------------------------------


def normalize_jointree(query: Query) -> bool:
    """Flatten top-level inner joins into FROM items + WHERE conjuncts."""
    if query.set_operations is not None:
        return False
    fused = {frozenset(pair[:2]) for pair in query.agg_shares} or None
    items: list[JoinTreeNode] = []
    conjuncts: list[ex.Expr] = []
    changed = False
    for item in query.jointree.items:
        changed |= _flatten_item(item, items, conjuncts, fused)
    if not changed:
        return False
    query.jointree.items = items
    if conjuncts:
        existing = (
            [query.jointree.quals] if query.jointree.quals is not None else []
        )
        query.jointree.quals = _conjoin(conjuncts + existing)
    return True


def _flatten_item(
    node: JoinTreeNode,
    items: list[JoinTreeNode],
    conjuncts: list[ex.Expr],
    fused: Optional[set[int]],
) -> bool:
    if (
        isinstance(node, JoinTreeExpr)
        and node.join_type in ("inner", "cross")
        and not _is_fused_pair(node, fused)
    ):
        _flatten_item(node.left, items, conjuncts, fused)
        _flatten_item(node.right, items, conjuncts, fused)
        if node.quals is not None:
            conjuncts.append(node.quals)
        return True
    items.append(node)
    return False


def _is_fused_pair(
    node: JoinTreeExpr, fused: Optional[set[frozenset[int]]]
) -> bool:
    """The aggregation-fusion join node stays intact: the planner consumes
    it as one shared-core unit, quals and all."""
    return (
        fused is not None
        and isinstance(node.left, RangeTableRef)
        and isinstance(node.right, RangeTableRef)
        and frozenset((node.left.rtindex, node.right.rtindex)) in fused
    )


def _conjoin(conjuncts: list[ex.Expr]) -> ex.Expr:
    if len(conjuncts) == 1:
        return conjuncts[0]
    return ex.BoolOpExpr("and", tuple(conjuncts))


# ---------------------------------------------------------------------------
# Pull-up
# ---------------------------------------------------------------------------


def pull_up_node(query: Query) -> bool:
    """Inline every pullable SPJ subquery of one (non-setop) query node.

    Repeats until no candidate remains, so a chain of nested wrappers
    collapses in a single call once inner levels were processed first.
    """
    if query.set_operations is not None:
        return False
    changed = False
    while _pull_one(query):
        changed = True
    return changed


def _pull_one(query: Query) -> bool:
    fused = {index for pair in query.agg_shares for index in pair[:2]}
    for rtindex, replace, sink, nullable in _leaf_positions(query):
        if rtindex in fused:
            # Fusion pair stays as subqueries: the planner shares their core.
            continue
        rte = query.range_table[rtindex]
        if _pullable(query, rte, sink, nullable):
            _inline(query, rtindex, replace, sink)
            return True
    return False


def _leaf_positions(
    query: Query,
) -> Iterator[tuple[int, _Replace, _Sink, bool]]:
    items = query.jointree.items
    for i, item in enumerate(items):

        def replace_item(node: JoinTreeNode, index: int = i) -> None:
            items[index] = node

        yield from _walk_jointree(item, replace_item, _WHERE, False)


def _walk_jointree(
    node: JoinTreeNode, replace: _Replace, sink: _Sink, nullable: bool
) -> Iterator[tuple[int, _Replace, _Sink, bool]]:
    if isinstance(node, RangeTableRef):
        yield node.rtindex, replace, sink, nullable
        return
    join = node
    if join.join_type in ("inner", "cross"):
        left_sink = right_sink = join
        left_nullable = right_nullable = nullable
    elif join.join_type == "left":
        left_sink, left_nullable = sink, nullable
        right_sink, right_nullable = join, True
    elif join.join_type == "right":
        left_sink, left_nullable = join, True
        right_sink, right_nullable = sink, nullable
    else:  # full: no legal qual placement, both sides null-extend
        left_sink = right_sink = None
        left_nullable = right_nullable = True

    def replace_left(new: JoinTreeNode) -> None:
        join.left = new

    def replace_right(new: JoinTreeNode) -> None:
        join.right = new

    yield from _walk_jointree(join.left, replace_left, left_sink, left_nullable)
    yield from _walk_jointree(join.right, replace_right, right_sink, right_nullable)


def _pullable(
    query: Query, rte: RangeTableEntry, sink: _Sink, nullable: bool
) -> bool:
    if rte.kind is not RTEKind.SUBQUERY or rte.subquery is None:
        return False
    sub = rte.subquery
    if (
        sub.set_operations is not None
        or sub.has_aggs
        or sub.group_clause
        or sub.having is not None
        or sub.distinct
        or sub.limit_count is not None
        or sub.limit_offset is not None
        or sub.sort_clause
        or not sub.jointree.items
    ):
        return False
    if any(t.resjunk for t in sub.target_list):
        return False
    if sub.jointree.quals is not None and sink is None:
        # No outer qual holder (FULL JOIN operand): pullable only if the
        # quals can ride inside the spliced subtree on an inner join.
        items = sub.jointree.items
        carries_inside = len(items) >= 2 or (
            isinstance(items[0], JoinTreeExpr)
            and items[0].join_type in ("inner", "cross")
        )
        if not carries_inside:
            return False
    for target in sub.target_list:
        if ex.contains_sublink(target.expr):
            # Substituting would duplicate the sublink's mutable subquery
            # across parent expressions; not worth the bookkeeping.
            return False
        if nullable and not isinstance(target.expr, ex.Var):
            # Non-strict outputs (constants, COALESCE, ...) would survive
            # the null extension the subquery boundary provides.
            return False
    return True


def _inline(query: Query, rtindex: int, replace: _Replace, sink: _Sink) -> None:
    sub = query.range_table[rtindex].subquery
    assert sub is not None
    offset = len(query.range_table)

    _uniquify_aliases(query, sub)

    # Shift the subquery's own-level Vars *and* its join-tree leaves into
    # the parent's numbering (the Var remap descends into sublinks, whose
    # correlated references move with their query level).
    remap_level_vars(
        sub, lambda var: _dc_replace(var, varno=var.varno + offset)
    )
    _shift_jointree_refs(sub.jointree.items, offset)
    query.range_table.extend(sub.range_table)
    # The inlined subquery's fusion pairs move with it (shifted into the
    # parent's numbering; compaction below renumbers them again).
    query.agg_shares.extend(
        (a + offset, b + offset, positions)
        for a, b, positions in sub.agg_shares
    )

    # Substitute parent references to the subquery's outputs, wherever
    # they live (target list, quals, sublink bodies at any depth).
    targets = sub.visible_targets

    def substitute(var: ex.Var) -> Optional[ex.Expr]:
        if var.varno != rtindex:
            return None
        return targets[var.varattno].expr

    remap_level_vars(query, substitute)

    # Splice the subquery's join tree into the parent's.  Its WHERE stays
    # *inside* the spliced subtree whenever there is an inner join to
    # carry it (FROM a, b WHERE w  ≡  a JOIN b ON w) — pushing it out to
    # the sink would turn the subquery's join into a bare cross product.
    spliced = _fold_inner(sub.jointree.items)
    quals = sub.jointree.quals
    if quals is not None and isinstance(spliced, JoinTreeExpr) \
            and spliced.join_type in ("inner", "cross"):
        spliced.join_type = "inner"
        spliced.quals = (
            quals
            if spliced.quals is None
            else ex.BoolOpExpr("and", (spliced.quals, quals))
        )
        quals = None
    replace(spliced)

    # Remaining quals (single-relation subqueries) go to the sink: the
    # parent WHERE in preserved positions, the enclosing join's ON below
    # a null-producing side.
    if quals is not None:
        if sink is _WHERE:
            existing = query.jointree.quals
            query.jointree.quals = (
                quals
                if existing is None
                else ex.BoolOpExpr("and", (existing, quals))
            )
        else:
            assert isinstance(sink, JoinTreeExpr)
            sink.quals = (
                quals
                if sink.quals is None
                else ex.BoolOpExpr("and", (sink.quals, quals))
            )

    compact_range_table(query)


def _shift_jointree_refs(items: list[JoinTreeNode], offset: int) -> None:
    stack: list[JoinTreeNode] = list(items)
    while stack:
        node = stack.pop()
        if isinstance(node, RangeTableRef):
            node.rtindex += offset
        else:
            stack.append(node.left)
            stack.append(node.right)


def _fold_inner(items: list[JoinTreeNode]) -> JoinTreeNode:
    node = items[0]
    for item in items[1:]:
        node = JoinTreeExpr(join_type="inner", left=node, right=item, quals=None)
    return node


def _uniquify_aliases(query: Query, sub: Query) -> None:
    taken = {rte.alias for rte in query.range_table}
    for rte in sub.range_table:
        alias = rte.alias
        if alias in taken:
            counter = 1
            while f"{alias}_{counter}" in taken:
                counter += 1
            rte.alias = f"{alias}_{counter}"
        taken.add(rte.alias)
