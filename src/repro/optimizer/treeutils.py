"""Scope-aware traversal utilities for the logical optimizer.

The optimizer rewrites analyzed :class:`~repro.analyzer.query_tree.Query`
trees in place.  Everything it does — renumbering range tables, inlining
subqueries, shrinking target lists — reduces to one primitive: *replace
every Var that addresses a given query level*, wherever that Var lives.

Scoping rules the traversal encodes (mirroring the analyzer/planner):

* a query's own expressions reference its range table at ``levelsup == 0``;
* a sublink's subquery is one scope level further down: Vars inside it
  reference the enclosing query at ``levelsup == 1`` (and so on
  recursively);
* set-operation *leaf* subqueries are analyzed against the **same** outer
  scopes as the set-operation node itself (no extra level), so correlated
  references pass through them unchanged;
* plain FROM-subquery range table entries are closed scopes (no LATERAL):
  nothing inside them can reference the enclosing query, so traversal
  never descends into them when looking for references to an outer level.
"""

from __future__ import annotations

from dataclasses import replace as _dc_replace
from typing import Callable, Iterator, Optional

from repro.analyzer import expressions as ex
from repro.analyzer.query_tree import (
    FromExpr,
    JoinTreeExpr,
    JoinTreeNode,
    Query,
    RangeTableRef,
    RTEKind,
    setop_leaf_indexes,
)
from repro.errors import PermError

ExprFn = Callable[[ex.Expr], ex.Expr]
VarMapper = Callable[[ex.Var], Optional[ex.Expr]]


# ---------------------------------------------------------------------------
# Level-expression iteration / mutation
# ---------------------------------------------------------------------------


def map_level_exprs(query: Query, fn: ExprFn) -> None:
    """Apply ``fn`` to every expression owned by ``query`` itself, storing
    the result back (target list, WHERE, join conditions, GROUP BY,
    HAVING, LIMIT/OFFSET)."""
    for target in query.target_list:
        target.expr = fn(target.expr)
    if query.jointree.quals is not None:
        query.jointree.quals = fn(query.jointree.quals)
    stack: list[JoinTreeNode] = list(query.jointree.items)
    while stack:
        node = stack.pop()
        if isinstance(node, JoinTreeExpr):
            if node.quals is not None:
                node.quals = fn(node.quals)
            stack.append(node.left)
            stack.append(node.right)
    query.group_clause = [fn(g) for g in query.group_clause]
    if query.having is not None:
        query.having = fn(query.having)
    if query.limit_count is not None:
        query.limit_count = fn(query.limit_count)
    if query.limit_offset is not None:
        query.limit_offset = fn(query.limit_offset)


def level_exprs(query: Query) -> Iterator[ex.Expr]:
    """Read-only iteration over the expressions owned by ``query``."""
    for target in query.target_list:
        yield target.expr
    if query.jointree.quals is not None:
        yield query.jointree.quals
    stack: list[JoinTreeNode] = list(query.jointree.items)
    while stack:
        node = stack.pop()
        if isinstance(node, JoinTreeExpr):
            if node.quals is not None:
                yield node.quals
            stack.append(node.left)
            stack.append(node.right)
    yield from query.group_clause
    if query.having is not None:
        yield query.having
    if query.limit_count is not None:
        yield query.limit_count
    if query.limit_offset is not None:
        yield query.limit_offset


# ---------------------------------------------------------------------------
# Level-var remapping (the optimizer's workhorse)
# ---------------------------------------------------------------------------


def remap_level_vars(query: Query, mapper: VarMapper) -> None:
    """Replace every Var addressing ``query``'s range table.

    ``mapper`` receives each such Var and returns a replacement expression
    or ``None`` to keep it.  The replacement must be phrased *in the frame
    of the replaced Var*: a Var found at ``levelsup == k`` (inside a
    sublink ``k`` levels down) is replaced by
    ``lift_vars(replacement, k)`` — ``mapper`` sees the Var normalized to
    ``levelsup == 0`` and the traversal re-lifts the result.
    """
    _remap_in_query(query, 0, mapper)


def visit_level_vars(query: Query, visit: Callable[[ex.Var], None]) -> None:
    """Call ``visit`` for every Var addressing ``query``'s range table
    (read-only companion of :func:`remap_level_vars`)."""

    def mapper(var: ex.Var) -> Optional[ex.Expr]:
        visit(var)
        return None

    _remap_in_query(query, 0, mapper)


def _remap_in_query(query: Query, depth: int, mapper: VarMapper) -> None:
    if depth > 0 and query.set_operations is not None:
        # Set-operation leaves share the node's outer scopes (no extra
        # level), so references to the target level keep the same depth.
        for rtindex in setop_leaf_indexes(query.set_operations):
            sub = query.range_table[rtindex].subquery
            if sub is not None:
                _remap_in_query(sub, depth, mapper)
    map_level_exprs(query, lambda e: _remap_expr(e, depth, mapper))


def _remap_expr(expr: ex.Expr, depth: int, mapper: VarMapper) -> ex.Expr:
    if isinstance(expr, ex.SubLink):
        # The subquery object is shared and mutated in place; the testexpr
        # lives at this level and is rewritten like any child.
        _remap_in_query(expr.subquery, depth + 1, mapper)
    children = expr.children()
    if children:
        new_children = [_remap_expr(c, depth, mapper) for c in children]
        if any(new is not old for new, old in zip(new_children, children)):
            expr = ex.rebuild_with_children(expr, new_children)
    if isinstance(expr, ex.Var) and expr.levelsup == depth:
        normalized = (
            expr if depth == 0 else _dc_replace(expr, levelsup=0)
        )
        replacement = mapper(normalized)
        if replacement is not None:
            return lift_vars(replacement, depth)
    return expr


def lift_vars(expr: ex.Expr, by: int) -> ex.Expr:
    """Shift every level-0 Var in ``expr`` up by ``by`` scope levels.

    Used when an expression built for one query level is substituted into
    a sublink ``by`` levels below.  Refuses expressions containing
    sublinks — their inner levels would need compensating shifts, and the
    optimizer never substitutes such expressions across levels.
    """
    if by == 0:
        return expr
    if ex.contains_sublink(expr):  # pragma: no cover - guarded by callers
        raise PermError("cannot lift an expression containing sublinks")

    def visit(node: ex.Expr) -> Optional[ex.Expr]:
        if isinstance(node, ex.Var) and node.levelsup == 0:
            return _dc_replace(node, levelsup=by)
        return None

    return ex.transform(expr, visit)


# ---------------------------------------------------------------------------
# Query-node enumeration
# ---------------------------------------------------------------------------


def walk_query_nodes(query: Query) -> Iterator[tuple[Query, bool]]:
    """Yield ``(node, is_root)`` for every query node in the tree,
    children before parents (bottom-up).

    Covers subquery range table entries (including set-operation leaves)
    and sublink subqueries inside expressions.
    """
    yield from _walk(query, is_root=True)


def _walk(query: Query, is_root: bool) -> Iterator[tuple[Query, bool]]:
    for rte in query.range_table:
        if rte.kind is RTEKind.SUBQUERY and rte.subquery is not None:
            yield from _walk(rte.subquery, is_root=False)
    for expr in level_exprs(query):
        for node in ex.walk(expr):
            if isinstance(node, ex.SubLink):
                yield from _walk(node.subquery, is_root=False)
    yield query, is_root


# ---------------------------------------------------------------------------
# Range-table compaction
# ---------------------------------------------------------------------------


def referenced_rtindexes(query: Query) -> set[int]:
    """Range-table indexes reachable from the join tree, the set-operation
    tree, or any Var addressing this query level."""
    used: set[int] = set()
    for item in query.jointree.items:
        used.update(_jointree_indexes(item))
    if query.set_operations is not None:
        used.update(setop_leaf_indexes(query.set_operations))
    visit_level_vars(query, lambda var: used.add(var.varno))
    return used


def _jointree_indexes(node: JoinTreeNode) -> Iterator[int]:
    if isinstance(node, RangeTableRef):
        yield node.rtindex
        return
    yield from _jointree_indexes(node.left)
    yield from _jointree_indexes(node.right)


def compact_range_table(query: Query) -> bool:
    """Drop range table entries no longer referenced anywhere, renumbering
    the survivors and every Var that addresses them.  Returns True when
    entries were removed."""
    used = referenced_rtindexes(query)
    if len(used) == len(query.range_table):
        return False
    keep = [i for i in range(len(query.range_table)) if i in used]
    if len(keep) == len(query.range_table):
        return False
    renumber = {old: new for new, old in enumerate(keep)}
    query.range_table = [query.range_table[i] for i in keep]

    def mapper(var: ex.Var) -> Optional[ex.Expr]:
        new_index = renumber[var.varno]
        if new_index == var.varno:
            return None
        return _dc_replace(var, varno=new_index)

    remap_level_vars(query, mapper)
    _renumber_jointree(query.jointree, renumber)
    query.agg_shares = [
        (renumber[agg_index], renumber[prov_index], positions)
        for agg_index, prov_index, positions in query.agg_shares
    ]
    return True


def _renumber_jointree(jointree: FromExpr, renumber: dict[int, int]) -> None:
    stack: list[JoinTreeNode] = list(jointree.items)
    while stack:
        node = stack.pop()
        if isinstance(node, RangeTableRef):
            node.rtindex = renumber[node.rtindex]
        else:
            stack.append(node.left)
            stack.append(node.right)


# ---------------------------------------------------------------------------
# Structural equality (dataclass == breaks down at SubLink, whose frozen
# node compares by identity because it embeds a mutable Query)
# ---------------------------------------------------------------------------


def exprs_equal(a: Optional[ex.Expr], b: Optional[ex.Expr]) -> bool:
    """Structural expression equality, descending into sublink bodies."""
    if a is None or b is None:
        return a is b
    if not ex.contains_sublink(a) and not ex.contains_sublink(b):
        return a == b  # frozen-dataclass equality suffices
    if type(a) is not type(b):
        return False
    if isinstance(a, ex.SubLink):
        assert isinstance(b, ex.SubLink)
        return (
            a.kind == b.kind
            and a.operator == b.operator
            and a.correlated == b.correlated
            and exprs_equal(a.testexpr, b.testexpr)
            and queries_structurally_equal(a.subquery, b.subquery)
        )
    children_a, children_b = a.children(), b.children()
    if len(children_a) != len(children_b):
        return False
    if not all(exprs_equal(x, y) for x, y in zip(children_a, children_b)):
        return False
    # Same type, equal children: compare the shells via a child-free clone.
    hollow_a = ex.rebuild_with_children(a, [_HOLLOW] * len(children_a))
    hollow_b = ex.rebuild_with_children(b, [_HOLLOW] * len(children_b))
    return hollow_a == hollow_b


_HOLLOW = ex.Const(None, None)  # placeholder child for shell comparison


def queries_structurally_equal(a: "Query", b: "Query") -> bool:
    """Deep structural equality of two query nodes (physical annotations
    like ``used_attnos`` and ``agg_share`` are ignored)."""
    if (
        a.distinct != b.distinct
        or a.has_aggs != b.has_aggs
        or len(a.target_list) != len(b.target_list)
        or len(a.range_table) != len(b.range_table)
        or len(a.group_clause) != len(b.group_clause)
        or len(a.sort_clause) != len(b.sort_clause)
    ):
        return False
    for ta, tb in zip(a.target_list, b.target_list):
        if ta.name != tb.name or ta.resjunk != tb.resjunk:
            return False
        if not exprs_equal(ta.expr, tb.expr):
            return False
    for ra, rb in zip(a.range_table, b.range_table):
        if not rtes_structurally_equal(ra, rb):
            return False
    if not _jointrees_equal(a.jointree, b.jointree):
        return False
    if not all(
        exprs_equal(ga, gb) for ga, gb in zip(a.group_clause, b.group_clause)
    ):
        return False
    if not exprs_equal(a.having, b.having):
        return False
    if not exprs_equal(a.limit_count, b.limit_count):
        return False
    if not exprs_equal(a.limit_offset, b.limit_offset):
        return False
    for sa, sb in zip(a.sort_clause, b.sort_clause):
        if (sa.tlist_index, sa.descending, sa.nulls_first) != (
            sb.tlist_index,
            sb.descending,
            sb.nulls_first,
        ):
            return False
    return _setops_equal(a.set_operations, b.set_operations)


def rtes_structurally_equal(a, b) -> bool:
    if a.kind is not b.kind or a.alias != b.alias:
        return False
    if a.kind is RTEKind.RELATION:
        return a.relation_name == b.relation_name
    if (a.subquery is None) != (b.subquery is None):
        return False
    if a.subquery is None:
        return True
    return queries_structurally_equal(a.subquery, b.subquery)


def _jointrees_equal(a: FromExpr, b: FromExpr) -> bool:
    if len(a.items) != len(b.items):
        return False
    if not all(
        _jointree_nodes_equal(x, y) for x, y in zip(a.items, b.items)
    ):
        return False
    return exprs_equal(a.quals, b.quals)


def _jointree_nodes_equal(a: JoinTreeNode, b: JoinTreeNode) -> bool:
    if isinstance(a, RangeTableRef) or isinstance(b, RangeTableRef):
        return (
            isinstance(a, RangeTableRef)
            and isinstance(b, RangeTableRef)
            and a.rtindex == b.rtindex
        )
    return (
        a.join_type == b.join_type
        and _jointree_nodes_equal(a.left, b.left)
        and _jointree_nodes_equal(a.right, b.right)
        and exprs_equal(a.quals, b.quals)
    )


def _setops_equal(a, b) -> bool:
    from repro.analyzer.query_tree import SetOpNode, SetOpRangeRef

    if a is None or b is None:
        return a is b
    if isinstance(a, SetOpRangeRef) or isinstance(b, SetOpRangeRef):
        return (
            isinstance(a, SetOpRangeRef)
            and isinstance(b, SetOpRangeRef)
            and a.rtindex == b.rtindex
        )
    assert isinstance(a, SetOpNode) and isinstance(b, SetOpNode)
    return (
        a.op == b.op
        and a.all == b.all
        and _setops_equal(a.left, b.left)
        and _setops_equal(a.right, b.right)
    )
