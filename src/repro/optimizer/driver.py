"""The rule-based logical optimizer: fixpoint driver over rewrite rules.

Runs between the provenance rewriter and the planner / deparser (paper
Fig. 5 places the host DBMS's rewrite/optimization phase exactly there):
the same optimized tree is interpreted by the Python backend and deparsed
to SQL for the SQLite backend.

Rules (each separately importable and testable):

1. ``cleanup`` / ``fold``   — repro.optimizer.folding
2. ``normalize`` / ``pullup`` — repro.optimizer.pullup
3. ``pushdown``             — repro.optimizer.pushdown
4. ``prune``                — repro.optimizer.pruning

The driver applies the per-node rules bottom-up over every query node
(subquery RTEs, set-operation operands, sublink bodies), then the
top-down pruning pass, and repeats until a pass changes nothing (bounded
by ``MAX_PASSES`` as a defensive backstop — rules are monotone, so the
fixpoint normally lands in 2-3 passes).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.analyzer.query_tree import Query
from repro.optimizer.folding import cleanup_node, fold_node
from repro.optimizer.fusion import fuse_agg_join
from repro.optimizer.pruning import prune_query_tree
from repro.optimizer.pullup import normalize_jointree, pull_up_node
from repro.optimizer.pushdown import push_down_node
from repro.optimizer.sharing import mark_shared_subplans
from repro.optimizer.treeutils import walk_query_nodes

MAX_PASSES = 8

#: Per-node rules in application order; names are stable identifiers for
#: tests and the ``disable`` parameter.  Fusion runs before normalization
#: and pull-up so the rewriter's pristine ``q_agg ⋈ d+`` join shape is
#: still intact when it looks for the pattern.
NODE_RULES: Sequence[tuple[str, Callable[[Query], bool]]] = (
    ("fold", fold_node),
    ("fuse", fuse_agg_join),
    ("normalize", normalize_jointree),
    ("pullup", pull_up_node),
    ("pushdown", push_down_node),
)

RULE_NAMES = (
    ("cleanup",) + tuple(name for name, _ in NODE_RULES) + ("prune", "share")
)


def optimize_query_tree(
    query: Query, disable: Optional[set[str]] = None
) -> Query:
    """Optimize an analyzed (and possibly provenance-rewritten) query tree
    in place and return it.

    ``disable`` names rules to skip (see :data:`RULE_NAMES`) — used by the
    per-rule tests and the ablation benchmark.
    """
    disabled = disable or set()
    active = [(name, rule) for name, rule in NODE_RULES if name not in disabled]
    run_cleanup = "cleanup" not in disabled
    run_prune = "prune" not in disabled
    for _ in range(MAX_PASSES):
        changed = False
        for node, is_root in walk_query_nodes(query):
            if run_cleanup:
                changed |= cleanup_node(node, is_root)
            for _name, rule in active:
                changed |= rule(node)
        if run_prune:
            changed |= prune_query_tree(query)
        if not changed:
            break
    # Subplan-sharing marks are placed after the fixpoint: rules
    # specialize each subquery copy to its context, and the marks must
    # reflect (and keep reflecting) the final trees.
    if "share" not in disabled:
        mark_shared_subplans(query)
    return query
