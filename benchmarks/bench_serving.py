"""Serving benchmark — morsel-driven parallelism and the asyncio server.

Two claims from the serving PR are measured here:

1. **Intra-query parallelism**: scan-heavy TPC-H (provenance) queries
   run with the morsel dispatcher at 4 workers vs. the serial engine.
   On a multi-core host the target is a ≥ 1.5× speedup on the eligible
   pipelines; on a single-core host (or under the GIL with CPU-bound
   Python work generally) the dispatcher adds coordination overhead
   without adding compute, so the gate is only enforced when
   ``os.cpu_count() >= 4``.  Either way the benchmark asserts the
   parallel results are identical to serial and records the honest
   numbers plus the host's ``cpu_count`` in ``BENCH_serving.json``.

2. **Server under concurrency**: ``CLIENTS`` threads each open a
   ``PermClient`` session against one served database and fire a mixed
   query workload.  Every answer is checked against the embedded
   engine's answer (zero-wrong-answers gate), and the run reports
   QPS and p50/p99/max latency from the client side plus the server's
   own counters.

Methodology matches ``bench_planner``: warm both configurations first,
interleave per repetition, keep per-configuration minima, collect
garbage before each timing window.  ``PERM_BENCH_QUICK=1`` shrinks the
query set, client count, and repeat count for the CI smoke job.
"""

from __future__ import annotations

import gc
import json
import math
import os
import threading
import time

import pytest

import repro
from benchmarks._support import fmt_factor, fmt_seconds
from repro.database import PermDatabase
from repro.server import PermClient, start_in_thread
from repro.server.stats import percentile
from repro.tpch.dbgen import generate, load_into
from repro.tpch.qgen import generate_query

QUICK = bool(os.environ.get("PERM_BENCH_QUICK"))
REPEATS = 3 if QUICK else 7
PARALLEL_WORKERS = 4
CLIENTS = 25 if QUICK else 100
QUERIES_PER_CLIENT = 4 if QUICK else 10
SCALE_FACTOR = 0.002  # SF-tiny: lineitem ~12k rows, past the morsel threshold

JSON_PATH = os.environ.get("PERM_BENCH_SERVING_JSON", "BENCH_serving.json")

_DB_CACHE: dict[int, PermDatabase] = {}
_DATA = None

#: results[tag] = {"serial": seconds, "parallel": seconds}
_RESULTS: dict[str, dict[str, float]] = {}
_SERVING: dict[str, object] = {}


def _parallel_cases() -> list[tuple[str, str]]:
    scan_witness = (
        "SELECT PROVENANCE l_orderkey, l_quantity FROM lineitem "
        "WHERE l_quantity > 30"
    )
    agg_poly = (
        "SELECT PROVENANCE (polynomial) l_returnflag, count(*) "
        "FROM lineitem GROUP BY l_returnflag"
    )
    cases = [
        ("Q1", generate_query(1, seed=11)),
        ("Q6", generate_query(6, seed=11)),
        ("Q6 witness", generate_query(6, seed=11, provenance=True)),
        ("scan witness", scan_witness),
        ("agg poly", agg_poly),
    ]
    if QUICK:
        cases = [cases[0], cases[2], cases[3]]
    return cases


def _db(workers: int) -> PermDatabase:
    global _DATA
    if workers not in _DB_CACHE:
        if _DATA is None:
            _DATA = generate(SCALE_FACTOR, seed=42)
        db = repro.connect(parallel_workers=workers)
        load_into(db, _DATA)
        db.analyze()
        _DB_CACHE[workers] = db
    return _DB_CACHE[workers]


def _blur(row: tuple) -> tuple:
    return tuple(
        f"{value:.6g}" if isinstance(value, float) else repr(value)
        for value in row
    )


def _timed_interleaved(sql: str):
    """Best-of-N warm timings, serial/parallel interleaved."""
    best = {"serial": float("inf"), "parallel": float("inf")}
    rows: dict[str, list] = {}
    for workers in (1, PARALLEL_WORKERS):
        _db(workers).execute(sql)  # warm caches in both configurations
    for repetition in range(REPEATS):
        gc.collect()
        pairs = (("serial", 1), ("parallel", PARALLEL_WORKERS))
        if repetition % 2:
            pairs = tuple(reversed(pairs))
        for tag, workers in pairs:
            db = _db(workers)
            start = time.perf_counter()
            result = db.execute(sql)
            best[tag] = min(best[tag], time.perf_counter() - start)
            rows[tag] = sorted(map(_blur, result.rows))
    return best, rows


def _run_case(figures, tag: str, sql: str) -> None:
    figures.configure(
        "serving-parallel",
        f"Morsel-driven parallelism at {PARALLEL_WORKERS} workers vs serial",
        ["serial", "parallel", "speedup"],
    )
    best, rows = _timed_interleaved(sql)
    assert rows["serial"] == rows["parallel"], (
        f"parallel execution changed {tag} results"
    )
    _RESULTS[tag] = dict(best)
    speedup = best["serial"] / best["parallel"]
    figures.record("serving-parallel", tag, "serial", fmt_seconds(best["serial"]))
    figures.record("serving-parallel", tag, "parallel", fmt_seconds(best["parallel"]))
    figures.record("serving-parallel", tag, "speedup", fmt_factor(speedup))


@pytest.mark.parametrize(
    "tag,sql", _parallel_cases(), ids=[tag for tag, _ in _parallel_cases()]
)
def test_parallel_speedup(benchmark, figures, tag, sql):
    benchmark.pedantic(
        lambda: _run_case(figures, tag, sql),
        rounds=1, iterations=1, warmup_rounds=0,
    )


def test_server_concurrent_clients(benchmark, figures):
    """CLIENTS threads × QUERIES_PER_CLIENT requests, all answers checked."""
    db = repro.connect()
    db.execute("CREATE TABLE events (id integer, grp integer, val float)")
    db.catalog.table("events").insert_many(
        [(i, i % 17, float(i % 101) / 3.0) for i in range(20000)]
    )
    db.execute("ANALYZE")
    workload = [
        "SELECT count(*) FROM events WHERE grp = 3",
        "SELECT sum(val) FROM events WHERE grp < 5",
        "SELECT min(id) FROM events WHERE val > 20",
        "SELECT max(id) FROM events",
    ]
    expected = {sql: db.execute(sql).scalar() for sql in workload}

    handle = start_in_thread(
        db, max_concurrency=8, queue_limit=max(CLIENTS * 2, 64),
        request_timeout=60.0,
    )
    host, port = handle.address
    latencies: list[float] = []
    wrong: list[tuple] = []
    failures: list[Exception] = []
    lock = threading.Lock()

    def client_thread(index: int) -> None:
        try:
            with PermClient(host, port, session=f"bench-{index}") as client:
                local = []
                for i in range(QUERIES_PER_CLIENT):
                    sql = workload[(index + i) % len(workload)]
                    start = time.perf_counter()
                    got = client.query(sql).scalar()
                    local.append(time.perf_counter() - start)
                    if got != expected[sql]:
                        with lock:
                            wrong.append((sql, got))
                with lock:
                    latencies.extend(local)
        except Exception as exc:  # pragma: no cover - failure reporting
            with lock:
                failures.append(exc)

    def run() -> float:
        threads = [
            threading.Thread(target=client_thread, args=(i,))
            for i in range(CLIENTS)
        ]
        start = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return time.perf_counter() - start

    try:
        gc.collect()
        wall = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
        server_stats = handle.server.stats.snapshot(active_sessions=0, pending=0)
    finally:
        handle.stop()

    assert not failures, failures[:3]
    assert not wrong, wrong[:3]
    total = CLIENTS * QUERIES_PER_CLIENT
    assert len(latencies) == total
    latencies.sort()
    p50 = percentile(latencies, 0.50)
    p99 = percentile(latencies, 0.99)
    assert p99 < 60.0  # bounded under full concurrency

    figures.configure(
        "serving-server",
        f"Server: {CLIENTS} concurrent clients, mixed workload",
        ["value"],
    )
    figures.record("serving-server", "clients", "value", CLIENTS)
    figures.record("serving-server", "requests", "value", total)
    figures.record("serving-server", "qps", "value", f"{total / wall:.0f}")
    figures.record("serving-server", "p50", "value", fmt_seconds(p50))
    figures.record("serving-server", "p99", "value", fmt_seconds(p99))

    _SERVING.update({
        "clients": CLIENTS,
        "requests": total,
        "wall_seconds": round(wall, 4),
        "qps": round(total / wall, 1),
        "latency_ms": {
            "p50": round(p50 * 1000, 3),
            "p99": round(p99 * 1000, 3),
            "max": round(max(latencies) * 1000, 3),
        },
        "wrong_answers": 0,
        "client_failures": 0,
        "server_counters": {
            "ok": server_stats["ok"],
            "timeouts": server_stats["timeouts"],
            "overloads": server_stats["overloads"],
            "errors": server_stats["errors"],
        },
    })


def _geomean(values: list[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


def test_serving_gate(figures):
    """Aggregate gates + BENCH_serving.json emission.

    * parallel results must already have matched serial per query (the
      per-query tests assert it);
    * the ≥ 1.5× parallel speedup target only binds on hosts with at
      least ``PARALLEL_WORKERS`` cores — pure-Python CPU-bound morsels
      cannot beat serial on one core, and the JSON records ``cpu_count``
      so the artifact is interpretable either way;
    * the server section must have completed with zero wrong answers.
    """
    expected = len(_parallel_cases())
    if len(_RESULTS) < expected or not _SERVING:
        pytest.skip("per-case measurements incomplete")
    speedups = {
        tag: timing["serial"] / timing["parallel"]
        for tag, timing in _RESULTS.items()
    }
    geomean = _geomean(list(speedups.values()))
    figures.record("serving-parallel", "geomean", "speedup", fmt_factor(geomean))

    cpu_count = os.cpu_count() or 1
    payload = {}
    if os.path.exists(JSON_PATH):
        with open(JSON_PATH) as handle:
            payload = json.load(handle)
    section = payload.setdefault("quick" if QUICK else "full", {})
    section["scale_factor"] = SCALE_FACTOR
    section["cpu_count"] = cpu_count
    section["parallel_workers"] = PARALLEL_WORKERS
    section["note"] = (
        "Morsel workers are Python threads sharing the GIL; on hosts with "
        f"fewer than {PARALLEL_WORKERS} cores the CPU-bound morsels "
        "serialize and the dispatcher can only add coordination overhead, "
        "so the 1.5x speedup target applies to multi-core hosts only. "
        "Correctness (parallel == serial) is asserted unconditionally."
    )
    section["parallel"] = {
        "geomean_speedup": round(geomean, 3),
        "worst_speedup": round(min(speedups.values()), 3),
        "queries": {
            tag: {
                "serial_seconds": round(timing["serial"], 6),
                "parallel_seconds": round(timing["parallel"], 6),
                "speedup": round(timing["serial"] / timing["parallel"], 3),
            }
            for tag, timing in sorted(_RESULTS.items())
        },
    }
    section["server"] = dict(_SERVING)
    with open(JSON_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    if not QUICK and cpu_count >= PARALLEL_WORKERS:
        assert geomean >= 1.5, (
            f"geometric-mean parallel speedup {geomean:.2f}x below the "
            f"1.5x target on a {cpu_count}-core host"
        )
    # On any host, parallel must not collapse: worse than 3x slower than
    # serial would indicate a dispatch pathology, not just GIL overhead.
    worst = min(speedups, key=speedups.get)
    assert speedups[worst] >= 1 / 3, (
        f"{worst} runs more than 3x slower parallel "
        f"({speedups[worst]:.2f}x speedup)"
    )
