"""Optimizer benchmark — TPC-H provenance queries, optimizer on vs off.

Fig. 10 shape with the logical optimizer as the extra dimension: every
supported TPC-H query runs as ``SELECT PROVENANCE`` with the rule-based
optimizer enabled and disabled, on both execution backends.  The paper's
§VI performance argument — rewritten provenance queries are cheap
*because the DBMS optimizer simplifies q+* — finally has a measurable
mechanism: the ``off`` configuration plans the rewriter's nested output
verbatim, the ``on`` configuration runs subquery pull-up, projection
pruning, predicate pushdown, constant folding, aggregation-join fusion
and common-subplan sharing first.

Methodology (matching the paper's warm measurements and the
``bench_backends`` precedent): each query is executed once to warm the
prepared-statement cache (and the SQLite mirror), then timed over
``REPEATS`` runs taking the minimum — results are asserted identical
across configurations while timing.

Emits ``BENCH_optimizer.json`` (geometric-mean speedup per backend plus
per-query timings) so the perf trajectory is tracked from this PR on;
the CI smoke gate fails when optimizer-on is slower than optimizer-off.
``PERM_BENCH_QUICK=1`` shrinks the query set and repeat count.
"""

from __future__ import annotations

import json
import math
import os
import time

import pytest

from benchmarks._support import fmt_factor, fmt_seconds
from repro.database import PermDatabase
from repro.tpch.dbgen import generate, load_into
from repro.tpch.qgen import generate_query
from repro.tpch.queries import SUPPORTED_QUERIES

QUICK = bool(os.environ.get("PERM_BENCH_QUICK"))
QUERIES = (1, 3, 6, 12) if QUICK else SUPPORTED_QUERIES
BACKENDS = ("python",) if QUICK else ("python", "sqlite")
REPEATS = 3 if QUICK else 7
SCALE_FACTOR = 0.002  # SF-tiny

JSON_PATH = os.environ.get("PERM_BENCH_OPTIMIZER_JSON", "BENCH_optimizer.json")

_DB_CACHE: dict[tuple[str, bool], PermDatabase] = {}
_DATA = None

#: Collected measurements: results["python"][query] = {"on": s, "off": s}
_RESULTS: dict[str, dict[int, dict[str, float]]] = {}


def _db(backend: str, optimize: bool) -> PermDatabase:
    global _DATA
    key = (backend, optimize)
    if key not in _DB_CACHE:
        if _DATA is None:
            _DATA = generate(SCALE_FACTOR, seed=42)
        db = PermDatabase(backend=backend, optimize=optimize)
        load_into(db, _DATA)
        _DB_CACHE[key] = db
    return _DB_CACHE[key]


def _timed_interleaved(on_db: PermDatabase, off_db: PermDatabase, sql: str):
    """Best-of-N warm timings, on/off interleaved per repetition so CPU
    frequency / cache drift hits both configurations alike."""
    best = {"on": float("inf"), "off": float("inf")}
    rows: dict[str, list] = {}
    for db in (on_db, off_db):
        db.execute(sql)  # warm: statement cache, SQLite mirror
    for _ in range(REPEATS):
        for tag, db in (("on", on_db), ("off", off_db)):
            start = time.perf_counter()
            result = db.execute(sql)
            best[tag] = min(best[tag], time.perf_counter() - start)
            rows[tag] = sorted(map(repr, result.rows))
    return best, rows


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("number", QUERIES)
def test_optimizer_speedup(benchmark, figures, number, backend):
    figures.configure(
        "optimizer",
        "TPC-H provenance execution: optimizer on vs off",
        [
            f"{b} {mode}"
            for b in BACKENDS
            for mode in ("on", "off", "speedup")
        ],
    )
    sql = generate_query(number, seed=11, provenance=True)
    on_db = _db(backend, True)
    off_db = _db(backend, False)

    def measure():
        best, rows = _timed_interleaved(on_db, off_db, sql)
        assert rows["on"] == rows["off"], (
            f"optimizer changed Q{number} results on {backend}"
        )
        return best["on"], best["off"]

    on_time, off_time = benchmark.pedantic(
        measure, rounds=1, iterations=1, warmup_rounds=0
    )
    _RESULTS.setdefault(backend, {})[number] = {
        "on": on_time, "off": off_time
    }
    speedup = off_time / on_time if on_time > 0 else float("inf")
    figures.record("optimizer", f"Q{number}", f"{backend} on", fmt_seconds(on_time))
    figures.record("optimizer", f"Q{number}", f"{backend} off", fmt_seconds(off_time))
    figures.record("optimizer", f"Q{number}", f"{backend} speedup", fmt_factor(speedup))


def _geomean(values: list[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


@pytest.mark.parametrize("backend", BACKENDS)
def test_optimizer_geomean_gate(figures, backend):
    """Aggregate gate + BENCH_optimizer.json emission.

    * optimizer-on must not be slower than optimizer-off overall
      (CI smoke criterion);
    * no single query may regress by more than 10%;
    * on the Python backend the full run must show a >= 2x
      geometric-mean speedup (the headline claim; quick mode only
      enforces the no-slower gate).
    """
    measurements = _RESULTS.get(backend)
    if not measurements or len(measurements) < len(QUERIES):
        pytest.skip("per-query measurements incomplete")
    speedups = {
        number: timing["off"] / timing["on"]
        for number, timing in sorted(measurements.items())
    }
    geomean = _geomean(list(speedups.values()))
    figures.record("optimizer", "geomean", f"{backend} speedup", fmt_factor(geomean))

    # Full and quick runs live in separate sections so a CI smoke run
    # never corrupts the committed full-run trajectory.
    payload = {}
    if os.path.exists(JSON_PATH):
        with open(JSON_PATH) as handle:
            payload = json.load(handle)
    section = payload.setdefault("quick" if QUICK else "full", {})
    section["scale_factor"] = SCALE_FACTOR
    section.setdefault("backends", {})
    section["backends"][backend] = {
        "geomean_speedup": round(geomean, 3),
        "queries": {
            f"Q{number}": {
                "on_seconds": round(timing["on"], 6),
                "off_seconds": round(timing["off"], 6),
                "speedup": round(timing["off"] / timing["on"], 3),
            }
            for number, timing in sorted(measurements.items())
        },
    }
    with open(JSON_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    worst = min(speedups, key=speedups.get)
    assert speedups[worst] >= 0.9, (
        f"Q{worst} regressed more than 10% on {backend} "
        f"({speedups[worst]:.2f}x)"
    )
    assert geomean >= 1.0, (
        f"optimizer-on slower than optimizer-off on {backend} "
        f"({geomean:.2f}x)"
    )
    if backend == "python" and not QUICK:
        assert geomean >= 2.0, (
            f"python-backend geomean speedup {geomean:.2f}x below the 2x target"
        )
