"""Fig. 13 -- SPJ queries: execution time vs. numSub leaf subqueries.

Reproduced shape: SPJ provenance is cheap -- the rewrite only adds
attributes to target lists without changing the join structure, so the
overhead stays within a small factor (paper: <= ~10x, typically ~2x).
"""

from __future__ import annotations

import time

import pytest

from benchmarks._support import fmt_seconds, tpch_db
from benchmarks.conftest import run_once
from repro.workloads import spj_queries

QUERIES_PER_POINT = 10
SWEEP = (1, 2, 3, 4, 5, 6)


def _run_all(db, queries) -> float:
    start = time.perf_counter()
    for sql in queries:
        db.execute(sql)
    return (time.perf_counter() - start) / len(queries)


@pytest.mark.parametrize("num_sub", SWEEP)
def test_fig13_spj(benchmark, figures, num_sub):
    figures.configure(
        "fig13",
        "SPJ queries: avg execution time vs. numSub",
        ["normal", "provenance", "factor"],
    )
    db = tpch_db("medium")
    max_key = db.catalog.table("part").row_count()
    normal = spj_queries(num_sub, QUERIES_PER_POINT, max_key, seed=5)
    prov = spj_queries(num_sub, QUERIES_PER_POINT, max_key, seed=5, provenance=True)

    normal_time = _run_all(db, normal)
    prov_time = run_once(benchmark, lambda: _run_all(db, prov))
    factor = prov_time / normal_time

    figures.record("fig13", num_sub, "normal", fmt_seconds(normal_time))
    figures.record("fig13", num_sub, "provenance", fmt_seconds(prov_time))
    figures.record("fig13", num_sub, "factor", f"{factor:.1f}x")

    # Paper claim: provenance computation of SPJ queries stays within a
    # small constant factor (10x in the paper's measurements).
    assert factor < 10, f"SPJ provenance factor {factor:.1f}x exceeds paper bound"
