"""Shared infrastructure for the figure-reproduction benchmarks.

Scale-factor mapping (paper -> repro): the paper ran 10MB / 100MB / 1GB
TPC-H databases on PostgreSQL.  The repro engine is a pure-Python
interpreter, so sizes are laptop-scaled; the *relative* quantities the
paper reports (overhead factors, growth shapes, crossovers) are what the
benchmarks reproduce.

    small  = SF 0.002   (~12k lineitem rows)   ~ paper's 10MB column
    medium = SF 0.005   (~30k lineitem rows)   ~ paper's 100MB column
    large  = SF 0.01    (~60k lineitem rows)   ~ paper's 1GB column
"""

from __future__ import annotations

from collections import defaultdict

from repro.database import PermDatabase
from repro.tpch.dbgen import generate, load_into

SCALE_FACTORS = {"small": 0.002, "medium": 0.005, "large": 0.01}

_DB_CACHE: dict[tuple[str, bool, str], PermDatabase] = {}
_DATA_CACHE: dict[str, object] = {}


def tpch_db(
    size: str, provenance_module: bool = True, backend: str = "python"
) -> PermDatabase:
    """A cached TPC-H database of the given size on the given backend."""
    key = (size, provenance_module, backend)
    if key not in _DB_CACHE:
        if size not in _DATA_CACHE:
            _DATA_CACHE[size] = generate(SCALE_FACTORS[size], seed=42)
        db = PermDatabase(
            provenance_module_enabled=provenance_module, backend=backend
        )
        load_into(db, _DATA_CACHE[size])
        _DB_CACHE[key] = db
    return _DB_CACHE[key]


class FigureCollector:
    """Accumulates per-figure rows; printed at session end."""

    def __init__(self) -> None:
        self._figures: dict[str, dict] = defaultdict(dict)
        self._headers: dict[str, list[str]] = {}
        self._titles: dict[str, str] = {}

    def configure(self, figure: str, title: str, headers: list[str]) -> None:
        self._titles[figure] = title
        self._headers[figure] = headers

    def record(self, figure: str, row_key, column: str, value) -> None:
        self._figures[figure].setdefault(row_key, {})[column] = value

    def render(self) -> str:
        blocks = []
        for figure in sorted(self._figures):
            headers = self._headers.get(figure, [])
            rows = self._figures[figure]
            title = self._titles.get(figure, figure)
            lines = [f"== {figure}: {title} =="]
            first_col = "key"
            widths = [max(len(first_col), *(len(str(k)) for k in rows))]
            for header in headers:
                cells = [str(rows[k].get(header, "")) for k in rows]
                widths.append(max(len(header), *(len(c) for c in cells)) if cells else len(header))
            header_line = "  ".join(
                name.ljust(w) for name, w in zip([first_col] + headers, widths)
            )
            lines.append(header_line)
            lines.append("-" * len(header_line))
            for key in sorted(rows, key=_row_sort_key):
                cells = [str(key).ljust(widths[0])]
                for i, header in enumerate(headers):
                    cells.append(str(rows[key].get(header, "")).ljust(widths[i + 1]))
                lines.append("  ".join(cells))
            blocks.append("\n".join(lines))
        return "\n\n".join(blocks)


def _row_sort_key(key):
    if isinstance(key, tuple):
        return tuple(_row_sort_key(k) for k in key)
    if isinstance(key, int):
        return (0, key)
    text = str(key)
    if text.startswith("Q") and text[1:].isdigit():
        return (0, int(text[1:]))
    return (1, text)


def fmt_seconds(value: float) -> str:
    return f"{value:.4f}s"


def fmt_factor(value: float) -> str:
    return f"{value:.1f}x"
