"""Fig. 15 -- execution time comparison with the Trio approach.

The paper's setup: 1000 simple key-range selections on ``supplier``.
Trio computes provenance eagerly beforehand (not measured); the measured
Trio time is *querying the stored provenance* -- tuple-at-a-time SQL
over the stored lineage relations.  Perm computes provenance lazily with
one rewritten query.  Reproduced shape: Perm outperforms the Trio-style
system by a large factor (>= ~30x in the paper).
"""

from __future__ import annotations

import time

import pytest

from benchmarks._support import fmt_seconds, tpch_db
from benchmarks.conftest import run_once
from repro.baselines.trio import TrioSystem
from repro.workloads import selection_queries

QUERY_COUNT = 100  # paper: 1000; scaled with the database


@pytest.mark.parametrize("system", ["trio", "perm"])
def test_fig15_trio_comparison(benchmark, figures, system):
    figures.configure(
        "fig15",
        "Perm (lazy) vs. Trio-style eager lineage, key-range selections",
        ["total time", "factor vs perm"],
    )
    db = tpch_db("large")
    max_key = db.catalog.table("supplier").row_count()

    if system == "trio":
        trio = TrioSystem(db)
        queries = selection_queries(QUERY_COUNT, max_key, seed=15)
        # Eager derivation happens beforehand, as in the paper's setup.
        results = [trio.execute(sql) for sql in queries]

        def run() -> float:
            start = time.perf_counter()
            for result in results:
                trio.query_stored_provenance(result)
            return time.perf_counter() - start

        total = run_once(benchmark, run)
        figures.record("fig15", "Trio", "total time", fmt_seconds(total))
        _TOTALS["trio"] = total
    else:
        queries = selection_queries(QUERY_COUNT, max_key, seed=15, provenance=True)

        def run() -> float:
            start = time.perf_counter()
            for sql in queries:
                db.execute(sql)
            return time.perf_counter() - start

        total = run_once(benchmark, run)
        figures.record("fig15", "Perm", "total time", fmt_seconds(total))
        _TOTALS["perm"] = total

    if len(_TOTALS) == 2:
        factor = _TOTALS["trio"] / _TOTALS["perm"]
        figures.record("fig15", "Trio", "factor vs perm", f"{factor:.1f}x")
        figures.record("fig15", "Perm", "factor vs perm", "1.0x")
        # Paper: "Perm outperforms Trio by a factor of at least 30".  The
        # repro asserts a conservative bound on the same shape.
        assert factor > 5, f"expected a large Trio/Perm factor, got {factor:.1f}x"


_TOTALS: dict[str, float] = {}
