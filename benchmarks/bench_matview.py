"""Materialized provenance view benchmark — the matview PR's claim.

A mixed insert/read workload runs against twin TPC-H databases: one
answers ``SELECT PROVENANCE`` reads from a materialized provenance
view (delta-maintained on every insert), the other re-runs the full
provenance rewrite and execution for every read.  Both see the exact
same statement stream and the final answers are asserted identical, so
the measured gap is purely materialization + semiring delta
maintenance vs. recomputation.

The gate is a ≥ 10× workload speedup for the view-backed database.
Methodology follows ``bench_planner``/``bench_serving``: fresh state
per repetition, configurations interleaved, best-of-N kept, garbage
collected before each timing window.  ``PERM_BENCH_QUICK=1`` shrinks
rounds and repeats for the CI smoke job.  Honest numbers land in
``BENCH_matview.json``.
"""

from __future__ import annotations

import gc
import json
import math
import os
import time
from collections import Counter

import pytest

import repro
from benchmarks._support import fmt_factor, fmt_seconds
from repro.tpch.dbgen import generate, load_into

QUICK = bool(os.environ.get("PERM_BENCH_QUICK"))
REPEATS = 2 if QUICK else 4
ROUNDS = 4 if QUICK else 8          # insert rounds per workload
READS_PER_ROUND = 3 if QUICK else 5  # provenance reads after each insert
SCALE_FACTOR = 0.002                 # SF-tiny: lineitem ~12k rows

JSON_PATH = os.environ.get("PERM_BENCH_MATVIEW_JSON", "BENCH_matview.json")

_DATA = None

#: results[tag] = {"direct": seconds, "view": seconds}
_RESULTS: dict[str, dict[str, float]] = {}


def _cases() -> list[tuple[str, str]]:
    witness_join = (
        "SELECT PROVENANCE o_orderkey, o_totalprice, l_quantity "
        "FROM orders, lineitem "
        "WHERE o_orderkey = l_orderkey AND l_quantity > 10"
    )
    poly_scan = (
        "SELECT PROVENANCE (polynomial) l_orderkey, l_quantity "
        "FROM lineitem WHERE l_quantity > 45"
    )
    cases = [("witness join", witness_join), ("polynomial scan", poly_scan)]
    if QUICK:
        return cases
    cases.append((
        "witness scan",
        "SELECT PROVENANCE l_orderkey, l_quantity FROM lineitem "
        "WHERE l_quantity > 45",
    ))
    return cases


def _fresh_db() -> repro.PermDatabase:
    global _DATA
    if _DATA is None:
        _DATA = generate(SCALE_FACTOR, seed=42)
    db = repro.connect()
    load_into(db, _DATA)
    db.analyze()
    return db


def _insert_sql(round_index: int) -> str:
    key = 900000 + round_index
    return (
        f"INSERT INTO lineitem VALUES ({key}, 1, 1, 1, 50, 5000.0, "
        "0.01, 0.02, 'N', 'O', '1997-01-01', '1997-01-02', '1997-01-03', "
        "'NONE', 'TRUCK', 'bench delta row')"
    )


def _run_workload(db, body: str):
    """ROUNDS × (1 insert + READS_PER_ROUND provenance reads)."""
    result = None
    for round_index in range(ROUNDS):
        db.execute(_insert_sql(round_index))
        for _ in range(READS_PER_ROUND):
            result = db.execute(body)
    return result


def _timed_interleaved(body: str):
    best = {"direct": float("inf"), "view": float("inf")}
    final_rows: dict[str, Counter] = {}
    for repetition in range(REPEATS):
        pairs = ["direct", "view"]
        if repetition % 2:
            pairs.reverse()
        for tag in pairs:
            db = _fresh_db()
            if tag == "view":
                db.execute(
                    f"CREATE MATERIALIZED PROVENANCE VIEW bench_v AS {body}"
                )
                view = db.catalog.matview("bench_v")
                assert view.incremental_eligible, view.ineligible_reason
            gc.collect()
            start = time.perf_counter()
            result = _run_workload(db, body)
            best[tag] = min(best[tag], time.perf_counter() - start)
            final_rows[tag] = Counter(result.rows)
            if tag == "view":
                # Reads came from the view and inserts were applied by
                # delta maintenance, not recomputation.
                assert view.served_reads == ROUNDS * READS_PER_ROUND
                assert view.incremental_refreshes == ROUNDS
                assert view.full_refreshes == 1  # the CREATE only
    assert final_rows["direct"] == final_rows["view"]
    return best


@pytest.mark.parametrize("tag,body", _cases(), ids=[t for t, _ in _cases()])
def test_matview_workload_speedup(benchmark, figures, tag, body):
    figures.configure(
        "matview",
        "Materialized provenance views vs per-read recomputation "
        f"({ROUNDS} inserts x {READS_PER_ROUND} reads)",
        ["direct", "view", "speedup"],
    )

    def run():
        best = _timed_interleaved(body)
        _RESULTS[tag] = dict(best)
        speedup = best["direct"] / best["view"]
        figures.record("matview", tag, "direct", fmt_seconds(best["direct"]))
        figures.record("matview", tag, "view", fmt_seconds(best["view"]))
        figures.record("matview", tag, "speedup", fmt_factor(speedup))

    benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)


def _geomean(values: list[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


def test_matview_gate(figures):
    """≥ 10× speedup gate + BENCH_matview.json emission."""
    expected = len(_cases())
    if len(_RESULTS) < expected:
        pytest.skip("per-case measurements incomplete")
    speedups = {
        tag: timing["direct"] / timing["view"]
        for tag, timing in _RESULTS.items()
    }
    geomean = _geomean(list(speedups.values()))
    figures.record("matview", "geomean", "speedup", fmt_factor(geomean))

    payload = {}
    if os.path.exists(JSON_PATH):
        with open(JSON_PATH) as handle:
            payload = json.load(handle)
    section = payload.setdefault("quick" if QUICK else "full", {})
    section["scale_factor"] = SCALE_FACTOR
    section["rounds"] = ROUNDS
    section["reads_per_round"] = READS_PER_ROUND
    section["note"] = (
        "Twin databases run the identical insert/read stream; the view "
        "side serves reads from the materialized annotated result and "
        "applies each insert through semiring delta maintenance, the "
        "direct side re-runs the provenance rewrite and execution per "
        "read. Final answers are asserted identical."
    )
    section["workload"] = {
        "geomean_speedup": round(geomean, 3),
        "worst_speedup": round(min(speedups.values()), 3),
        "queries": {
            tag: {
                "direct_seconds": round(timing["direct"], 4),
                "view_seconds": round(timing["view"], 4),
                "speedup": round(timing["direct"] / timing["view"], 3),
            }
            for tag, timing in _RESULTS.items()
        },
    }
    with open(JSON_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    worst = min(speedups.values())
    assert worst >= 10.0, (
        f"materialized view speedup gate: worst case {worst:.1f}x < 10x "
        f"({speedups})"
    )
