"""Fig. 10 -- TPC-H: execution time, normal vs. provenance queries.

Reproduces the shape of the paper's central table: most provenance
queries cost a factor ~1-30 over the normal query; queries whose
provenance explodes (Q1's aggregation over the full lineitem table,
sublink queries Q11/Q16, the expression-grouped 8-table join Q9) sit at
the high end.
"""

from __future__ import annotations

import time

import pytest

from benchmarks._support import fmt_seconds, tpch_db
from benchmarks.conftest import run_once
from repro.tpch.qgen import generate_query
from repro.tpch.queries import SUPPORTED_QUERIES

SIZES = ("small", "medium")


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("number", SUPPORTED_QUERIES)
def test_fig10_execution(benchmark, figures, number, size):
    figures.configure(
        "fig10",
        "TPC-H execution time: normal vs. provenance",
        [
            "normal small", "prov small", "factor small",
            "normal medium", "prov medium", "factor medium",
        ],
    )
    db = tpch_db(size)
    normal_sql = generate_query(number, seed=11)
    prov_sql = generate_query(number, seed=11, provenance=True)

    start = time.perf_counter()
    db.execute(normal_sql)
    normal_time = time.perf_counter() - start

    prov_time = run_once(
        benchmark, lambda: _timed_execute(db, prov_sql)
    )

    factor = prov_time / normal_time if normal_time > 0 else float("inf")
    figures.record("fig10", f"Q{number}", f"normal {size}", fmt_seconds(normal_time))
    figures.record("fig10", f"Q{number}", f"prov {size}", fmt_seconds(prov_time))
    figures.record("fig10", f"Q{number}", f"factor {size}", f"{factor:.1f}x")


def _timed_execute(db, sql) -> float:
    start = time.perf_counter()
    db.execute(sql)
    return time.perf_counter() - start
