"""Witness lists vs. provenance polynomials on the Fig. 13 SPJ workloads.

Both semantics run through the same rewrite-plan-execute pipeline; this
benchmark compares their compile time (parse + analyze + rewrite + plan,
the paper's Fig. 9 quantity) and execution time on the same random SPJ
trees.  The polynomial rewrite adds one collapse aggregation on top of
the derivation query, so a modest constant-factor overhead over witness
lists is the expected shape.

``PERM_BENCH_QUICK=1`` (CI smoke mode) shrinks the sweep and the database.
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks._support import fmt_seconds, tpch_db
from benchmarks.conftest import run_once
from repro.workloads import spj_queries

QUICK = bool(os.environ.get("PERM_BENCH_QUICK"))
QUERIES_PER_POINT = 3 if QUICK else 10
SWEEP = (1, 2) if QUICK else (1, 2, 3, 4)
SIZE = "small" if QUICK else "medium"


def _compile_all(db, queries) -> float:
    start = time.perf_counter()
    for sql in queries:
        db.prepare(sql)
    return (time.perf_counter() - start) / len(queries)


def _run_all(db, queries) -> float:
    start = time.perf_counter()
    for sql in queries:
        db.execute(sql)
    return (time.perf_counter() - start) / len(queries)


@pytest.mark.parametrize("num_sub", SWEEP)
def test_semiring_vs_witness_spj(benchmark, figures, num_sub):
    figures.configure(
        "semiring",
        "SPJ queries: witness-list vs polynomial rewrite (avg per query)",
        [
            "witness_compile",
            "poly_compile",
            "witness_exec",
            "poly_exec",
            "exec_factor",
        ],
    )
    db = tpch_db(SIZE)
    max_key = db.catalog.table("part").row_count()
    witness = spj_queries(
        num_sub, QUERIES_PER_POINT, max_key, seed=7, provenance=True
    )
    poly = spj_queries(
        num_sub,
        QUERIES_PER_POINT,
        max_key,
        seed=7,
        provenance=True,
        semantics="polynomial",
    )

    witness_compile = _compile_all(db, witness)
    poly_compile = _compile_all(db, poly)
    witness_exec = _run_all(db, witness)
    poly_exec = run_once(benchmark, lambda: _run_all(db, poly))
    factor = poly_exec / witness_exec

    figures.record("semiring", num_sub, "witness_compile", fmt_seconds(witness_compile))
    figures.record("semiring", num_sub, "poly_compile", fmt_seconds(poly_compile))
    figures.record("semiring", num_sub, "witness_exec", fmt_seconds(witness_exec))
    figures.record("semiring", num_sub, "poly_exec", fmt_seconds(poly_exec))
    figures.record("semiring", num_sub, "exec_factor", f"{factor:.1f}x")

    # Sanity: the polynomial path must actually produce annotated results.
    result = db.execute(poly[0])
    assert result.annotation_column == "prov_polynomial"
    assert all(row[-1] is not None for row in result.rows)
    # Shape claim: like SPJ witness lists, the polynomial rewrite stays
    # within a small constant factor of the witness rewrite.
    assert factor < 25, f"polynomial/witness factor {factor:.1f}x out of bounds"
