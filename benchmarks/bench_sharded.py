"""Sharded scatter-gather benchmark — shard-pruned TPC-H provenance.

The tentpole claim of the sharded backend: hash-partitioning the
catalog over N child backends turns shard-key-prunable provenance
queries into fractional scans.  An equality / IN-list / co-partitioned
join predicate on the shard key routes the rewritten query to one
shard, so at 4 shards the pruned scan touches a quarter of the heap —
a ≥ 2× geometric-mean speedup that is *algorithmic*, valid on a single
core (it needs pruning, not parallel hardware).

The workload has two parts:

* **prunable queries** — witness-provenance point lookups, an IN list
  whose keys share one residue mod 4 (so all route to a single shard),
  and a co-partitioned orders⋈lineitem join pinned to one order; these
  carry the ≥ 2× full-run gate;
* **unpruned queries** — full-scan witness provenance and polynomial
  aggregation touching every shard; these gate at parity (a sharded
  deployment must not tax queries pruning cannot help — bound 1.15×).

Methodology matches ``bench_fused``: warm both configurations once,
interleave per repetition, keep per-configuration minima.  Emits
``BENCH_sharded.json`` including ``cpu_count`` — pruning gates hold on
any host; wall-clock *parallel* effects are informational only.
``PERM_BENCH_QUICK=1`` shrinks the query set and repeat count.
"""

from __future__ import annotations

import gc
import json
import math
import os
import time

import pytest

from benchmarks._support import fmt_factor, fmt_seconds
from repro.database import PermDatabase
from repro.tpch.dbgen import generate, load_into

QUICK = bool(os.environ.get("PERM_BENCH_QUICK"))
REPEATS = 5 if QUICK else 7
TIME_BUDGET = 0.3 if QUICK else 0.8
MAX_REPEATS = 60
SCALE_FACTOR = 0.005  # the _support "medium" size: ~30k lineitem rows.
# Below this, per-query scatter overhead (4 child dispatches + 4
# result objects + the gather merge) dominates SF-tiny scans and the
# parity gate measures fixed overhead instead of the merge path it is
# meant to guard.
SHARDS = 4

JSON_PATH = os.environ.get("PERM_BENCH_SHARDED_JSON", "BENCH_sharded.json")

#: tag -> (sql, prunable).  Keys 3/7/11 all satisfy k % 4 == 3, so the
#: IN list routes to exactly one of the four shards; order 3's lineitems
#: co-partition with it through the l_orderkey = o_orderkey closure.
WORKLOAD: dict[str, tuple[str, bool]] = {
    "orders point lookup": (
        "SELECT PROVENANCE * FROM orders WHERE o_orderkey = 3",
        True,
    ),
    "orders in-list": (
        "SELECT PROVENANCE * FROM orders WHERE o_orderkey IN (3, 7, 11)",
        True,
    ),
    "lineitem point lookup": (
        "SELECT PROVENANCE l_linenumber, l_quantity, l_extendedprice "
        "FROM lineitem WHERE l_orderkey = 7",
        True,
    ),
    "co-partitioned join": (
        "SELECT PROVENANCE o_orderkey, l_extendedprice "
        "FROM orders, lineitem "
        "WHERE o_orderkey = l_orderkey AND o_orderkey = 3",
        True,
    ),
    "pruned aggregate": (
        "SELECT PROVENANCE (polynomial) l_orderkey, count(*), "
        "sum(l_quantity) FROM lineitem WHERE l_orderkey = 11 "
        "GROUP BY l_orderkey",
        True,
    ),
    "full-scan witness": (
        "SELECT PROVENANCE l_orderkey, l_extendedprice FROM lineitem "
        "WHERE l_discount > 0.05",
        False,
    ),
    "full-scan aggregate": (
        "SELECT PROVENANCE (polynomial) l_orderkey, sum(l_extendedprice) "
        "FROM lineitem GROUP BY l_orderkey",
        False,
    ),
    "full-scan top-k": (
        "SELECT o_orderkey, o_totalprice FROM orders "
        "ORDER BY o_totalprice DESC, o_orderkey LIMIT 10",
        False,
    ),
}

QUERIES = (
    ("orders point lookup", "orders in-list", "full-scan witness")
    if QUICK
    else tuple(WORKLOAD)
)

_DB_CACHE: dict[bool, PermDatabase] = {}
_DATA = None

#: results[tag] = {"sharded": s, "unsharded": s, "prunable": bool}
_RESULTS: dict[str, dict] = {}


def _db(sharded: bool) -> PermDatabase:
    global _DATA
    if sharded not in _DB_CACHE:
        if _DATA is None:
            _DATA = generate(SCALE_FACTOR, seed=42)
        db = PermDatabase(shards=SHARDS if sharded else None)
        load_into(db, _DATA)
        db.execute("ANALYZE")
        if sharded:
            # build the shard mirrors outside the timed region
            db.backend.partitioner.sync()
        _DB_CACHE[sharded] = db
    return _DB_CACHE[sharded]


def _blur(row: tuple) -> tuple:
    return tuple(
        f"{value:.6g}" if isinstance(value, float) else repr(value)
        for value in row
    )


def _timed_interleaved(sql: str):
    """Best-of-N warm timings, sharded/unsharded interleaved."""
    best = {"sharded": float("inf"), "unsharded": float("inf")}
    rows: dict[str, list] = {}
    for sharded in (True, False):
        _db(sharded).execute(sql)  # warm plan/decision caches, mirrors
    gc.collect()
    gc.disable()
    spent = 0.0
    repeats = 0
    try:
        while repeats < REPEATS or (
            spent < TIME_BUDGET and repeats < MAX_REPEATS
        ):
            for tag, sharded in (("sharded", True), ("unsharded", False)):
                db = _db(sharded)
                start = time.perf_counter()
                result = db.execute(sql)
                elapsed = time.perf_counter() - start
                best[tag] = min(best[tag], elapsed)
                spent += elapsed
                rows[tag] = sorted(map(_blur, result.rows))
            repeats += 1
    finally:
        gc.enable()
    return best, rows


def _run_case(figures, tag: str) -> None:
    sql, prunable = WORKLOAD[tag]
    figures.configure(
        "sharded",
        f"Shard-pruned TPC-H provenance: {SHARDS} shards vs unsharded",
        ["sharded", "unsharded", "speedup"],
    )
    best, rows = _timed_interleaved(sql)
    assert rows["sharded"] == rows["unsharded"], (
        f"sharding changed {tag} results"
    )
    _RESULTS[tag] = {**best, "prunable": prunable}
    speedup = best["unsharded"] / best["sharded"]
    figures.record("sharded", tag, "sharded", fmt_seconds(best["sharded"]))
    figures.record("sharded", tag, "unsharded", fmt_seconds(best["unsharded"]))
    figures.record("sharded", tag, "speedup", fmt_factor(speedup))


@pytest.mark.parametrize("tag", QUERIES)
def test_sharded_speedup(benchmark, figures, tag):
    benchmark.pedantic(
        lambda: _run_case(figures, tag),
        rounds=1, iterations=1, warmup_rounds=0,
    )


def _geomean(values: list[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


def test_sharded_gate(figures):
    """Aggregate gates + BENCH_sharded.json emission.

    * prunable queries: ≥ 2× geometric-mean speedup at 4 shards (full
      run; algorithmic, so it binds on 1-core hosts too);
    * unpruned queries: none more than 1.15× slower sharded (quick and
      full) — scatter and merge overhead must stay in the noise.
    """
    if len(_RESULTS) < len(QUERIES):
        pytest.skip("per-query measurements incomplete")
    speedups = {
        tag: timing["unsharded"] / timing["sharded"]
        for tag, timing in _RESULTS.items()
    }
    prunable = [s for tag, s in speedups.items() if _RESULTS[tag]["prunable"]]
    unpruned = {
        tag: s for tag, s in speedups.items() if not _RESULTS[tag]["prunable"]
    }
    pruned_geomean = _geomean(prunable) if prunable else None
    if pruned_geomean is not None:
        figures.record(
            "sharded", "geomean (prunable)", "speedup",
            fmt_factor(pruned_geomean),
        )

    payload = {}
    if os.path.exists(JSON_PATH):
        with open(JSON_PATH) as handle:
            payload = json.load(handle)
    section = payload.setdefault("quick" if QUICK else "full", {})
    section["scale_factor"] = SCALE_FACTOR
    section["shards"] = SHARDS
    section["cpu_count"] = os.cpu_count()
    if pruned_geomean is not None:
        section["prunable_geomean_speedup"] = round(pruned_geomean, 3)
    if unpruned:
        section["unpruned_worst_speedup"] = round(min(unpruned.values()), 3)
    section["queries"] = {
        tag: {
            "sharded_seconds": round(timing["sharded"], 6),
            "unsharded_seconds": round(timing["unsharded"], 6),
            "speedup": round(timing["unsharded"] / timing["sharded"], 3),
            "prunable": timing["prunable"],
        }
        for tag, timing in sorted(_RESULTS.items())
    }
    with open(JSON_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    for tag, speedup in unpruned.items():
        assert speedup >= 1 / 1.15, (
            f"unpruned query {tag!r} runs more than 1.15x slower sharded "
            f"({speedup:.2f}x speedup)"
        )
    if not QUICK and pruned_geomean is not None:
        assert pruned_geomean >= 2.0, (
            f"prunable geometric-mean speedup {pruned_geomean:.2f}x "
            "below the 2x target"
        )
