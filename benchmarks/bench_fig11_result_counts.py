"""Fig. 11 -- TPC-H: number of result tuples, normal vs. provenance.

Reproduced shapes:

* aggregation queries explode: Q1's provenance contains every selected
  lineitem row (paper: x~15000 at 10MB),
* sublink queries (Q11, Q13, Q16) multiply results strongly,
* aggregation over an *empty* input yields 1 normal row but 0 provenance
  rows (paper footnote 4) -- asserted explicitly when it occurs,
* provenance counts grow roughly linearly with database size.
"""

from __future__ import annotations

import pytest

from benchmarks._support import tpch_db
from benchmarks.conftest import run_once
from repro.tpch.qgen import generate_query
from repro.tpch.queries import SUPPORTED_QUERIES

SIZES = ("small", "medium")


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("number", SUPPORTED_QUERIES)
def test_fig11_result_counts(benchmark, figures, number, size):
    figures.configure(
        "fig11",
        "TPC-H number of result tuples: normal vs. provenance",
        ["normal small", "prov small", "normal medium", "prov medium"],
    )
    db = tpch_db(size)
    normal = db.execute(generate_query(number, seed=11))
    prov_sql = generate_query(number, seed=11, provenance=True)
    prov = run_once(benchmark, lambda: db.execute(prov_sql))

    figures.record("fig11", f"Q{number}", f"normal {size}", len(normal))
    figures.record("fig11", f"Q{number}", f"prov {size}", len(prov))

    # Paper footnote 4: a grand aggregate over an empty input produces one
    # all-NULL row whose provenance is empty.
    if len(normal) == 1 and all(v is None for v in normal.rows[0]):
        assert len(prov) == 0
    # The original part of every provenance row is an original result row.
    width = len(normal.columns)
    assert {row[:width] for row in prov.rows} <= set(normal.rows)
