"""Fig. 9 -- TPC-H: compilation-time overhead for *normal* queries.

The paper measures the cost the Perm module adds to queries that do not
compute provenance: the provenance rewriter still traverses every query
tree looking for marked nodes.  Two configurations are compared:

* plain engine (``provenance_module_enabled=False``),
* engine with the Perm module (default).

The paper's findings to reproduce: the absolute overhead is tiny
(sub-millisecond here, <= 25ms there) and depends only on the query's
algebraic structure, *not* on the database size; the relative overhead
therefore shrinks as the database grows (1.0% -> 0.10% for Q1).
"""

from __future__ import annotations

import time

import pytest

from benchmarks._support import fmt_seconds, tpch_db
from benchmarks.conftest import run_once
from repro.tpch.qgen import generate_workload
from repro.tpch.queries import SUPPORTED_QUERIES

VERSIONS = 5


def _rewrite_overhead(db, queries) -> float:
    """Mean time spent in the provenance rewriter's tree traversal.

    The Perm module's overhead for normal queries is exactly the traversal
    that searches for marked nodes; it is reported directly (measured by
    the pipeline) because it is far below timer noise when measured by
    subtracting whole-compile times.
    """
    total = 0.0
    for sql in queries:
        total += db.prepare(sql).rewrite_seconds
    return total / len(queries)


@pytest.mark.parametrize("number", SUPPORTED_QUERIES)
def test_fig09_compile_overhead(benchmark, figures, number):
    figures.configure(
        "fig09",
        "TPC-H compile-time overhead of the Perm module for normal queries",
        ["absolute", "relative small", "relative medium", "size-independent"],
    )
    queries = generate_workload(number, VERSIONS, provenance=False, seed=3)

    small = tpch_db("small")
    overhead = run_once(benchmark, lambda: _rewrite_overhead(small, queries))

    # Relative overhead: against single-run execution time per size.
    relatives = {}
    for size in ("small", "medium"):
        db = tpch_db(size)
        start = time.perf_counter()
        db.execute(queries[0])
        execution = time.perf_counter() - start
        relatives[size] = overhead / execution * 100 if execution > 0 else 0.0

    # The overhead is a pure compile-time cost: measuring it on a larger
    # database must give a comparable value (paper: "independent of the
    # database size").
    medium_overhead = _rewrite_overhead(tpch_db("medium"), queries)
    comparable = abs(medium_overhead - overhead) < max(overhead, medium_overhead) * 5

    figures.record("fig09", f"Q{number}", "absolute", f"{overhead * 1e6:.1f}us")
    figures.record("fig09", f"Q{number}", "relative small", f"{relatives['small']:.3f}%")
    figures.record("fig09", f"Q{number}", "relative medium", f"{relatives['medium']:.3f}%")
    figures.record("fig09", f"Q{number}", "size-independent", "yes" if comparable else "no")

    # Paper claim: overhead for normal operations is negligible (<= 25ms
    # there; the traversal here is microseconds).
    assert overhead < 0.025, f"rewrite overhead {overhead:.6f}s is not negligible"
