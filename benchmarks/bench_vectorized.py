"""Vectorized-engine benchmark — TPC-H provenance, batch vs row engine.

The tentpole claim of the vectorized physical layer: on the Python
backend, batch-at-a-time execution (columnar chunks, selection vectors,
column-wise expression kernels, batched aggregate accumulation) beats
the tuple-at-a-time Volcano engine by ≥ 1.5× geometric mean on TPC-H
SF-tiny provenance queries — witness (``SELECT PROVENANCE``) and
polynomial (``SELECT PROVENANCE (polynomial)``) forms — while returning
identical result multisets (floats compared with summation tolerance:
chunked partial sums legitimately regroup the fold).

The polynomial queries are where batching pays off algorithmically as
well: the vectorized ``perm_poly_sum`` accumulates a whole column of
``N[X]`` polynomials in one normalization pass instead of a quadratic
re-normalizing fold, which turns Q1's 30-second row-engine polynomial
aggregation into ~0.1s.

Methodology matches ``bench_optimizer``: warm once (statement cache,
plan cache, columnar heap caches), then interleave the two
configurations per repetition and keep the per-configuration minimum.

Emits ``BENCH_vectorized.json``; the CI smoke gate (quick mode) fails
when any query is more than 1.25× slower vectorized, and the full run
additionally enforces the ≥ 1.5× geometric-mean speedup.
``PERM_BENCH_QUICK=1`` shrinks the query set and repeat count.
"""

from __future__ import annotations

import json
import math
import os
import time

import pytest

from benchmarks._support import fmt_factor, fmt_seconds
from repro.database import PermDatabase
from repro.tpch.dbgen import generate, load_into
from repro.tpch.qgen import generate_query
from repro.tpch.queries import SUPPORTED_QUERIES

QUICK = bool(os.environ.get("PERM_BENCH_QUICK"))
WITNESS_QUERIES = (1, 3, 6, 12) if QUICK else SUPPORTED_QUERIES
# Q1's polynomial form is excluded from quick mode only for runtime: the
# row engine needs ~30s per execution there (the quadratic fold the
# vectorized engine eliminates), which would dominate the CI smoke job.
POLYNOMIAL_QUERIES = (6, 12) if QUICK else (1, 3, 6, 12)
REPEATS = 3 if QUICK else 5
SCALE_FACTOR = 0.002  # SF-tiny

JSON_PATH = os.environ.get("PERM_BENCH_VECTORIZED_JSON", "BENCH_vectorized.json")

_DB_CACHE: dict[bool, PermDatabase] = {}
_DATA = None

#: results[tag] = {"vectorized": seconds, "row": seconds}
_RESULTS: dict[str, dict[str, float]] = {}


def _db(vectorize: bool) -> PermDatabase:
    global _DATA
    if vectorize not in _DB_CACHE:
        if _DATA is None:
            _DATA = generate(SCALE_FACTOR, seed=42)
        db = PermDatabase(vectorize=vectorize)
        load_into(db, _DATA)
        _DB_CACHE[vectorize] = db
    return _DB_CACHE[vectorize]


def _blur(row: tuple) -> tuple:
    return tuple(
        f"{value:.6g}" if isinstance(value, float) else repr(value)
        for value in row
    )


def _timed_interleaved(sql: str):
    """Best-of-N warm timings, vectorized/row interleaved per repetition."""
    best = {"vectorized": float("inf"), "row": float("inf")}
    rows: dict[str, list] = {}
    for vectorize in (True, False):
        _db(vectorize).execute(sql)  # warm caches in both engines
    for _ in range(REPEATS):
        for tag, vectorize in (("vectorized", True), ("row", False)):
            db = _db(vectorize)
            start = time.perf_counter()
            result = db.execute(sql)
            best[tag] = min(best[tag], time.perf_counter() - start)
            rows[tag] = sorted(map(_blur, result.rows))
    return best, rows


def _sql(number: int, polynomial: bool) -> str:
    sql = generate_query(number, seed=11, provenance=True)
    if polynomial:
        sql = sql.replace("SELECT PROVENANCE", "SELECT PROVENANCE (polynomial)", 1)
    return sql


def _run_case(figures, tag: str, sql: str) -> None:
    figures.configure(
        "vectorized",
        "TPC-H provenance execution: vectorized vs row engine",
        ["vectorized", "row", "speedup"],
    )
    best, rows = _timed_interleaved(sql)
    assert rows["vectorized"] == rows["row"], (
        f"vectorized engine changed {tag} results"
    )
    _RESULTS[tag] = dict(best)
    speedup = best["row"] / best["vectorized"]
    figures.record("vectorized", tag, "vectorized", fmt_seconds(best["vectorized"]))
    figures.record("vectorized", tag, "row", fmt_seconds(best["row"]))
    figures.record("vectorized", tag, "speedup", fmt_factor(speedup))


@pytest.mark.parametrize("number", WITNESS_QUERIES)
def test_witness_provenance_speedup(benchmark, figures, number):
    sql = _sql(number, polynomial=False)
    benchmark.pedantic(
        lambda: _run_case(figures, f"Q{number}", sql),
        rounds=1, iterations=1, warmup_rounds=0,
    )


@pytest.mark.parametrize("number", POLYNOMIAL_QUERIES)
def test_polynomial_provenance_speedup(benchmark, figures, number):
    sql = _sql(number, polynomial=True)
    benchmark.pedantic(
        lambda: _run_case(figures, f"Q{number} poly", sql),
        rounds=1, iterations=1, warmup_rounds=0,
    )


def _geomean(values: list[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


def test_vectorized_gate(figures):
    """Aggregate gates + BENCH_vectorized.json emission.

    * no query may run more than 1.25× slower vectorized than on the
      row engine (CI smoke criterion, quick and full);
    * the full run must show a ≥ 1.5× geometric-mean speedup across the
      witness + polynomial provenance workload (the headline claim).
    """
    expected = len(WITNESS_QUERIES) + len(POLYNOMIAL_QUERIES)
    if len(_RESULTS) < expected:
        pytest.skip("per-query measurements incomplete")
    speedups = {
        tag: timing["row"] / timing["vectorized"]
        for tag, timing in _RESULTS.items()
    }
    geomean = _geomean(list(speedups.values()))
    figures.record("vectorized", "geomean", "speedup", fmt_factor(geomean))

    payload = {}
    if os.path.exists(JSON_PATH):
        with open(JSON_PATH) as handle:
            payload = json.load(handle)
    section = payload.setdefault("quick" if QUICK else "full", {})
    section["scale_factor"] = SCALE_FACTOR
    section["geomean_speedup"] = round(geomean, 3)
    section["worst_speedup"] = round(min(speedups.values()), 3)
    section["queries"] = {
        tag: {
            "vectorized_seconds": round(timing["vectorized"], 6),
            "row_seconds": round(timing["row"], 6),
            "speedup": round(timing["row"] / timing["vectorized"], 3),
        }
        for tag, timing in sorted(_RESULTS.items())
    }
    with open(JSON_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    worst = min(speedups, key=speedups.get)
    assert speedups[worst] >= 0.8, (
        f"{worst} runs more than 1.25x slower vectorized "
        f"({speedups[worst]:.2f}x speedup)"
    )
    if not QUICK:
        assert geomean >= 1.5, (
            f"geometric-mean speedup {geomean:.2f}x below the 1.5x target"
        )
