"""Fig. 14 -- nested aggregation: execution time vs. aggregation depth.

Each level of the chain groups on the primary key divided by
``numGrp = depth-th root of |part|``.  Reproduced shape: provenance
execution time grows roughly *linearly* with the number of stacked
aggregations, because rule R5 introduces one extra join per aggregation
level.
"""

from __future__ import annotations

import time

import pytest

from benchmarks._support import fmt_seconds, tpch_db
from benchmarks.conftest import run_once
from repro.workloads import aggregation_chain

SWEEP = (1, 2, 3, 4, 5, 6, 7, 8, 9, 10)


@pytest.mark.parametrize("depth", SWEEP)
def test_fig14_aggregation(benchmark, figures, depth):
    figures.configure(
        "fig14",
        "Nested aggregation: execution time vs. depth",
        ["normal", "provenance", "factor"],
    )
    db = tpch_db("medium")
    part_count = db.catalog.table("part").row_count()
    normal_sql = aggregation_chain(depth, part_count)
    prov_sql = aggregation_chain(depth, part_count, provenance=True)

    start = time.perf_counter()
    db.execute(normal_sql)
    normal_time = time.perf_counter() - start

    prov_time = run_once(benchmark, lambda: _timed(db, prov_sql))

    figures.record("fig14", depth, "normal", fmt_seconds(normal_time))
    figures.record("fig14", depth, "provenance", fmt_seconds(prov_time))
    figures.record("fig14", depth, "factor", f"{prov_time / normal_time:.1f}x")


def _timed(db, sql) -> float:
    start = time.perf_counter()
    db.execute(sql)
    return time.perf_counter() - start
