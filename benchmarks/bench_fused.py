"""Pipeline-fusion benchmark — residual-heavy TPC-H provenance queries.

The tentpole claim of the fused-kernel codegen: collapsing each
scan→filter→project pipeline into ONE generated kernel (inlined
predicate evaluation, no per-operator chunk materialization or
intermediate selection vectors) beats the per-operator batch engine by
≥ 1.5× geometric mean on residual-heavy TPC-H SF-tiny provenance
queries — queries whose cost is dominated by residual predicate
evaluation over scans and by outer-join residual conditions — while
returning identical result multisets.

``fuse_pipelines=False`` reproduces the pre-fusion executor exactly:
per-operator batch pipelines AND per-pair outer-join residual closures
(the two-phase filter-then-reconcile kernel in ``HashJoin.run_batches``
rides the same toggle), i.e. the configuration BENCH_vectorized.json
was measured against.

The workload has two parts:

* **fused pipelines** — provenance SPJ queries over ``lineitem`` /
  ``orders`` with multi-conjunct predicates and computed targets; the
  plans show ``FusedPipeline`` boundaries and carry the speedup;
* **residual outer joins** — provenance aggregates over LEFT joins
  whose residual references both sides (not pushable into a scan), the
  two-phase kernel path; these gate at parity — the kernel must never
  lose to the closure by more than the regression bound.

Methodology matches ``bench_vectorized``: warm once (statement cache,
plan cache, columnar heap caches), then interleave the two
configurations per repetition and keep the per-configuration minimum.

Emits ``BENCH_fused.json``; the CI smoke gate (quick mode) fails when
any query is more than 1.1× slower fused, and the full run additionally
enforces the ≥ 1.5× geometric-mean speedup.  ``PERM_BENCH_QUICK=1``
shrinks the query set and repeat count.
"""

from __future__ import annotations

import gc
import json
import math
import os
import time

import pytest

from benchmarks._support import fmt_factor, fmt_seconds
from repro.database import PermDatabase
from repro.tpch.dbgen import generate, load_into

QUICK = bool(os.environ.get("PERM_BENCH_QUICK"))
REPEATS = 5 if QUICK else 7
#: Short queries keep repeating past REPEATS until both configurations
#: have consumed this much measured wall time (best-of-N converges on
#: noisy runners), bounded by MAX_REPEATS.
TIME_BUDGET = 0.3 if QUICK else 0.8
MAX_REPEATS = 60
SCALE_FACTOR = 0.002  # SF-tiny

JSON_PATH = os.environ.get("PERM_BENCH_FUSED_JSON", "BENCH_fused.json")

#: tag -> provenance SQL.  The first block is the fused-pipeline set
#: (scan→filter→project chains with computed targets), the second the
#: residual-outer-join set (both-side residuals, two-phase kernel).
WORKLOAD: dict[str, str] = {
    "lineitem revenue": (
        "SELECT PROVENANCE l_orderkey, "
        "l_extendedprice * (1 - l_discount) * (1 + l_tax) "
        "FROM lineitem WHERE l_shipdate > date '1994-01-01' "
        "AND l_discount > 0.02 AND l_quantity < 45"
    ),
    "lineitem case": (
        "SELECT PROVENANCE l_orderkey, "
        "CASE WHEN l_discount > 0.05 THEN l_extendedprice * (1 - l_discount) "
        "ELSE l_extendedprice END "
        "FROM lineitem WHERE l_shipdate > date '1994-01-01'"
    ),
    "lineitem shipmode": (
        "SELECT PROVENANCE l_orderkey, l_extendedprice * (1 + l_tax) "
        "FROM lineitem WHERE l_shipmode IN ('MAIL', 'SHIP') "
        "AND l_receiptdate > l_commitdate AND l_quantity >= 10"
    ),
    "lineitem wide": (
        "SELECT PROVENANCE * FROM lineitem "
        "WHERE l_shipdate > date '1994-06-30' AND l_discount > 0.01 "
        "AND l_tax < 0.07"
    ),
    "orders priority": (
        "SELECT PROVENANCE o_orderkey, o_totalprice * 0.9 FROM orders "
        "WHERE o_orderdate >= date '1994-01-01' "
        "AND o_orderpriority < '3' AND o_totalprice > 1000"
    ),
    "orders residual join": (
        "SELECT PROVENANCE o_orderkey, count(l_linenumber) FROM orders "
        "LEFT JOIN lineitem ON o_orderkey = l_orderkey "
        "AND (l_quantity > 25 OR l_extendedprice > o_totalprice / 4 "
        "OR l_shipmode = 'AIR') GROUP BY o_orderkey"
    ),
    "customer residual join": (
        "SELECT PROVENANCE c_custkey, count(o_orderkey) FROM customer "
        "LEFT JOIN orders ON c_custkey = o_custkey "
        "AND (o_totalprice > c_acctbal OR o_orderpriority = '1-URGENT' "
        "OR o_comment LIKE '%special%') GROUP BY c_custkey"
    ),
}

QUERIES = (
    ("lineitem revenue", "lineitem shipmode", "orders residual join")
    if QUICK
    else tuple(WORKLOAD)
)

_DB_CACHE: dict[bool, PermDatabase] = {}
_DATA = None

#: results[tag] = {"fused": seconds, "unfused": seconds}
_RESULTS: dict[str, dict[str, float]] = {}


def _db(fuse: bool) -> PermDatabase:
    global _DATA
    if fuse not in _DB_CACHE:
        if _DATA is None:
            _DATA = generate(SCALE_FACTOR, seed=42)
        db = PermDatabase(fuse_pipelines=fuse)
        load_into(db, _DATA)
        db.execute("ANALYZE")
        _DB_CACHE[fuse] = db
    return _DB_CACHE[fuse]


def _blur(row: tuple) -> tuple:
    return tuple(
        f"{value:.6g}" if isinstance(value, float) else repr(value)
        for value in row
    )


def _timed_interleaved(sql: str):
    """Best-of-N warm timings, fused/unfused interleaved per repetition."""
    best = {"fused": float("inf"), "unfused": float("inf")}
    rows: dict[str, list] = {}
    for fuse in (True, False):
        _db(fuse).execute(sql)  # warm caches in both configurations
    # Cycle collection pauses land on whichever configuration happens
    # to cross the threshold — at near-parity that noise alone can blow
    # the 1.1x gate, so collect up front and keep the GC off while
    # timing.
    gc.collect()
    gc.disable()
    spent = 0.0
    repeats = 0
    try:
        while repeats < REPEATS or (
            spent < TIME_BUDGET and repeats < MAX_REPEATS
        ):
            for tag, fuse in (("fused", True), ("unfused", False)):
                db = _db(fuse)
                start = time.perf_counter()
                result = db.execute(sql)
                elapsed = time.perf_counter() - start
                best[tag] = min(best[tag], elapsed)
                spent += elapsed
                rows[tag] = sorted(map(_blur, result.rows))
            repeats += 1
    finally:
        gc.enable()
    return best, rows


def _run_case(figures, tag: str, sql: str) -> None:
    figures.configure(
        "fused",
        "Residual-heavy TPC-H provenance: fused vs per-operator pipelines",
        ["fused", "unfused", "speedup"],
    )
    best, rows = _timed_interleaved(sql)
    assert rows["fused"] == rows["unfused"], (
        f"pipeline fusion changed {tag} results"
    )
    _RESULTS[tag] = dict(best)
    speedup = best["unfused"] / best["fused"]
    figures.record("fused", tag, "fused", fmt_seconds(best["fused"]))
    figures.record("fused", tag, "unfused", fmt_seconds(best["unfused"]))
    figures.record("fused", tag, "speedup", fmt_factor(speedup))


@pytest.mark.parametrize("tag", QUERIES)
def test_fused_speedup(benchmark, figures, tag):
    sql = WORKLOAD[tag]
    benchmark.pedantic(
        lambda: _run_case(figures, tag, sql),
        rounds=1, iterations=1, warmup_rounds=0,
    )


def _geomean(values: list[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


def test_fused_gate(figures):
    """Aggregate gates + BENCH_fused.json emission.

    * no query may run more than 1.1× slower fused than unfused (CI
      smoke criterion, quick and full);
    * the full run must show a ≥ 1.5× geometric-mean speedup across the
      residual-heavy provenance workload (the headline claim).
    """
    if len(_RESULTS) < len(QUERIES):
        pytest.skip("per-query measurements incomplete")
    speedups = {
        tag: timing["unfused"] / timing["fused"]
        for tag, timing in _RESULTS.items()
    }
    geomean = _geomean(list(speedups.values()))
    figures.record("fused", "geomean", "speedup", fmt_factor(geomean))

    payload = {}
    if os.path.exists(JSON_PATH):
        with open(JSON_PATH) as handle:
            payload = json.load(handle)
    section = payload.setdefault("quick" if QUICK else "full", {})
    section["scale_factor"] = SCALE_FACTOR
    section["geomean_speedup"] = round(geomean, 3)
    section["worst_speedup"] = round(min(speedups.values()), 3)
    section["queries"] = {
        tag: {
            "fused_seconds": round(timing["fused"], 6),
            "unfused_seconds": round(timing["unfused"], 6),
            "speedup": round(timing["unfused"] / timing["fused"], 3),
        }
        for tag, timing in sorted(_RESULTS.items())
    }
    with open(JSON_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    worst = min(speedups, key=speedups.get)
    assert speedups[worst] >= 1 / 1.1, (
        f"{worst} runs more than 1.1x slower fused "
        f"({speedups[worst]:.2f}x speedup)"
    )
    if not QUICK:
        assert geomean >= 1.5, (
            f"geometric-mean speedup {geomean:.2f}x below the 1.5x target"
        )
