"""Planner benchmark — cost-based vs heuristic planning, TPC-H provenance.

The tentpole claim of the planner split: with ANALYZE statistics, the
statistics-driven planner (GOO join ordering, build-side swapping,
late-materialization slice pushdown, bounded batch sizes) beats the
PR-4 heuristic planner by ≥ 1.2× geometric mean on TPC-H SF-tiny
provenance queries — witness and polynomial forms — with Q7 and Q9
(the queries the heuristic's subquery-last left-deep order stalled at
~1×) specifically faster, no query more than 10% slower, and identical
result multisets (float summation tolerance: different join orders
regroup the fold).

The wins come from cardinality-aware ordering: Q9's provenance core
routes through the selective ``part`` filter before touching
``lineitem`` (837 intermediate rows instead of 11,928 wide ones), and
Q7 joins its two ``nation`` scans on the OR-of-name-pairs condition
first (625 cheap pairs, ~2 survivors) instead of dragging the full
lineitem stream through five joins.

Methodology matches ``bench_vectorized``: warm once (statement cache,
plan cache, columnar heap caches, ANALYZE for the cost-based side),
then interleave the two configurations per repetition and keep the
per-configuration minimum.

Emits ``BENCH_planner.json``; the CI smoke gate (quick mode) fails when
any query is more than 1.25× slower cost-based, and the full run
additionally enforces the ≥ 1.2× geometric-mean speedup, the Q7/Q9
wins, and the 10% per-query regression bound.
``PERM_BENCH_QUICK=1`` shrinks the query set and repeat count.
"""

from __future__ import annotations

import json
import math
import os
import time

import pytest

from benchmarks._support import fmt_factor, fmt_seconds
from repro.database import PermDatabase
from repro.tpch.dbgen import generate, load_into
from repro.tpch.qgen import generate_query
from repro.tpch.queries import SUPPORTED_QUERIES

QUICK = bool(os.environ.get("PERM_BENCH_QUICK"))
WITNESS_QUERIES = (3, 7, 9, 12) if QUICK else SUPPORTED_QUERIES
POLYNOMIAL_QUERIES = (3, 12) if QUICK else (1, 3, 6, 12)
REPEATS = 3 if QUICK else 7
SCALE_FACTOR = 0.002  # SF-tiny

JSON_PATH = os.environ.get("PERM_BENCH_PLANNER_JSON", "BENCH_planner.json")

_DB_CACHE: dict[bool, PermDatabase] = {}
_DATA = None

#: results[tag] = {"cost_based": seconds, "heuristic": seconds}
_RESULTS: dict[str, dict[str, float]] = {}


def _db(cost_based: bool) -> PermDatabase:
    global _DATA
    if cost_based not in _DB_CACHE:
        if _DATA is None:
            _DATA = generate(SCALE_FACTOR, seed=42)
        db = PermDatabase(cost_based=cost_based)
        load_into(db, _DATA)
        if cost_based:
            db.analyze()
        _DB_CACHE[cost_based] = db
    return _DB_CACHE[cost_based]


def _blur(row: tuple) -> tuple:
    return tuple(
        f"{value:.6g}" if isinstance(value, float) else repr(value)
        for value in row
    )


def _timed_interleaved(sql: str):
    """Best-of-N warm timings, cost-based/heuristic interleaved.

    A full collection runs before every repetition: the polynomial
    workloads allocate millions of objects, and carrying another
    query's garbage into a timing window is the dominant noise source.
    """
    import gc

    best = {"cost_based": float("inf"), "heuristic": float("inf")}
    rows: dict[str, list] = {}
    for cost_based in (True, False):
        _db(cost_based).execute(sql)  # warm caches in both configurations
    for repetition in range(REPEATS):
        gc.collect()
        pairs = (("cost_based", True), ("heuristic", False))
        if repetition % 2:
            pairs = tuple(reversed(pairs))
        for tag, cost_based in pairs:
            db = _db(cost_based)
            start = time.perf_counter()
            result = db.execute(sql)
            best[tag] = min(best[tag], time.perf_counter() - start)
            rows[tag] = sorted(map(_blur, result.rows))
    return best, rows


def _sql(number: int, polynomial: bool) -> str:
    sql = generate_query(number, seed=11, provenance=True)
    if polynomial:
        sql = sql.replace("SELECT PROVENANCE", "SELECT PROVENANCE (polynomial)", 1)
    return sql


def _run_case(figures, tag: str, sql: str) -> None:
    figures.configure(
        "planner",
        "TPC-H provenance planning: cost-based vs heuristic planner",
        ["cost_based", "heuristic", "speedup"],
    )
    best, rows = _timed_interleaved(sql)
    assert rows["cost_based"] == rows["heuristic"], (
        f"cost-based planner changed {tag} results"
    )
    _RESULTS[tag] = dict(best)
    speedup = best["heuristic"] / best["cost_based"]
    figures.record("planner", tag, "cost_based", fmt_seconds(best["cost_based"]))
    figures.record("planner", tag, "heuristic", fmt_seconds(best["heuristic"]))
    figures.record("planner", tag, "speedup", fmt_factor(speedup))


@pytest.mark.parametrize("number", WITNESS_QUERIES)
def test_witness_provenance_speedup(benchmark, figures, number):
    sql = _sql(number, polynomial=False)
    benchmark.pedantic(
        lambda: _run_case(figures, f"Q{number}", sql),
        rounds=1, iterations=1, warmup_rounds=0,
    )


@pytest.mark.parametrize("number", POLYNOMIAL_QUERIES)
def test_polynomial_provenance_speedup(benchmark, figures, number):
    sql = _sql(number, polynomial=True)
    benchmark.pedantic(
        lambda: _run_case(figures, f"Q{number} poly", sql),
        rounds=1, iterations=1, warmup_rounds=0,
    )


def _geomean(values: list[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


def test_planner_gate(figures):
    """Aggregate gates + BENCH_planner.json emission.

    * no query may run more than 1.25× slower cost-based than with the
      heuristic planner (CI smoke criterion, quick and full);
    * the full run must show a ≥ 1.2× geometric-mean speedup across the
      witness + polynomial provenance workload, Q7 and Q9 must be
      strictly faster, and no query more than 10% slower.
    """
    expected = len(WITNESS_QUERIES) + len(POLYNOMIAL_QUERIES)
    if len(_RESULTS) < expected:
        pytest.skip("per-query measurements incomplete")
    speedups = {
        tag: timing["heuristic"] / timing["cost_based"]
        for tag, timing in _RESULTS.items()
    }
    geomean = _geomean(list(speedups.values()))
    figures.record("planner", "geomean", "speedup", fmt_factor(geomean))

    payload = {}
    if os.path.exists(JSON_PATH):
        with open(JSON_PATH) as handle:
            payload = json.load(handle)
    section = payload.setdefault("quick" if QUICK else "full", {})
    section["scale_factor"] = SCALE_FACTOR
    section["geomean_speedup"] = round(geomean, 3)
    section["worst_speedup"] = round(min(speedups.values()), 3)
    section["queries"] = {
        tag: {
            "cost_based_seconds": round(timing["cost_based"], 6),
            "heuristic_seconds": round(timing["heuristic"], 6),
            "speedup": round(timing["heuristic"] / timing["cost_based"], 3),
        }
        for tag, timing in sorted(_RESULTS.items())
    }
    with open(JSON_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    worst = min(speedups, key=speedups.get)
    assert speedups[worst] >= 0.8, (
        f"{worst} runs more than 1.25x slower cost-based "
        f"({speedups[worst]:.2f}x speedup)"
    )
    if not QUICK:
        assert geomean >= 1.2, (
            f"geometric-mean speedup {geomean:.2f}x below the 1.2x target"
        )
        for q in ("Q7", "Q9"):
            assert speedups[q] > 1.0, (
                f"{q} must be faster under the cost-based planner "
                f"({speedups[q]:.2f}x)"
            )
        assert speedups[worst] >= 0.9, (
            f"{worst} regressed more than 10% ({speedups[worst]:.2f}x speedup)"
        )
