"""Fixtures for the figure benchmarks; prints assembled tables at exit."""

from __future__ import annotations

import pytest

from benchmarks._support import FigureCollector

_collector = FigureCollector()


@pytest.fixture(scope="session")
def figures() -> FigureCollector:
    return _collector


def pytest_terminal_summary(terminalreporter):
    rendered = _collector.render()
    if rendered.strip():
        terminalreporter.write_line("")
        terminalreporter.write_line("=" * 72)
        terminalreporter.write_line(
            "PAPER FIGURE REPRODUCTIONS (see EXPERIMENTS.md for discussion)"
        )
        terminalreporter.write_line("=" * 72)
        for line in rendered.splitlines():
            terminalreporter.write_line(line)


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its result.

    The paper's measurements are single executions of generated query
    sets; calibrated multi-round timing would multiply runtime without
    changing the reported shapes.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
