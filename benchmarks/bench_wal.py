"""Durability benchmark — WAL write overhead and recovery speed.

Three questions from the durability PR are measured here:

1. **Write overhead.** A mixed DML burst (multi-row INSERTs with
   UPDATEs and DELETEs threaded through) runs against four databases:
   no WAL, and WAL with ``sync`` = ``always`` / ``batch`` / ``never``.
   The ≤ 1.25× overhead gate binds on the *software* write path —
   ``never`` (framing + canonical printing + append) and ``batch``
   (group durability, the recommended bulk-ingest setting).  The
   ``always`` mode pays one ``fdatasync`` per statement; that cost is
   the storage device's, not the WAL machinery's, so it is reported
   (together with the host's measured raw fsync floor, making the
   artifact interpretable) but not gated.
2. **Read overhead.** SELECTs against a durable database must not
   regress: the WAL is append-only commit-hook work and reads never
   touch it.  Gated at ≤ 1.25× (measured ratios sit at ~1.0).
3. **Recovery.** Statements-per-second of WAL replay, and the time to
   come up from a checkpoint, are reported so recovery regressions are
   visible in the artifact history.

Methodology matches ``bench_serving``: interleaved configurations,
best-of-``REPEATS`` timings, ``gc.collect()`` before each window.
``PERM_BENCH_QUICK=1`` shrinks the burst for the CI chaos-smoke job.
"""

from __future__ import annotations

import gc
import json
import os
import shutil
import tempfile
import time

import pytest

import repro
from benchmarks._support import fmt_factor, fmt_seconds

QUICK = bool(os.environ.get("PERM_BENCH_QUICK"))
REPEATS = 3 if QUICK else 5
N_STATEMENTS = 60 if QUICK else 150
N_READS = 40 if QUICK else 120
RECOVERY_STATEMENTS = 120 if QUICK else 400

OVERHEAD_GATE = 1.25

JSON_PATH = os.environ.get("PERM_BENCH_WAL_JSON", "BENCH_wal.json")

WRITE_MODES = ("none", "always", "batch", "never")

_WRITE_BEST: dict[str, float] = {}
_READ_BEST: dict[str, float] = {}
_RECOVERY: dict[str, object] = {}
_TMPDIRS: list[str] = []


def _tmpdir() -> str:
    path = tempfile.mkdtemp(prefix="bench-wal-")
    _TMPDIRS.append(path)
    return path


def _write_burst() -> list[str]:
    statements = []
    for i in range(N_STATEMENTS):
        if i % 7 == 3:
            statements.append(f"UPDATE e SET b = b + 1 WHERE a = {i - 1}")
        elif i % 11 == 5:
            statements.append(f"DELETE FROM e WHERE a = {i - 2}")
        else:
            rows = ", ".join(f"({i * 8 + j}, {j})" for j in range(8))
            statements.append(f"INSERT INTO e VALUES {rows}")
    return statements


def _make_db(mode: str) -> repro.PermDatabase:
    if mode == "none":
        db = repro.connect()
    else:
        db = repro.connect(wal_dir=_tmpdir(), wal_sync=mode)
    db.execute("CREATE TABLE e (a integer, b integer)")
    return db


def _fsync_floor_us() -> float:
    """The host's raw append+fdatasync cost, for the JSON artifact."""
    datasync = getattr(os, "fdatasync", os.fsync)
    fd, path = tempfile.mkstemp(prefix="bench-wal-fsync")
    try:
        count = 50 if QUICK else 200
        start = time.perf_counter()
        for _ in range(count):
            os.write(fd, b"x" * 100)
            datasync(fd)
        return (time.perf_counter() - start) / count * 1e6
    finally:
        os.close(fd)
        os.unlink(path)


def test_write_overhead(benchmark, figures):
    statements = _write_burst()

    def run() -> None:
        for _ in range(REPEATS):
            for mode in WRITE_MODES:
                gc.collect()
                db = _make_db(mode)
                start = time.perf_counter()
                for sql in statements:
                    db.execute(sql)
                elapsed = time.perf_counter() - start
                _WRITE_BEST[mode] = min(
                    _WRITE_BEST.get(mode, float("inf")), elapsed
                )
                db.close()

    benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)

    figures.configure(
        "wal-write",
        f"WAL write overhead, {N_STATEMENTS}-statement mixed DML burst",
        ["seconds", "overhead"],
    )
    base = _WRITE_BEST["none"]
    for mode in WRITE_MODES:
        figures.record(
            "wal-write", mode, "seconds", fmt_seconds(_WRITE_BEST[mode])
        )
        figures.record(
            "wal-write", mode, "overhead", fmt_factor(_WRITE_BEST[mode] / base)
        )


def test_read_overhead(benchmark, figures):
    statements = _write_burst()
    reads = [
        "SELECT count(*) FROM e WHERE b > 2",
        "SELECT sum(b) FROM e WHERE a < 500",
        "SELECT PROVENANCE a, b FROM e WHERE b = 3",
    ]

    def run() -> None:
        dbs = {}
        for mode in ("none", "always"):
            db = _make_db(mode)
            for sql in statements:
                db.execute(sql)
            for sql in reads:  # warm the statement caches
                db.execute(sql)
            dbs[mode] = db
        for _ in range(REPEATS):
            for mode, db in dbs.items():
                gc.collect()
                start = time.perf_counter()
                for i in range(N_READS):
                    db.execute(reads[i % len(reads)])
                elapsed = time.perf_counter() - start
                _READ_BEST[mode] = min(
                    _READ_BEST.get(mode, float("inf")), elapsed
                )
        for db in dbs.values():
            db.close()

    benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)

    figures.configure(
        "wal-read",
        f"Read path with a WAL attached ({N_READS} warm SELECTs)",
        ["seconds", "overhead"],
    )
    for mode in ("none", "always"):
        figures.record(
            "wal-read", mode, "seconds", fmt_seconds(_READ_BEST[mode])
        )
    figures.record(
        "wal-read",
        "always",
        "overhead",
        fmt_factor(_READ_BEST["always"] / _READ_BEST["none"]),
    )


def test_recovery_speed(benchmark, figures):
    wal_dir = _tmpdir()
    db = repro.connect(wal_dir=wal_dir, wal_sync="batch")
    db.execute("CREATE TABLE e (a integer, b integer)")
    for i in range(RECOVERY_STATEMENTS - 1):
        db.execute(f"INSERT INTO e VALUES ({i}, {i % 7})")
    db.close()

    def recover_once() -> float:
        gc.collect()
        start = time.perf_counter()
        recovered = repro.connect(wal_dir=wal_dir)
        elapsed = time.perf_counter() - start
        assert (
            recovered.last_recovery.statements_replayed == RECOVERY_STATEMENTS
        )
        recovered.close()
        return elapsed

    def run() -> None:
        replay = min(recover_once() for _ in range(REPEATS))

        # Checkpoint, then time coming up from the snapshot instead.
        db = repro.connect(wal_dir=wal_dir)
        db.checkpoint()
        db.close()
        best_ckpt = float("inf")
        for _ in range(REPEATS):
            gc.collect()
            start = time.perf_counter()
            recovered = repro.connect(wal_dir=wal_dir)
            best_ckpt = min(best_ckpt, time.perf_counter() - start)
            assert recovered.last_recovery.statements_replayed == 0
            recovered.close()

        _RECOVERY.update(
            {
                "statements": RECOVERY_STATEMENTS,
                "replay_seconds": round(replay, 4),
                "replay_statements_per_second": round(
                    RECOVERY_STATEMENTS / replay, 1
                ),
                "checkpoint_restore_seconds": round(best_ckpt, 4),
            }
        )

    benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)

    figures.configure(
        "wal-recovery",
        f"Recovery of {RECOVERY_STATEMENTS} logged statements",
        ["value"],
    )
    figures.record(
        "wal-recovery", "replay", "value",
        fmt_seconds(_RECOVERY["replay_seconds"]),
    )
    figures.record(
        "wal-recovery", "replay rate", "value",
        f"{_RECOVERY['replay_statements_per_second']:.0f} stmt/s",
    )
    figures.record(
        "wal-recovery", "from checkpoint", "value",
        fmt_seconds(_RECOVERY["checkpoint_restore_seconds"]),
    )


def test_wal_gate(figures):
    """Aggregate gates + BENCH_wal.json emission."""
    if len(_WRITE_BEST) < len(WRITE_MODES) or not _READ_BEST or not _RECOVERY:
        pytest.skip("per-case measurements incomplete")

    base = _WRITE_BEST["none"]
    overheads = {
        mode: _WRITE_BEST[mode] / base for mode in WRITE_MODES if mode != "none"
    }
    read_overhead = _READ_BEST["always"] / _READ_BEST["none"]
    fsync_floor = _fsync_floor_us()

    payload = {}
    if os.path.exists(JSON_PATH):
        with open(JSON_PATH) as handle:
            payload = json.load(handle)
    section = payload.setdefault("quick" if QUICK else "full", {})
    section["statements"] = N_STATEMENTS
    section["overhead_gate"] = OVERHEAD_GATE
    section["note"] = (
        "The overhead gate binds on the WAL software write path (sync="
        "'never': framing/printing/append; sync='batch': group "
        "durability) and on reads.  sync='always' pays one fdatasync "
        "per statement; fsync_floor_us is the host's raw append+fdatasync "
        "cost, so the reported 'always' overhead is the device's price "
        "for per-statement durability, not WAL machinery."
    )
    section["write"] = {
        "baseline_seconds": round(base, 6),
        "modes": {
            mode: {
                "seconds": round(_WRITE_BEST[mode], 6),
                "overhead": round(overheads[mode], 3),
            }
            for mode in overheads
        },
        "fsync_floor_us": round(fsync_floor, 1),
    }
    section["read"] = {
        "baseline_seconds": round(_READ_BEST["none"], 6),
        "durable_seconds": round(_READ_BEST["always"], 6),
        "overhead": round(read_overhead, 3),
    }
    section["recovery"] = dict(_RECOVERY)
    with open(JSON_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    for path in _TMPDIRS:
        shutil.rmtree(path, ignore_errors=True)

    assert overheads["never"] <= OVERHEAD_GATE, (
        f"WAL framing overhead {overheads['never']:.2f}x exceeds "
        f"{OVERHEAD_GATE}x"
    )
    assert overheads["batch"] <= OVERHEAD_GATE, (
        f"group-durability overhead {overheads['batch']:.2f}x exceeds "
        f"{OVERHEAD_GATE}x"
    )
    assert read_overhead <= OVERHEAD_GATE, (
        f"read-path overhead {read_overhead:.2f}x exceeds {OVERHEAD_GATE}x "
        f"(the WAL must stay off the read hot path)"
    )
