"""Backend comparison -- TPC-H execution, Python executor vs. SQLite.

Fig. 10 shape, with the execution backend as the extra dimension: each
supported TPC-H query runs normally and as ``SELECT PROVENANCE`` on both
the in-process Python backend and the embedded-SQLite backend.  The
interesting quantities:

* per-backend provenance overhead factors (the paper's Fig. 10 claim —
  provenance costs a small factor over the normal query — should hold on
  a *real* DBMS, not just the reference interpreter);
* the Python/SQLite speed ratio, i.e. what shipping ``q+`` to a compiled
  host DBMS buys.

SQLite timings exclude the one-time catalog mirror load (``sync`` is
performed before timing), matching how the paper measures warm
executions; the mirror sync cost itself is reported once per size as the
``sync`` row.

``PERM_BENCH_QUICK=1`` (CI smoke mode) shrinks the query set and the
database.  Emits the standard pytest-benchmark JSON via
``--benchmark-json``.
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks._support import fmt_seconds, tpch_db
from benchmarks.conftest import run_once
from repro.backends.base import collect_base_relations
from repro.errors import BackendUnsupportedError
from repro.tpch.qgen import generate_query
from repro.tpch.queries import SUPPORTED_QUERIES

QUICK = bool(os.environ.get("PERM_BENCH_QUICK"))
SIZES = ("small",) if QUICK else ("small", "medium")
QUERIES = (1, 3, 6, 12) if QUICK else SUPPORTED_QUERIES
BACKENDS = ("python", "sqlite")

_HEADERS = [
    f"{backend} {kind} {size}"
    for size in SIZES
    for backend in BACKENDS
    for kind in ("normal", "prov")
]


def _timed(db, sql) -> float:
    start = time.perf_counter()
    db.execute(sql)
    return time.perf_counter() - start


def _warm(db, sql) -> None:
    """Mirror the catalog tables so timings measure execution only."""
    from repro.sql.parser import parse_statement

    if db.backend_name == "sqlite":
        query, _ = db._analyze_and_rewrite(parse_statement(sql))
        db.backend.sync_tables(collect_base_relations(query))


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("number", QUERIES)
def test_backend_execution(benchmark, figures, number, backend, size):
    figures.configure(
        "backends",
        "TPC-H execution: Python executor vs. SQLite backend",
        _HEADERS,
    )
    db = tpch_db(size, backend=backend)
    normal_sql = generate_query(number, seed=11)
    prov_sql = generate_query(number, seed=11, provenance=True)

    try:
        _warm(db, prov_sql)
        normal_time = _timed(db, normal_sql)
        prov_time = run_once(benchmark, lambda: _timed(db, prov_sql))
    except BackendUnsupportedError as exc:
        figures.record(
            "backends", f"Q{number}", f"{backend} normal {size}", f"unsup: {exc.feature}"
        )
        pytest.skip(f"Q{number} on {backend}: {exc}")

    figures.record(
        "backends", f"Q{number}", f"{backend} normal {size}", fmt_seconds(normal_time)
    )
    figures.record(
        "backends", f"Q{number}", f"{backend} prov {size}", fmt_seconds(prov_time)
    )


@pytest.mark.parametrize("size", SIZES)
def test_sqlite_mirror_sync_cost(benchmark, figures, size):
    """One-time cost of shipping the catalog into the SQLite mirror."""
    figures.configure(
        "backends",
        "TPC-H execution: Python executor vs. SQLite backend",
        _HEADERS,
    )
    from repro.backends import SqliteBackend

    db = tpch_db(size, backend="python")
    names = [table.name for table in db.catalog.tables()]

    def sync() -> float:
        backend = SqliteBackend(db.catalog)
        start = time.perf_counter()
        backend.sync_tables(names)
        elapsed = time.perf_counter() - start
        backend.close()
        return elapsed

    elapsed = run_once(benchmark, sync)
    figures.record("backends", "sync", f"sqlite normal {size}", fmt_seconds(elapsed))
