"""Ablation -- set-operation rewrite strategies (paper Fig. 6.3a vs 6.3b).

The evaluated prototype used the node-splitting strategy (3b) for all
set operations; the paper's section VI expects "a significant speedup
using the other set rewrite variant (3.a), because it omits the creation
of unnecessary intermediate results".  This ablation measures both
strategies on except-free set-operation trees.
"""

from __future__ import annotations

import time
from collections import Counter

import pytest

from benchmarks._support import fmt_seconds, tpch_db
from benchmarks.conftest import run_once
from repro.analyzer.analyzer import Analyzer
from repro.core.rewriter import traverse_query_tree
from repro.planner.planner import Planner
from repro.executor.context import ExecContext
from repro.sql.parser import parse_statement
from repro.workloads import setop_queries

QUERIES_PER_POINT = 8
SWEEP = (2, 3, 4, 5)


def _run_with_strategy(db, queries, strategy: str) -> tuple[float, list]:
    start = time.perf_counter()
    outputs = []
    for sql in queries:
        query = Analyzer(db.catalog).analyze(parse_statement(sql))
        rewritten = traverse_query_tree(query, setop_strategy=strategy)
        plan = Planner(db.catalog).plan(rewritten)
        outputs.append(Counter(plan.run(ExecContext())))
    return time.perf_counter() - start, outputs


@pytest.mark.parametrize("num_setops", SWEEP)
def test_ablation_setop_strategy(benchmark, figures, num_setops):
    figures.configure(
        "ablation-setop",
        "Set-op rewrite strategy: split (Fig 6.3b, evaluated) vs flat (Fig 6.3a)",
        ["split", "flat", "speedup"],
    )
    db = tpch_db("medium")
    max_key = db.catalog.table("part").row_count()
    # Homogeneous union trees: the flat strategy is only defined for
    # single-operator except-free trees (see rewriter docstring).
    queries = setop_queries(
        num_setops, QUERIES_PER_POINT, max_key, seed=9, provenance=True,
        operator="UNION",
    )

    split_time, split_results = _run_with_strategy(db, queries, "split")
    flat_time, flat_results = run_once(
        benchmark, lambda: _run_with_strategy(db, queries, "flat")
    )

    # Both strategies must compute identical provenance (as bags).
    for split_bag, flat_bag in zip(split_results, flat_results):
        assert split_bag == flat_bag

    figures.record("ablation-setop", num_setops, "split", fmt_seconds(split_time))
    figures.record("ablation-setop", num_setops, "flat", fmt_seconds(flat_time))
    figures.record(
        "ablation-setop", num_setops, "speedup", f"{split_time / flat_time:.2f}x"
    )
