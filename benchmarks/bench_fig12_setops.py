"""Fig. 12 -- set-operation queries: execution time vs. numSetOp.

Random union/intersection trees over key-range selections on ``part``
(the paper excludes set-difference here to separate computational cost
from exponential result growth).  Reproduced shape: provenance time
grows with the number of set operations clearly faster than normal time,
since every binary set operation adds two joins (rewrite rules R6/R7,
strategy Fig. 6.3b).
"""

from __future__ import annotations

import time

import pytest

from benchmarks._support import fmt_seconds, tpch_db
from benchmarks.conftest import run_once
from repro.workloads import setop_queries

QUERIES_PER_POINT = 10
SWEEP = (1, 2, 3, 4, 5)


def _run_all(db, queries) -> float:
    start = time.perf_counter()
    for sql in queries:
        db.execute(sql)
    return (time.perf_counter() - start) / len(queries)


@pytest.mark.parametrize("num_setops", SWEEP)
def test_fig12_setops(benchmark, figures, num_setops):
    figures.configure(
        "fig12",
        "Set-operation queries: avg execution time vs. numSetOp",
        ["normal", "provenance", "factor"],
    )
    db = tpch_db("medium")
    max_key = db.catalog.table("part").row_count()
    normal = setop_queries(num_setops, QUERIES_PER_POINT, max_key, seed=5)
    prov = setop_queries(num_setops, QUERIES_PER_POINT, max_key, seed=5, provenance=True)

    normal_time = _run_all(db, normal)
    prov_time = run_once(benchmark, lambda: _run_all(db, prov))

    figures.record("fig12", num_setops, "normal", fmt_seconds(normal_time))
    figures.record("fig12", num_setops, "provenance", fmt_seconds(prov_time))
    figures.record("fig12", num_setops, "factor", f"{prov_time / normal_time:.1f}x")
