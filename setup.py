"""Shim enabling legacy editable installs (no network, no wheel package).

All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
